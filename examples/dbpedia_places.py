"""DBPedia-style incomplete data: many OPTIONALs over places (E.3 Q1/Q6).

Semi-structured web data is the paper's motivation for OPTIONAL
patterns: not every place lists coordinates, homepages, or populations.
This example runs DBPedia Q1 (four OPTIONAL attributes over populated
places) and Q6 (eight OPTIONAL patterns over companies — the "as many
as eight OPT patterns in a query" observed in DBPedia logs), then
inspects how sparse the optional bindings really are.

Run:  python examples/dbpedia_places.py
"""

from repro import BitMatStore, LBREngine, NULL
from repro.datasets import DBPEDIA_QUERIES, DBPediaConfig, generate_dbpedia


def main() -> None:
    print("Generating synthetic DBPedia graph...")
    graph = generate_dbpedia(DBPediaConfig())
    chars = graph.characteristics()
    print(f"  {chars['triples']:,} triples over {chars['predicates']:,} "
          f"predicates (long infobox tail)\n")
    store = BitMatStore.build(graph)
    engine = LBREngine(store)

    print("Q1 — populated places with up to four optional attributes:")
    result = engine.execute(DBPEDIA_QUERIES["Q1"])
    stats = engine.last_stats
    print(f"  {stats.num_results:,} places "
          f"({stats.results_with_nulls:,} missing at least one "
          f"attribute), Ttotal={stats.t_total * 1000:.1f} ms")
    optional_vars = ["v8", "v10", "v12", "v14"]
    labels = ["depiction", "homepage", "population", "thumbnail"]
    for var, label in zip(optional_vars, labels):
        bound = sum(1 for row in result.bindings()
                    if row.get(var) not in (None, NULL))
        print(f"    {label:<11}: bound in {bound:,}/{len(result):,} rows")

    print("\nQ6 — eight OPTIONAL patterns over companies:")
    result = engine.execute(DBPEDIA_QUERIES["Q6"])
    stats = engine.last_stats
    print(f"  {stats.num_results} companies, every row has NULLs: "
          f"{stats.results_with_nulls == stats.num_results}")
    print(f"  initial triples {stats.initial_triples:,} → "
          f"{stats.triples_after_pruning:,} after pruning")

    print("\nQ2/Q3 — structurally empty queries, detected at init:")
    for name in ("Q2", "Q3"):
        engine.execute(DBPEDIA_QUERIES[name])
        stats = engine.last_stats
        print(f"  {name}: aborted_empty={stats.aborted_empty}, "
              f"Ttotal={stats.t_total * 1000:.2f} ms")


if __name__ == "__main__":
    main()
