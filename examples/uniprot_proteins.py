"""Protein annotation lookups with OPTIONAL blocks (UniProt-style).

Shows the two UniProt phenomena the paper highlights:

* Q2 — LBR's active pruning proves the result *empty during init*
  (reified statements never carry ``uni:encodedBy``) and abandons the
  query, while a bottom-up evaluator computes large intermediate
  results first;
* Q4 — a single master→slave semi-join empties the OPTIONAL block
  (genes have no ``uni:context``), so every result row is NULL-padded
  without ever joining the block.

Run:  python examples/uniprot_proteins.py
"""

import time

from repro import BitMatStore, LBREngine, NaiveEngine
from repro.datasets import UNIPROT_QUERIES, UniProtConfig, generate_uniprot


def timed(label, fn):
    started = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - started
    print(f"  {label:<24} {elapsed * 1000:8.2f} ms, "
          f"{len(result):,} rows")
    return result


def main() -> None:
    print("Generating synthetic UniProt graph...")
    graph = generate_uniprot(UniProtConfig(proteins=2000))
    print(f"  {len(graph):,} triples\n")
    store = BitMatStore.build(graph)
    lbr = LBREngine(store)
    naive = NaiveEngine(graph)

    print("Q2 — provably empty (statements lack uni:encodedBy):")
    timed("LBR", lambda: lbr.execute(UNIPROT_QUERIES["Q2"]))
    stats = lbr.last_stats
    print(f"    detected during init: aborted_empty="
          f"{stats.aborted_empty}, join time={stats.t_join:.4f}s")
    timed("naive bottom-up", lambda: naive.execute(UNIPROT_QUERIES["Q2"]))

    print("\nQ4 — OPTIONAL block emptied by one semi-join:")
    result = timed("LBR", lambda: lbr.execute(UNIPROT_QUERIES["Q4"]))
    stats = lbr.last_stats
    print(f"    all {stats.num_results:,} rows NULL-padded "
          f"({stats.results_with_nulls:,} with NULLs); "
          f"triples after pruning: {stats.triples_after_pruning:,} "
          f"of {stats.initial_triples:,}")
    oracle = timed("naive bottom-up", lambda: naive.execute(
        UNIPROT_QUERIES["Q4"]))
    print(f"    results match oracle: "
          f"{result.as_multiset() == oracle.as_multiset()}")

    print("\nQ7 — transmembrane annotations with optional ranges:")
    result = timed("LBR", lambda: lbr.execute(UNIPROT_QUERIES["Q7"]))
    sample = result.sorted_rows()[:3]
    for row in sample:
        print(f"    {row}")


if __name__ == "__main__":
    main()
