"""Plan explorer: how LBR analyses each Appendix E query.

For every evaluation query this prints the GoSN structure
(supernodes, master→slave and peer edges, absolute masters), the GoJ
cyclicity, the jvar pruning orders of Algorithm 3.1, and whether the
nullification/best-match safety net is needed — the complete §2–§3
analysis without executing anything.

Run:  python examples/plan_explorer.py [LUBM|UniProt|DBPedia] [Qn]
"""

import sys

from repro import BitMatStore, LBREngine
from repro.datasets import (ALL_SUITES, generate_dbpedia, generate_lubm,
                            generate_uniprot)

GENERATORS = {
    "LUBM": generate_lubm,
    "UniProt": generate_uniprot,
    "DBPedia": generate_dbpedia,
}


def main() -> None:
    wanted_suite = sys.argv[1] if len(sys.argv) > 1 else None
    wanted_query = sys.argv[2] if len(sys.argv) > 2 else None

    for suite_name, queries in ALL_SUITES.items():
        if wanted_suite and suite_name.lower() != wanted_suite.lower():
            continue
        print(f"=== {suite_name} "
              f"{'=' * (60 - len(suite_name))}")
        graph = GENERATORS[suite_name]()
        engine = LBREngine(BitMatStore.build(graph))
        for query_name, query in queries.items():
            if wanted_query and query_name != wanted_query:
                continue
            plan = engine.explain(query)
            branch = plan.branches[0]
            print(f"\n--- {suite_name} {query_name}: {branch.algebra}")
            print(f"    cyclic={branch.goj_cyclic} "
                  f"best-match={branch.best_match_required} "
                  f"well-designed={branch.well_designed}")
            print(f"    jvars={branch.jvars}")
            print(f"    order_bu={branch.order_bu}")
            print(f"    absolute masters: "
                  f"{['SN%d' % i for i in branch.absolute_masters]}, "
                  f"uni={branch.uni_edges}, bi={branch.bi_edges}")
        print()


if __name__ == "__main__":
    main()
