"""Plan explorer: how the compiler pipeline analyses each Appendix E
query.

For every evaluation query this prints the three compiler stages:

* the annotated **logical IR** (per-node scope, certain/possible
  variables) lowered from the parser AST;
* the **pass trace** — which rewrite passes fired (UNION normal form,
  equality-filter elimination, filter-scope assignment, wd-analysis)
  and what they changed — plus the structural plan-cache key;
* the **physical plan** per UNION-free branch: GoSN structure
  (supernodes, master→slave and peer edges, absolute masters), GoJ
  cyclicity, the jvar pruning orders of Algorithm 3.1, the
  init-vs-FaN filter routing, and whether the nullification/
  best-match safety net is needed.

Run:  python examples/plan_explorer.py [LUBM|UniProt|DBPedia] [Qn]
"""

import sys

from repro import BitMatStore, LBREngine
from repro.datasets import (ALL_SUITES, generate_dbpedia, generate_lubm,
                            generate_uniprot)

GENERATORS = {
    "LUBM": generate_lubm,
    "UniProt": generate_uniprot,
    "DBPedia": generate_dbpedia,
}


def main() -> None:
    wanted_suite = sys.argv[1] if len(sys.argv) > 1 else None
    wanted_query = sys.argv[2] if len(sys.argv) > 2 else None

    for suite_name, queries in ALL_SUITES.items():
        if wanted_suite and suite_name.lower() != wanted_suite.lower():
            continue
        print(f"=== {suite_name} "
              f"{'=' * (60 - len(suite_name))}")
        graph = GENERATORS[suite_name]()
        engine = LBREngine(BitMatStore.build(graph))
        for query_name, query in queries.items():
            if wanted_query and query_name != wanted_query:
                continue
            plan = engine.explain(query)
            print(f"\n--- {suite_name} {query_name} "
                  f"(plan key {plan.structural_key[:16]}…)")
            print("  logical IR:")
            for line in plan.logical_tree.splitlines():
                print(f"    {line}")
            print("  pass trace:")
            for entry in plan.pass_trace:
                print(f"    {entry}")
            for index, branch in enumerate(plan.branches, start=1):
                print(f"  physical plan, branch "
                      f"{index}/{len(plan.branches)}: {branch.algebra}")
                print(f"    cyclic={branch.goj_cyclic} "
                      f"best-match={branch.best_match_required} "
                      f"well-designed={branch.well_designed}")
                print(f"    jvars={branch.jvars}")
                print(f"    order_bu={branch.order_bu}")
                print(f"    absolute masters: "
                      f"{['SN%d' % i for i in branch.absolute_masters]}, "
                      f"uni={branch.uni_edges}, bi={branch.bi_edges}")
                print(f"    certain vars: {branch.certain_vars}")
                if branch.init_filters:
                    print(f"    init filters: {branch.init_filters}")
                if branch.fan_filters:
                    print(f"    FaN schedule: {branch.fan_filters}")
            if plan.spurious_cleanup:
                print("  minimum-union cleanup required "
                      "(UNF rewrite rule 3)")
        print()


if __name__ == "__main__":
    main()
