"""LUBM university analytics: LBR vs the baselines on Appendix E.1.

Generates a mini-LUBM dataset, runs the six evaluation queries on all
three engines, and prints a Table 6.2-style comparison — the shape to
look for: LBR far ahead on the low-selectivity cyclic queries Q1–Q3,
at par on the selective Q4–Q6, best-match only for Q4/Q5.

Run:  python examples/lubm_analytics.py [universities]
"""

import sys

from repro.bench import BenchmarkHarness, format_query_table
from repro.datasets import LUBMConfig, LUBM_QUERIES, generate_lubm


def main() -> None:
    universities = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    config = LUBMConfig(universities=universities)
    print(f"Generating mini-LUBM for {universities} "
          f"universit{'y' if universities == 1 else 'ies'}...")
    graph = generate_lubm(config)
    chars = graph.characteristics()
    print(f"  {chars['triples']:,} triples, {chars['subjects']:,} subjects, "
          f"{chars['predicates']} predicates, {chars['objects']:,} objects\n")

    harness = BenchmarkHarness("LUBM", graph, runs=3)
    suite = harness.run_suite(LUBM_QUERIES)
    print(format_query_table(suite))

    print("\nPer-query highlights:")
    for report in suite.queries:
        if report.initial_triples:
            pruned = 1 - (report.triples_after_pruning
                          / report.initial_triples)
        else:
            pruned = 0.0
        verified = "verified" if report.verified else "MISMATCH"
        print(f"  {report.query}: pruned {pruned:.1%} of candidate "
              f"triples, {report.num_results:,} results "
              f"({report.results_with_nulls:,} with NULLs) [{verified}]")


if __name__ == "__main__":
    main()
