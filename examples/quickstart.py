"""Quickstart: the paper's running example (Figure 3.2).

Builds the movie/actor graph from the introduction, runs the OPTIONAL
query Q2 through LBR, and shows the per-query statistics that the
evaluation section reports (Tinit/Tprune, triples before/after pruning).

Run:  python examples/quickstart.py
"""

from repro import BitMatStore, Graph, LBREngine, NULL, Triple, URI

EX = "http://example.org/"


def build_graph() -> Graph:
    """The sample data of Figure 3.2."""
    rows = [
        ("Julia", "actedIn", "Seinfeld"),
        ("Julia", "actedIn", "Veep"),
        ("Julia", "actedIn", "NewAdvOldChristine"),
        ("Julia", "actedIn", "CurbYourEnthu"),
        ("CurbYourEnthu", "location", "LosAngeles"),
        ("Larry", "actedIn", "CurbYourEnthu"),
        ("Jerry", "hasFriend", "Julia"),
        ("Jerry", "hasFriend", "Larry"),
        ("Seinfeld", "location", "NewYorkCity"),
        ("Veep", "location", "D.C."),
        ("NewAdvOldChristine", "location", "Jersey"),
    ]
    return Graph(Triple(URI(EX + s), URI(EX + p), URI(EX + o))
                 for s, p, o in rows)


QUERY = f"""
PREFIX ex: <{EX}>
SELECT ?friend ?sitcom WHERE {{
  ex:Jerry ex:hasFriend ?friend .
  OPTIONAL {{
    ?friend ex:actedIn ?sitcom .
    ?sitcom ex:location ex:NewYorkCity .
  }}
}}
"""


def main() -> None:
    graph = build_graph()
    store = BitMatStore.build(graph)
    engine = LBREngine(store)

    print("Query: all of Jerry's friends, with their New-York sitcoms "
          "when they have one.\n")
    result = engine.execute(QUERY)
    for row in result.bindings():
        friend = str(row["friend"]).removeprefix(EX)
        sitcom = ("—" if row["sitcom"] is NULL
                  else str(row["sitcom"]).removeprefix(EX))
        print(f"  friend={friend:<8} sitcom={sitcom}")

    stats = engine.last_stats
    print(f"\nLBR statistics (the Table 6.x columns):")
    print(f"  initial triples        : {stats.initial_triples}")
    print(f"  triples after pruning  : {stats.triples_after_pruning} "
          f"(minimal, per Lemma 3.3)")
    print(f"  jvar order (bottom-up) : "
          f"{[f'?{v}' for v in stats.jvar_order_bu]}")
    print(f"  best-match required    : {stats.best_match_required}")
    print(f"  Tplan={stats.t_plan * 1000:.2f}ms  "
          f"Tinit={stats.t_init * 1000:.2f}ms  "
          f"Tprune={stats.t_prune * 1000:.2f}ms  "
          f"Ttotal={stats.t_total * 1000:.2f}ms")


if __name__ == "__main__":
    main()
