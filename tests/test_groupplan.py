"""GroupPlan and in-vmap nullification unit tests."""

import pytest

from repro import BitMatStore, Graph
from repro.core.gosn import GoSN
from repro.core.nullification import GroupPlan, nullify
from repro.core.results import VarMap
from repro.core.tp import TPState
from repro.sparql import parse_query

from .conftest import EX, triples


def build(graph, text):
    pattern = parse_query(text).pattern
    gosn = GoSN.from_pattern(pattern)
    store = BitMatStore.build(graph)
    states = [TPState.load(i, tp, store)
              for i, tp in enumerate(gosn.patterns)]
    return gosn, states


GRAPH = Graph(triples(
    ("a", "p", "b"), ("b", "q", "c"), ("c", "r", "d"), ("b", "s", "e"),
))

#: P1 OPT (P2 OPT P3) with a sibling OPT P4 on P1
NESTED = f"""PREFIX ex: <{EX}>
SELECT * WHERE {{
  ?x ex:p ?y
  OPTIONAL {{ ?y ex:q ?z OPTIONAL {{ ?z ex:r ?w }} }}
  OPTIONAL {{ ?y ex:s ?v }}
}}"""


class TestGroupPlan:
    def test_groups_and_topology(self):
        gosn, states = build(GRAPH, NESTED)
        plan = GroupPlan(gosn, states)
        assert len(plan.groups) == 4  # each supernode its own group
        # the master group comes first in topological order
        first = plan.topo_order[0]
        assert first in plan.absolute_groups

    def test_ancestors(self):
        gosn, states = build(GRAPH, NESTED)
        plan = GroupPlan(gosn, states)
        master = plan.group_of_sn[0]
        middle = plan.group_of_sn[1]
        deepest = plan.group_of_sn[2]
        assert master in plan.ancestors[middle]
        assert master in plan.ancestors[deepest]
        assert middle in plan.ancestors[deepest]
        assert not plan.ancestors[master]

    def test_slots_of_group(self):
        gosn, states = build(GRAPH, NESTED)
        plan = GroupPlan(gosn, states)
        covered = sorted(position
                         for slots in plan.slots_of_group
                         for position in slots)
        assert covered == list(range(len(states)))

    def test_peer_groups_merge(self):
        query = f"""PREFIX ex: <{EX}>
        SELECT * WHERE {{
          {{ ?x ex:p ?y OPTIONAL {{ ?y ex:q ?z }} }}
          {{ ?x ex:s ?v OPTIONAL {{ ?y ex:r ?w }} }}
        }}"""
        # note: second OPT references ?y -> NWD, but GroupPlan works on
        # whatever GoSN it is given; use the raw (untransformed) GoSN
        gosn, states = build(GRAPH, query)
        plan = GroupPlan(gosn, states)
        assert plan.group_of_sn[0] == plan.group_of_sn[2]  # peers


class TestNullify:
    def _setup(self):
        gosn, states = build(GRAPH, NESTED)
        plan = GroupPlan(gosn, states)
        varmap = VarMap(states)
        return gosn, states, plan, varmap

    def test_partial_group_failure_cascades(self):
        gosn, states, plan, varmap = self._setup()
        # visit everything: master bound, middle bound, deepest failed
        varmap.bind(0, {v: ("s", 1) for v in states[0].variables()})
        varmap.bind(1, {v: ("s", 1) for v in states[1].variables()})
        varmap.bind_failed(2)
        varmap.bind(3, {v: ("s", 1) for v in states[3].variables()})
        changed = nullify(varmap, plan)
        # group of state 2 failed; its ancestors are NOT dragged down,
        # and the sibling OPT (state 3) stays bound
        assert not changed or not varmap.failed[0]
        assert not varmap.failed[0]
        assert not varmap.failed[1]
        assert varmap.failed[2]
        assert not varmap.failed[3]

    def test_forced_failure_cascades_to_descendants(self):
        gosn, states, plan, varmap = self._setup()
        for position in range(4):
            varmap.bind(position,
                        {v: ("s", 1) for v in states[position].variables()})
        middle_group = plan.group_of_sn[gosn.sn_of_tp[states[1].index]]
        changed = nullify(varmap, plan, forced_failures={middle_group})
        assert changed
        assert varmap.failed[1]
        assert varmap.failed[2]  # descendant of the forced group
        assert not varmap.failed[0]
        assert not varmap.failed[3]  # sibling unaffected

    def test_no_failures_is_noop(self):
        gosn, states, plan, varmap = self._setup()
        for position in range(4):
            varmap.bind(position,
                        {v: ("s", 1) for v in states[position].variables()})
        assert not nullify(varmap, plan)
        assert not any(varmap.failed)

    def test_unvisited_slots_untouched(self):
        gosn, states, plan, varmap = self._setup()
        varmap.bind(0, {v: ("s", 1) for v in states[0].variables()})
        nullify(varmap, plan,
                forced_failures=set(range(len(plan.groups)))
                - plan.absolute_groups)
        # only visited slots can be marked failed
        assert varmap.slots[2] is None
        assert 2 not in varmap.visited
