"""Concurrent query service tests: sessions, snapshots, scheduler,
striped caches, and the TCP front door."""

from __future__ import annotations

import threading
import time

import pytest

from repro import BitMatStore, LBREngine
from repro.exceptions import AdmissionError, BudgetExceededError
from repro.lru import StripedLRUCache
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Triple, URI
from repro.server import (LBRServer, QueryService, ServerClient,
                          ServiceConfig, SnapshotManager)
from repro.server.protocol import rows_to_wire
from repro.server.scheduler import QueryScheduler, SchedulerConfig
from repro.sync import SingleFlight

QUERY = ("SELECT * WHERE { ?a <http://x/knows> ?b "
         "OPTIONAL { ?b <http://x/age> ?n } }")

#: a connected query whose join output exceeds tiny max_join_rows
#: budgets (each node has out-degree 2, so a 3-hop chain fans out 8x)
WIDE_QUERY = ("SELECT * WHERE { ?a <http://x/knows> ?b . "
              "?b <http://x/knows> ?c . ?c <http://x/knows> ?d }")


def make_graph(size: int = 40, age_of_evens: bool = True) -> Graph:
    graph = Graph()
    for i in range(size):
        graph.add(Triple(URI(f"http://x/p{i}"), URI("http://x/knows"),
                         URI(f"http://x/p{(i * 7 + 1) % size}")))
        graph.add(Triple(URI(f"http://x/p{i}"), URI("http://x/knows"),
                         URI(f"http://x/p{(i * 11 + 3) % size}")))
        if age_of_evens and i % 2 == 0:
            graph.add(Triple(URI(f"http://x/p{i}"), URI("http://x/age"),
                             Literal(str(i))))
    return graph


def sorted_wire(rows) -> list:
    return sorted(rows_to_wire(rows),
                  key=lambda row: tuple("" if c is None else c
                                        for c in row))


@pytest.fixture(scope="module")
def graph():
    return make_graph()


@pytest.fixture(scope="module")
def reference_rows(graph):
    engine = LBREngine(BitMatStore.build(graph))
    return sorted_wire(engine.execute(QUERY).rows)


class TestStripedLRUCache:
    def test_basic_get_put(self):
        cache = StripedLRUCache(64)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 0) == 0
        assert "a" in cache and len(cache) == 1

    def test_capacity_zero_disables(self):
        cache = StripedLRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_stats_aggregate_across_stripes(self):
        cache = StripedLRUCache(64, num_stripes=4)
        for i in range(32):
            cache.put(i, i)
        hits = sum(1 for i in range(32) if cache.get(i) == i)
        stats = cache.stats()
        assert hits == 32
        assert stats["hits"] == 32
        assert stats["misses"] == 0
        assert stats["size"] == 32
        assert stats["stripes"] == 4

    def test_eviction_is_bounded(self):
        cache = StripedLRUCache(16, num_stripes=4)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) <= cache.capacity
        assert cache.stats()["evictions"] > 0

    def test_concurrent_hammer(self):
        cache = StripedLRUCache(128, num_stripes=8)
        errors = []

        def worker(base: int) -> None:
            try:
                for i in range(2000):
                    key = (base * 7 + i) % 200
                    cache.put(key, key)
                    value = cache.get(key)
                    assert value is None or value == key
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 2000


class TestSingleFlight:
    def test_one_leader_many_followers(self):
        flight = SingleFlight()
        built = []
        results = []
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            leader, event = flight.begin("key")
            if leader:
                built.append(1)
                time.sleep(0.02)  # let followers queue up
                flight.finish("key")
                results.append("led")
            else:
                event.wait()
                results.append("waited")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert built == [1]
        assert sorted(results)[:1] == ["led"]
        assert flight.in_flight() == 0


class TestEngineSessions:
    def test_sessions_have_independent_stats(self, graph):
        engine = LBREngine(BitMatStore.build(graph))
        first = engine.session()
        second = engine.session()
        first.execute(QUERY)
        second.execute("SELECT * WHERE { ?a <http://x/age> ?n }")
        assert first.last_stats.num_results != second.last_stats.num_results
        # engine.execute still mirrors into engine.last_stats
        result = engine.execute(QUERY)
        assert engine.last_stats.num_results == len(result)

    def test_session_max_join_rows_budget(self, graph):
        engine = LBREngine(BitMatStore.build(graph))
        session = engine.session(max_join_rows=5)
        with pytest.raises(BudgetExceededError):
            session.execute(WIDE_QUERY)

    def test_session_deadline_budget(self, graph):
        engine = LBREngine(BitMatStore.build(graph))
        expired = engine.session(deadline=time.monotonic() - 1)
        with pytest.raises(BudgetExceededError):
            expired.execute(QUERY)
        # a generous deadline does not interfere
        relaxed = engine.session(deadline=time.monotonic() + 60)
        assert len(relaxed.execute(QUERY).rows) == 80

    def test_batched_identical_queries_compile_once(self, graph):
        """8 threads race the same fresh query: exactly one compile."""
        store = BitMatStore.build(graph).freeze()
        engine = LBREngine(store, thread_safe=True)
        barrier = threading.Barrier(8)
        rows: list = []
        lock = threading.Lock()

        def worker() -> None:
            session = engine.session()
            barrier.wait()
            result = session.execute(QUERY)
            with lock:
                rows.append(sorted_wire(result.rows))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert engine.compile_stats()["compiles"] == 1
        assert len(rows) == 8
        assert all(batch == rows[0] for batch in rows)


class TestSnapshots:
    def test_publish_freezes_and_versions(self, graph):
        manager = SnapshotManager()
        assert manager.version == 0
        first = manager.publish_graph(graph)
        assert first.version == 1
        assert first.store.frozen
        assert first.engine.thread_safe
        second = manager.publish_graph(make_graph(10))
        assert second.version == 2
        assert manager.current() is second

    def test_session_pinned_to_old_snapshot_during_reload(self, graph,
                                                          reference_rows):
        """The copy-on-write contract: a session started on snapshot A
        sees A's data even after B is published mid-flight."""
        manager = SnapshotManager()
        manager.publish_graph(graph)
        pinned = manager.current()
        session = pinned.session()
        # reload: 10-node graph, no ages — different answer entirely
        manager.publish_graph(make_graph(10, age_of_evens=False))
        assert sorted_wire(session.execute(QUERY).rows) == reference_rows
        fresh = manager.current().session()
        # 18, not 20: two of the size-10 graph's edge pairs coincide
        assert len(fresh.execute(QUERY).rows) == 18

    def test_concurrent_queries_during_repeated_reloads(self, graph,
                                                        reference_rows):
        """Under a storm of republications every result must be exactly
        one snapshot's answer — never a torn mix."""
        small = make_graph(10, age_of_evens=False)
        small_rows = sorted_wire(
            LBREngine(BitMatStore.build(small)).execute(QUERY).rows)
        manager = SnapshotManager()
        manager.publish_graph(graph)
        answers = {tuple(map(tuple, reference_rows)),
                   tuple(map(tuple, small_rows))}
        stop = threading.Event()
        bad: list = []

        def reader() -> None:
            while not stop.is_set():
                got = sorted_wire(
                    manager.current().session().execute(QUERY).rows)
                if tuple(map(tuple, got)) not in answers:
                    bad.append(got)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for flip in range(6):
            manager.publish_graph(small if flip % 2 == 0 else graph)
            time.sleep(0.02)
        stop.set()
        for thread in threads:
            thread.join()
        assert bad == []


class TestScheduler:
    def test_admission_rejection_when_queue_full(self, graph):
        """workers=0 keeps the queue from draining: the limit is hard."""
        manager = SnapshotManager()
        manager.publish_graph(graph)
        scheduler = QueryScheduler(
            manager, SchedulerConfig(workers=0, queue_limit=2))
        scheduler.start()
        first = scheduler.submit(QUERY)
        second = scheduler.submit(QUERY)
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(QUERY)
        assert excinfo.value.queue_limit == 2
        assert excinfo.value.queue_depth == 2
        assert "retry later" in str(excinfo.value)
        stats = scheduler.stats()
        assert stats["rejected"] == 1
        assert stats["submitted"] == 2
        scheduler.stop()
        assert first.result(timeout=5).error_type == "cancelled"
        assert second.result(timeout=5).error_type == "cancelled"

    def test_rejected_execute_returns_outcome(self, graph):
        manager = SnapshotManager()
        manager.publish_graph(graph)
        scheduler = QueryScheduler(
            manager, SchedulerConfig(workers=0, queue_limit=1))
        scheduler.start()
        scheduler.submit(QUERY)
        outcome = scheduler.execute(QUERY)
        assert not outcome.ok
        assert outcome.error_type == "rejected"
        scheduler.stop()

    def test_deadline_timeout_outcome(self, graph):
        with QueryService.from_graph(
                graph, ServiceConfig(workers=2)) as service:
            outcome = service.execute(QUERY, timeout=0)
            assert not outcome.ok
            assert outcome.error_type == "timeout"
            # the service is still healthy afterwards
            assert service.execute(QUERY).ok

    def test_max_join_rows_budget_outcome(self, graph):
        with QueryService.from_graph(
                graph, ServiceConfig(workers=2)) as service:
            outcome = service.execute(WIDE_QUERY, max_join_rows=5)
            assert not outcome.ok
            assert outcome.error_type == "budget"

    def test_parse_and_unsupported_error_types(self, graph):
        with QueryService.from_graph(
                graph, ServiceConfig(workers=2)) as service:
            assert service.execute("SELECT WHERE {").error_type == "parse"
            outcome = service.execute(
                "SELECT * WHERE { ?s ?p ?o }")
            assert outcome.error_type == "unsupported"

    def test_outcomes_row_identical_under_concurrency(self, graph,
                                                      reference_rows):
        with QueryService.from_graph(
                graph, ServiceConfig(workers=4)) as service:
            pending = [service.submit(QUERY) for _ in range(32)]
            for request in pending:
                outcome = request.result(timeout=60)
                assert outcome.ok
                assert sorted_wire(outcome.rows) == reference_rows
            stats = service.stats()
            assert stats["scheduler"]["completed"] == 32
            assert stats["scheduler"]["worker_errors"] == 0
            assert stats["compile"]["compiles"] == 1


class TestTCPServer:
    def test_wire_roundtrip_stats_reload_shutdown(self, graph,
                                                  reference_rows,
                                                  tmp_path):
        from repro.rdf import ntriples

        small = make_graph(10, age_of_evens=False)
        data_path = str(tmp_path / "small.nt")
        ntriples.dump(small, data_path)

        service = QueryService.from_graph(graph,
                                          ServiceConfig(workers=2))
        with LBRServer(service, port=0).start() as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                assert client.ping()["pong"]
                response = client.query(QUERY)
                assert response["ok"]
                assert sorted(
                    response["rows"],
                    key=lambda r: tuple("" if c is None else c
                                        for c in r)) == reference_rows
                assert response["stats"]["num_results"] == 80
                assert set(response["variables"]) == {"a", "b", "n"}

                stats = client.stats()["stats"]
                assert stats["scheduler"]["completed"] >= 1
                assert stats["snapshot"]["version"] == 1

                # budget errors travel the wire as typed errors
                budget = client.query(WIDE_QUERY, max_join_rows=5)
                assert budget["error"]["type"] == "budget"

                # copy-on-write reload over the wire
                reloaded = client.reload(data=data_path)
                assert reloaded["snapshot"]["version"] == 2
                assert len(client.query(QUERY)["rows"]) == 18

                assert client.shutdown()["stopping"]
        service.close()

    def test_unknown_op_and_bad_json(self, graph):
        service = QueryService.from_graph(graph,
                                          ServiceConfig(workers=1))
        with LBRServer(service, port=0).start() as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                response = client.request({"op": "frobnicate"})
                assert not response["ok"]
                assert response["error"]["type"] == "protocol"
                missing = client.request({"op": "query"})
                assert missing["error"]["type"] == "protocol"
                # clients cannot disable or corrupt server budgets:
                # JSON null / non-numeric values are protocol errors
                for bad in (None, "abc", -1, True):
                    nulled = client.request(
                        {"op": "query", "query": QUERY, "timeout": bad})
                    assert nulled["error"]["type"] == "protocol", bad
                # over-ceiling budgets are clamped, not honored: a huge
                # client timeout still runs (and succeeds) normally
                clamped = client.request(
                    {"op": "query", "query": QUERY,
                     "timeout": 10_000_000, "max_join_rows": 10**12})
                assert clamped["ok"]
        service.close()


class TestLiveUpdates:
    def make_live_service(self, tmp_path):
        from repro.update import LiveConfig, LiveGraphStore

        live = LiveGraphStore.open(
            str(tmp_path / "live"), initial=make_graph(10),
            config=LiveConfig(compact_threshold=None, background=False))
        service = QueryService(ServiceConfig(workers=2))
        service.attach_live_store(live)
        return service

    def test_update_op_commits_and_publishes(self, tmp_path):
        service = self.make_live_service(tmp_path)
        with LBRServer(service, port=0).start() as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                before = len(client.query(QUERY)["rows"])
                response = client.update(
                    adds=["<http://x/new> <http://x/knows> "
                          "<http://x/p1> ."])
                assert response["ok"] and response["added"] == 1
                assert response["seq"] == 1
                assert response["snapshot_version"] == 2
                after = client.query(QUERY)
                assert len(after["rows"]) == before + 1
                assert after["snapshot_version"] == 2

                # deletes apply before adds; a parse error is typed
                gone = client.update(
                    deletes=["<http://x/new> <http://x/knows> "
                             "<http://x/p1> ."])
                assert gone["ok"] and gone["deleted"] == 1
                assert len(client.query(QUERY)["rows"]) == before
                bad = client.request({"op": "update",
                                      "add": ["not ntriples"]})
                assert bad["error"]["type"] == "parse"
                not_lists = client.request({"op": "update", "add": 7})
                assert not_lists["error"]["type"] == "protocol"
        service.close()

    def test_update_without_live_store_is_a_storage_error(self, graph):
        service = QueryService.from_graph(graph,
                                          ServiceConfig(workers=1))
        with LBRServer(service, port=0).start() as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                response = client.update(
                    adds=["<http://x/a> <http://x/p> <http://x/b> ."])
                assert not response["ok"]
                assert response["error"]["type"] == "error"
        service.close()

    def test_draining_service_returns_shutting_down(self, tmp_path):
        service = self.make_live_service(tmp_path)
        with LBRServer(service, port=0).start() as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                service.begin_shutdown()
                query = client.query(QUERY)
                assert query["error"]["type"] == "shutting_down"
                update = client.update(
                    adds=["<http://x/a> <http://x/p> <http://x/b> ."])
                assert update["error"]["type"] == "shutting_down"
                assert service.drain(5.0)
        service.close()

    def test_graceful_shutdown_op_drains_and_fsyncs(self, tmp_path):
        service = self.make_live_service(tmp_path)
        with LBRServer(service, port=0).start() as server:
            host, port = server.address
            with ServerClient(host, port) as client:
                client.update(adds=["<http://x/new> <http://x/knows> "
                                    "<http://x/p1> ."])
                assert client.shutdown()["stopping"]
            deadline = time.monotonic() + 10
            while not service.scheduler.draining \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert service.scheduler.draining
        service.close()
        # the committed batch survived the WAL fsync: reopen and check
        from repro.update import LiveConfig, LiveGraphStore

        reopened = LiveGraphStore.open(
            str(tmp_path / "live"),
            config=LiveConfig(compact_threshold=None, background=False))
        assert reopened.last_seq == 1
        reopened.close()


class TestClientRetry:
    def test_rejected_responses_are_retried(self, tmp_path):
        """Backpressure melts away -> a retrying client succeeds."""
        service = QueryService.from_graph(make_graph(10),
                                          ServiceConfig(workers=1))
        with LBRServer(service, port=0).start() as server:
            host, port = server.address
            client = ServerClient(host, port, retries=3,
                                  backoff_base=0.01)
            flaky = {"remaining": 2}
            real = client._request_once

            def flaky_once(payload):
                if flaky["remaining"] > 0:
                    flaky["remaining"] -= 1
                    return {"ok": False,
                            "error": {"type": "rejected",
                                      "message": "queue full"}}
                return real(payload)

            client._request_once = flaky_once
            response = client.query(QUERY)
            assert response["ok"]
            assert flaky["remaining"] == 0
            client.close()
        service.close()

    def test_exhaustion_raises_typed_error(self):
        from repro.exceptions import RetriesExhaustedError

        # nothing listens on port 1; with retries the constructor defers
        client = ServerClient("127.0.0.1", 1, timeout=0.2, retries=2,
                              backoff_base=0.001)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            client.request({"op": "ping"})
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, OSError)
        client.close()

    def test_shutting_down_is_never_retried(self, tmp_path):
        calls = {"count": 0}

        service = QueryService.from_graph(make_graph(10),
                                          ServiceConfig(workers=1))
        with LBRServer(service, port=0).start() as server:
            host, port = server.address
            client = ServerClient(host, port, retries=5,
                                  backoff_base=0.01)

            def fake_once(payload):
                calls["count"] += 1
                return {"ok": False,
                        "error": {"type": "shutting_down",
                                  "message": "draining"}}

            client._request_once = fake_once
            response = client.query(QUERY)
            assert response["error"]["type"] == "shutting_down"
            assert calls["count"] == 1
            client.close()
        service.close()

    def test_zero_retries_keeps_legacy_behavior(self):
        with pytest.raises(OSError):
            ServerClient("127.0.0.1", 1, timeout=0.2)

    def test_never_sleeps_after_final_attempt(self, monkeypatch):
        """Pin the retry schedule: sleeps happen strictly *between*
        attempts, so an exhausted request never burns one last backoff
        delay before raising."""
        from repro.exceptions import RetriesExhaustedError
        from repro.server import net

        retries = 3
        client = ServerClient("127.0.0.1", 1, timeout=0.2,
                              retries=retries, backoff_base=0.001)
        events: list[str] = []

        def failing_connect():
            events.append("attempt")
            raise ConnectionRefusedError("nobody home")

        monkeypatch.setattr(client, "_connect", failing_connect)
        monkeypatch.setattr(net.time, "sleep",
                            lambda _delay: events.append("sleep"))
        with pytest.raises(RetriesExhaustedError) as excinfo:
            client.request({"op": "ping"})
        client.close()
        assert excinfo.value.attempts == retries + 1
        # attempt, sleep, attempt, sleep, attempt, sleep, attempt —
        # never a sleep after the attempt that exhausts the budget
        assert events == ["attempt", "sleep"] * retries + ["attempt"]
