"""Well-designedness checks (Pérez et al.) and the UNF rewrite."""

from repro.rdf.terms import Variable
from repro.sparql import (is_well_designed, find_violations, parse_pattern,
                          parse_query, serialize_algebra,
                          to_union_normal_form, eliminate_equality_filters,
                          push_filter, is_safe_filter)
from repro.sparql.ast import BGP, Filter, Join, LeftJoin, Union


def pattern_of(text: str):
    return parse_query(text).pattern


class TestWellDesigned:
    def test_simple_optional_is_wd(self):
        pattern = pattern_of(
            "SELECT * WHERE { ?a <p> ?b OPTIONAL { ?b <q> ?c } }")
        assert is_well_designed(pattern)

    def test_paper_q1_intro_is_wd(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              ?actor <name> ?name . ?actor <address> ?addr .
              OPTIONAL { ?actor <email> ?email . ?actor <tel> ?tele . }
            }""")
        assert is_well_designed(pattern)

    def test_classic_violation(self):
        # ?c occurs in the innermost slave and outside, but not in its
        # master — the textbook NWD pattern Px JOIN (Py OPT Pz)
        pattern = pattern_of("""
            SELECT * WHERE {
              { ?x <p> ?c }
              { ?y <q> ?z OPTIONAL { ?z <r> ?c } }
            }""")
        violations = find_violations(pattern)
        assert not is_well_designed(pattern)
        assert violations[0].variable == Variable("c")

    def test_violation_through_nesting(self):
        # Px OPT (Py OPT Pz) where ?j in Pz and Px but not Py
        pattern = pattern_of("""
            SELECT * WHERE {
              ?x <p> ?j
              OPTIONAL { ?x <q> ?y OPTIONAL { ?y <r> ?j } }
            }""")
        assert not is_well_designed(pattern)

    def test_shared_var_in_master_is_fine(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              ?x <p> ?j
              OPTIONAL { ?x <q> ?j OPTIONAL { ?j <r> ?k } }
            }""")
        assert is_well_designed(pattern)

    def test_filter_occurrence_counts_as_outside(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              { ?a <p> ?b OPTIONAL { ?b <q> ?c } }
              FILTER(?c != <x>)
            }""")
        # the filter sits outside the OPT and mentions ?c
        assert not is_well_designed(pattern)

    def test_union_branches_checked_independently(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              { ?a <p> ?b } UNION { ?a <q> ?b }
            }""")
        assert is_well_designed(pattern)

    def test_all_appendix_queries_are_wd(self):
        from repro.datasets import ALL_SUITES
        for suite in ALL_SUITES.values():
            for text in suite.values():
                assert is_well_designed(pattern_of(text))


class TestUnionNormalForm:
    def test_union_free_is_single_branch(self):
        pattern = pattern_of(
            "SELECT * WHERE { ?a <p> ?b OPTIONAL { ?b <q> ?c } }")
        nf = to_union_normal_form(pattern)
        assert len(nf.branches) == 1
        assert not nf.spurious_possible

    def test_top_level_union_splits(self):
        pattern = pattern_of(
            "SELECT * WHERE { { ?a <p> ?b } UNION { ?a <q> ?b } }")
        nf = to_union_normal_form(pattern)
        assert len(nf.branches) == 2

    def test_rule1_join_distributes(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              { { ?a <p> ?b } UNION { ?a <q> ?b } }
              { ?b <r> ?c }
            }""")
        nf = to_union_normal_form(pattern)
        assert len(nf.branches) == 2
        assert all(isinstance(branch, BGP) for branch in nf.branches)
        assert not nf.spurious_possible

    def test_rule2_union_in_master_distributes(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              { { ?a <p> ?b } UNION { ?a <q> ?b } }
              OPTIONAL { ?b <r> ?c }
            }""")
        nf = to_union_normal_form(pattern)
        assert len(nf.branches) == 2
        assert all(isinstance(b, LeftJoin) for b in nf.branches)
        assert not nf.spurious_possible

    def test_rule3_union_in_slave_flags_spurious(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              ?a <p> ?b
              OPTIONAL { { ?b <r> ?c } UNION { ?b <s> ?c } }
            }""")
        nf = to_union_normal_form(pattern)
        assert len(nf.branches) == 2
        assert nf.spurious_possible

    def test_nested_unions_multiply(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              { { ?a <p> ?b } UNION { ?a <q> ?b } }
              { { ?b <r> ?c } UNION { ?b <s> ?c } }
            }""")
        nf = to_union_normal_form(pattern)
        assert len(nf.branches) == 4

    def test_rule5_filter_distributes_over_union(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              { ?a <p> ?b } UNION { ?a <q> ?b }
              FILTER(?b != <x>)
            }""")
        nf = to_union_normal_form(pattern)
        assert len(nf.branches) == 2
        for branch in nf.branches:
            assert any(isinstance(node, Filter) for node in branch.walk())


class TestFilterPushing:
    def test_rule4_filter_pushes_into_master(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              { ?a <p> ?b OPTIONAL { ?b <q> ?c } }
              FILTER(?b != <x>)
            }""")
        nf = to_union_normal_form(pattern)
        branch = nf.branches[0]
        # filter ended up on the master side, not around the LeftJoin
        assert isinstance(branch, LeftJoin)
        assert isinstance(branch.left, Filter)

    def test_filter_on_slave_vars_stays_outside(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              { ?a <p> ?b OPTIONAL { ?b <q> ?c } }
              FILTER(?c != <x>)
            }""")
        nf = to_union_normal_form(pattern)
        assert isinstance(nf.branches[0], Filter)

    def test_is_safe_filter(self):
        safe = pattern_of(
            "SELECT * WHERE { ?a <p> ?b FILTER(?b > 1) }")
        assert is_safe_filter(safe)
        unsafe = Filter(safe.expr,
                        BGP(pattern_of("SELECT * WHERE { ?a <p> ?c }")
                            .patterns))
        assert not is_safe_filter(unsafe)

    def test_equality_filter_elimination(self):
        pattern = pattern_of("""
            SELECT * WHERE {
              ?a <p> ?m . ?a <q> ?n .
              FILTER(?m = ?n)
            }""")
        rewritten = eliminate_equality_filters(pattern)
        assert not any(isinstance(n, Filter) for n in rewritten.walk())
        assert rewritten.variables() == {Variable("a"), Variable("m")}
