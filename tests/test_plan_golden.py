"""Plan-golden check: planner drift must be visible in diffs.

For each of the 19 Appendix E template queries, the full ``explain``
rendering — logical IR, pass trace, structural key, physical plan per
branch — is snapshotted under ``tests/golden/``.  Any change to the
compiler pipeline that alters a plan shows up as a golden-file diff in
review instead of silently shifting execution behavior.

Regenerate after an *intentional* planner change with::

    REGEN_PLAN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_plan_golden.py -q

and commit the updated files.
"""

from __future__ import annotations

import os

import pytest

from repro import BitMatStore
from repro.core.explain import explain
from repro.datasets import (ALL_SUITES, generate_dbpedia, generate_lubm,
                            generate_uniprot)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

_GENERATORS = {
    "LUBM": generate_lubm,
    "UniProt": generate_uniprot,
    "DBPedia": generate_dbpedia,
}

_CASES = [(dataset, name, query)
          for dataset, suite in ALL_SUITES.items()
          for name, query in suite.items()]


@pytest.fixture(scope="module")
def stores():
    """One *frozen* BitMat store per dataset, shared per suite.

    Freezing collects per-predicate statistics, so the snapshots pin
    the cost-based ordering decisions (not the heuristic fallback).
    """
    built = {dataset: BitMatStore.build(generate())
             for dataset, generate in _GENERATORS.items()}
    for store in built.values():
        store.freeze()
    return built


def _golden_path(dataset: str, name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"plan_{dataset}_{name}.txt")


@pytest.mark.parametrize("dataset,name,query", _CASES,
                         ids=[f"{d}-{n}" for d, n, _ in _CASES])
def test_plan_matches_golden(dataset, name, query, stores):
    rendered = str(explain(stores[dataset], query)) + "\n"
    path = _golden_path(dataset, name)
    if os.environ.get("REGEN_PLAN_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        return
    assert os.path.exists(path), (
        f"missing golden plan {path}; regenerate with "
        f"REGEN_PLAN_GOLDEN=1")
    with open(path, encoding="utf-8") as handle:
        expected = handle.read()
    assert rendered == expected, (
        f"plan for {dataset}/{name} drifted from {path}; if the change "
        f"is intentional, regenerate with REGEN_PLAN_GOLDEN=1 and "
        f"commit the diff")


def test_no_stale_golden_files():
    """Every golden file corresponds to a current template query."""
    expected = {os.path.basename(_golden_path(dataset, name))
                for dataset, name, _query in _CASES}
    actual = {entry for entry in os.listdir(GOLDEN_DIR)
              if entry.startswith("plan_")}
    assert actual == expected
