"""Dataset generator invariants and end-to-end query correctness."""

import pytest

from repro import BitMatStore, LBREngine, NaiveEngine
from repro.datasets import (ALL_SUITES, DBPEDIA_QUERIES, DBPediaConfig,
                            LUBMConfig, LUBM_QUERIES, UB, UNI,
                            UNIPROT_QUERIES, UniProtConfig, generate_dbpedia,
                            generate_lubm, generate_uniprot)
from repro.datasets.dbpedia import DBPOWL, DBPPROP
from repro.rdf.namespace import FOAF, RDF
from repro.rdf.terms import URI

SMALL_LUBM = LUBMConfig(departments_min=3, departments_max=4,
                        undergrad_per_faculty=2.0, grad_per_faculty=1.5)
SMALL_UNIPROT = UniProtConfig(proteins=250)
SMALL_DBPEDIA = DBPediaConfig(places=120, settlements=40, airports=40,
                              soccer_players=50, persons=80, companies=60,
                              vehicles=25)


@pytest.fixture(scope="module")
def lubm():
    return generate_lubm(SMALL_LUBM)


@pytest.fixture(scope="module")
def uniprot():
    return generate_uniprot(SMALL_UNIPROT)


@pytest.fixture(scope="module")
def dbpedia():
    return generate_dbpedia(SMALL_DBPEDIA)


class TestLUBMInvariants:
    def test_deterministic(self):
        first = generate_lubm(SMALL_LUBM)
        second = generate_lubm(SMALL_LUBM)
        assert set(first) == set(second)

    def test_department0_exists(self, lubm):
        dept = URI("http://www.Department0.University0.edu")
        assert lubm.count(s=dept, p=RDF.type) == 1

    def test_every_department_has_a_head(self, lubm):
        departments = [t.s for t in lubm.match(p=RDF.type,
                                               o=UB.Department)]
        for dept in departments:
            assert lubm.count(p=UB.headOf, o=dept) == 1

    def test_grad_students_have_advisors(self, lubm):
        grads = [t.s for t in lubm.match(p=RDF.type, o=UB.GraduateStudent)]
        assert grads
        for grad in grads:
            assert lubm.count(s=grad, p=UB.advisor) == 1

    def test_ta_triangles_close_sometimes(self, lubm):
        # some TA assists a course taught by their own advisor — the
        # structural property Q1/Q4/Q5 need
        closing = 0
        for ta in lubm.match(p=UB.teachingAssistantOf):
            advisors = [t.o for t in lubm.match(s=ta.s, p=UB.advisor)]
            for advisor in advisors:
                if lubm.count(s=advisor, p=UB.teacherOf, o=ta.o):
                    closing += 1
        assert closing > 0

    def test_contact_details_partial(self, lubm):
        professors = [t.s for t in lubm.match(p=RDF.type,
                                              o=UB.FullProfessor)]
        with_email = sum(1 for p in professors
                         if lubm.count(s=p, p=UB.emailAddress))
        assert 0 < with_email < len(professors)


class TestUniProtInvariants:
    def test_deterministic(self):
        assert set(generate_uniprot(SMALL_UNIPROT)) == \
            set(generate_uniprot(SMALL_UNIPROT))

    def test_statements_never_encoded_by(self, uniprot):
        # the structural reason UniProt Q2 is empty
        statement_subjects = {t.s for t in uniprot.match(p=RDF.subject)}
        encoded = {t.s for t in uniprot.match(p=UNI.encodedBy)}
        assert statement_subjects
        assert not statement_subjects & encoded

    def test_genes_never_have_context(self, uniprot):
        # the structural reason every UniProt Q4 row is NULL-padded
        genes = {t.o for t in uniprot.match(p=UNI.encodedBy)}
        with_context = {t.s for t in uniprot.match(p=UNI.context)}
        assert with_context
        assert not genes & with_context

    def test_selective_modified_date(self, uniprot):
        total = uniprot.count(p=UNI.modified)
        selective = uniprot.count(
            p=UNI.modified,
            o=__import__("repro.rdf.terms", fromlist=["Literal"])
            .Literal("2008-01-15"))
        assert 0 < selective < total / 5

    def test_transmembrane_ranges(self, uniprot):
        annotations = [t.s for t in uniprot.match(
            p=RDF.type, o=UNI.Transmembrane_Annotation)]
        assert annotations
        with_range = sum(1 for a in annotations
                         if uniprot.count(s=a, p=UNI.range))
        assert 0 < with_range <= len(annotations)


class TestDBPediaInvariants:
    def test_deterministic(self):
        assert set(generate_dbpedia(SMALL_DBPEDIA)) == \
            set(generate_dbpedia(SMALL_DBPEDIA))

    def test_clubs_are_literals_without_capacity(self, dbpedia):
        # the structural reason DBPedia Q2 is empty
        club_values = {t.o for t in dbpedia.match(p=DBPPROP.clubs)}
        with_capacity = {t.s for t in dbpedia.match(p=DBPOWL.capacity)}
        assert club_values
        assert not club_values & with_capacity

    def test_persons_have_no_foaf_page(self, dbpedia):
        # the structural reason DBPedia Q3 is empty
        persons = {t.s for t in dbpedia.match(p=RDF.type, o=DBPOWL.Person)}
        with_page = {t.s for t in dbpedia.match(p=FOAF.page)}
        assert persons
        assert not persons & with_page

    def test_long_predicate_tail(self, dbpedia):
        assert len(dbpedia.predicates()) > 100

    def test_airport_optionals_are_rare(self, dbpedia):
        airports = [t.s for t in dbpedia.match(p=RDF.type,
                                               o=DBPOWL.Airport)]
        with_homepage = sum(1 for a in airports
                            if dbpedia.count(s=a, p=FOAF.homepage))
        assert with_homepage < len(airports) / 5


@pytest.mark.parametrize("suite", ["LUBM", "UniProt", "DBPedia"])
class TestQueriesAgainstOracle:
    def _graph(self, suite, lubm, uniprot, dbpedia):
        return {"LUBM": lubm, "UniProt": uniprot, "DBPedia": dbpedia}[suite]

    def test_all_queries_match_oracle(self, suite, lubm, uniprot, dbpedia):
        graph = self._graph(suite, lubm, uniprot, dbpedia)
        store = BitMatStore.build(graph)
        engine = LBREngine(store)
        oracle = NaiveEngine(graph)
        for name, query in ALL_SUITES[suite].items():
            assert engine.execute(query).as_multiset() == \
                oracle.execute(query).as_multiset(), f"{suite} {name}"


class TestPaperShapeFlags:
    def test_lubm_best_match_flags(self, lubm):
        # Table 6.2: best-match required exactly for Q4 and Q5
        store = BitMatStore.build(lubm)
        engine = LBREngine(store)
        expected = {"Q1": False, "Q2": False, "Q3": False,
                    "Q4": True, "Q5": True, "Q6": False}
        for name, query in LUBM_QUERIES.items():
            engine.execute(query)
            assert engine.last_stats.best_match_required == expected[name], name

    def test_uniprot_q2_detected_empty_early(self, uniprot):
        store = BitMatStore.build(uniprot)
        engine = LBREngine(store)
        result = engine.execute(UNIPROT_QUERIES["Q2"])
        assert len(result) == 0
        assert engine.last_stats.aborted_empty

    def test_dbpedia_q2_q3_detected_empty_early(self, dbpedia):
        store = BitMatStore.build(dbpedia)
        engine = LBREngine(store)
        for name in ("Q2", "Q3"):
            result = engine.execute(DBPEDIA_QUERIES[name])
            assert len(result) == 0
            assert engine.last_stats.aborted_empty, name

    def test_uniprot_q4_all_rows_null(self, uniprot):
        store = BitMatStore.build(uniprot)
        engine = LBREngine(store)
        result = engine.execute(UNIPROT_QUERIES["Q4"])
        assert len(result) > 0
        assert result.rows_with_nulls() == len(result)

    def test_lubm_low_selectivity_queries_prune_heavily(self, lubm):
        store = BitMatStore.build(lubm)
        engine = LBREngine(store)
        for name in ("Q1", "Q3"):
            engine.execute(LUBM_QUERIES[name])
            stats = engine.last_stats
            assert stats.triples_after_pruning < stats.initial_triples / 2
