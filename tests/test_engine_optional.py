"""LBR engine tests for OPTIONAL patterns — the paper's core subject."""

import pytest

from repro import BitMatStore, Graph, LBREngine, NULL, NaiveEngine, URI

from .conftest import (EX, FIGURE_3_2_QUERY, assert_engines_agree, triples,
                       uri)


def q(body: str) -> str:
    return f"PREFIX ex: <{EX}>\nSELECT * WHERE {{ {body} }}"


ACTORS = Graph(triples(
    ("a1", "name", "n1"), ("a1", "address", "ad1"),
    ("a2", "name", "n2"), ("a2", "address", "ad2"),
    ("a3", "name", "n3"), ("a3", "address", "ad3"),
    ("a1", "email", "e1"), ("a1", "telephone", "t1"),
    ("a2", "email", "e2"),
))


class TestIntroductionQueries:
    def test_q1_actors_with_optional_contact(self):
        # Q1 of §1: emails/telephones only for those who list them
        query = q("""
            ?actor ex:name ?name . ?actor ex:address ?addr .
            OPTIONAL { ?actor ex:email ?email .
                       ?actor ex:telephone ?tele . }""")
        assert_engines_agree(ACTORS, query)
        store = BitMatStore.build(ACTORS)
        result = LBREngine(store).execute(query)
        rows = {row["actor"]: row for row in result.bindings()}
        assert rows[uri("a1")]["email"] == uri("e1")
        assert rows[uri("a2")]["email"] is NULL  # email without telephone
        assert rows[uri("a3")]["email"] is NULL

    def test_q2_figure_3_2_exact_results(self, figure_graph, figure_engine):
        result = figure_engine.execute(FIGURE_3_2_QUERY)
        assert set(result.rows) == {
            (uri("Julia"), uri("Seinfeld")),
            (uri("Larry"), NULL),
        }
        stats = figure_engine.last_stats
        assert not stats.best_match_required
        assert stats.triples_after_pruning == 4  # 2 + 1 + 1 (minimal)


class TestNestingShapes:
    DATA = Graph(triples(
        ("x1", "p", "y1"), ("x2", "p", "y2"), ("x3", "p", "y3"),
        ("y1", "q", "z1"), ("y2", "q", "z2"),
        ("z1", "r", "w1"),
        ("y1", "s", "v1"), ("y3", "s", "v3"),
        ("x1", "t", "u1"), ("x3", "t", "u3"),
        ("x1", "s", "sv1"), ("z1", "s", "sz1"),
    ))

    @pytest.mark.parametrize("body", [
        # single OPT
        "?x ex:p ?y OPTIONAL { ?y ex:q ?z }",
        # nested OPT: P1 OPT (P2 OPT P3)
        "?x ex:p ?y OPTIONAL { ?y ex:q ?z OPTIONAL { ?z ex:r ?w } }",
        # sequential OPTs: (P1 OPT P2) OPT P3
        "?x ex:p ?y OPTIONAL { ?y ex:q ?z } OPTIONAL { ?y ex:s ?v }",
        # OPT then join
        "{ ?x ex:p ?y OPTIONAL { ?y ex:q ?z } } { ?x ex:t ?u }",
        # join of two OPT blocks, both slaves hanging off their master
        "{ ?x ex:p ?y OPTIONAL { ?y ex:q ?z } } "
        "{ ?x ex:t ?u OPTIONAL { ?x ex:s ?v } }",
        # three-level well-designed nesting
        "?x ex:p ?y OPTIONAL { ?y ex:q ?z OPTIONAL { ?z ex:r ?w "
        "OPTIONAL { ?z ex:s ?v } } }",
        # OPT block with multiple TPs
        "?x ex:p ?y OPTIONAL { ?y ex:q ?z . ?z ex:r ?w }",
    ])
    def test_matches_oracle(self, body):
        assert_engines_agree(self.DATA, q(body))

    def test_empty_master_with_optional(self):
        # OPTIONAL as the only group member: { } OPT P
        assert_engines_agree(self.DATA, q("OPTIONAL { ?y ex:q ?z }"))

    def test_optional_with_no_matches_at_all(self):
        assert_engines_agree(self.DATA,
                             q("?x ex:p ?y OPTIONAL { ?y ex:zz ?z }"))

    def test_optional_ground_triple_present(self):
        assert_engines_agree(self.DATA,
                             q("?x ex:p ?y OPTIONAL { ex:z1 ex:r ex:w1 }"))

    def test_optional_ground_triple_absent(self):
        assert_engines_agree(
            self.DATA,
            q("?x ex:p ?y OPTIONAL { ex:z1 ex:r ex:nope . ?y ex:q ?z }"))


class TestCyclicQueries:
    TRIANGLE = Graph(triples(
        ("s1", "advisor", "p1"), ("s2", "advisor", "p1"),
        ("s3", "advisor", "p2"),
        ("p1", "teaches", "c1"), ("p2", "teaches", "c2"),
        ("s1", "takes", "c1"), ("s2", "takes", "c2"), ("s3", "takes", "c2"),
        ("p1", "worksFor", "d1"), ("p2", "worksFor", "d1"),
    ))

    def test_cyclic_slave_needs_best_match(self):
        query = q("""
            ?x ex:worksFor ex:d1 .
            OPTIONAL { ?y ex:advisor ?x . ?x ex:teaches ?z .
                       ?y ex:takes ?z . }""")
        assert_engines_agree(self.TRIANGLE, query)
        store = BitMatStore.build(self.TRIANGLE)
        engine = LBREngine(store)
        engine.execute(query)
        assert engine.last_stats.best_match_required

    def test_cyclic_master_single_jvar_slaves(self):
        # Lemma 3.4: cyclic GoJ but one jvar per slave — no best-match
        query = q("""
            { ?y ex:advisor ?x . ?x ex:teaches ?z . ?y ex:takes ?z .
              OPTIONAL { ?x ex:worksFor ?d } }""")
        assert_engines_agree(self.TRIANGLE, query)
        store = BitMatStore.build(self.TRIANGLE)
        engine = LBREngine(store)
        engine.execute(query)
        assert not engine.last_stats.best_match_required

    def test_partial_slave_match_nullified(self):
        # slave block where one TP matches but the other does not:
        # the whole block must be NULL
        graph = Graph(triples(
            ("m1", "p", "k1"),
            ("k1", "q", "q1"),          # q matches
            # no ("q1", "r", ...) so the block fails as a whole
            ("k2", "r", "r1"),
        ))
        query = q("?m ex:p ?k OPTIONAL { ?k ex:q ?a . ?a ex:r ?b }")
        assert_engines_agree(graph, query)
        store = BitMatStore.build(graph)
        result = LBREngine(store).execute(query)
        assert set(result.rows) == {(NULL, NULL, uri("k1"), uri("m1"))} or \
            all(NULL in row for row in result.rows)


class TestWellDesignedNestingFromPaper:
    """The Figure 2.1(b) query shape over concrete data."""

    def test_figure_21b_shape_agrees(self):
        graph = Graph(triples(
            ("a1", "p1", "x1"), ("a2", "p1", "x2"),
            ("a1", "p2", "b1"),
            ("a1", "p3", "c1"), ("a2", "p3", "c2"),
            ("c1", "p4", "d1"),
            ("a1", "p5", "e1"),
            ("e1", "p6", "f1"),
        ))
        query = q("""
            { { ?a ex:p1 ?x OPTIONAL { ?a ex:p2 ?b } }
              { ?a ex:p3 ?c OPTIONAL { ?c ex:p4 ?d } } }
            OPTIONAL { ?a ex:p5 ?e OPTIONAL { ?e ex:p6 ?f } }""")
        assert_engines_agree(graph, query)


class TestResultSetHelpers:
    def test_rows_with_nulls_metric(self, figure_store):
        engine = LBREngine(figure_store)
        result = engine.execute(FIGURE_3_2_QUERY)
        assert result.rows_with_nulls() == 1
        assert engine.last_stats.results_with_nulls == 1
