"""FILTER and UNION handling — the §5.2 extensions."""

import pytest

from repro import (BitMatStore, Graph, LBREngine, NULL, NaiveEngine,
                   UnsupportedQueryError)

from .conftest import EX, assert_engines_agree, triples, uri


def q(body: str) -> str:
    return f"PREFIX ex: <{EX}>\nSELECT * WHERE {{ {body} }}"


def int_lit(value: int) -> str:
    return str(value)


PEOPLE = Graph(
    triples(
        ("p1", "knows", "p2"), ("p2", "knows", "p3"),
        ("p3", "knows", "p1"), ("p1", "knows", "p3"),
        ("p1", "city", "nyc"), ("p2", "city", "la"), ("p3", "city", "nyc"),
    ) + [
        # ages as integer literals
    ])

from repro.rdf.terms import Literal, Triple  # noqa: E402

for person, age in (("p1", 30), ("p2", 40), ("p3", 25)):
    PEOPLE.add(Triple(
        uri(person), uri("age"),
        Literal(str(age),
                datatype="http://www.w3.org/2001/XMLSchema#integer")))


class TestFilters:
    def test_single_var_filter_on_bgp(self):
        assert_engines_agree(PEOPLE, q("?a ex:age ?g FILTER(?g > 28)"))

    def test_filter_equality_uri(self):
        assert_engines_agree(
            PEOPLE, q("?a ex:city ?c FILTER(?c = ex:nyc)"))

    def test_filter_inequality(self):
        assert_engines_agree(
            PEOPLE, q("?a ex:knows ?b . ?a ex:city ?c FILTER(?c != ex:la)"))

    def test_two_var_filter_fan(self):
        assert_engines_agree(
            PEOPLE,
            q("?a ex:age ?g . ?a ex:knows ?b . ?b ex:age ?h "
              "FILTER(?g > ?h)"))

    def test_filter_inside_optional_block(self):
        assert_engines_agree(
            PEOPLE,
            q("?a ex:city ?c OPTIONAL { ?a ex:age ?g FILTER(?g > 28) }"))

    def test_two_var_filter_inside_optional(self):
        assert_engines_agree(
            PEOPLE,
            q("?a ex:knows ?b OPTIONAL { ?a ex:age ?g . ?b ex:age ?h "
              "FILTER(?g < ?h) }"))

    def test_filter_on_master_vars_pushed(self):
        assert_engines_agree(
            PEOPLE,
            q("{ ?a ex:age ?g OPTIONAL { ?a ex:knows ?b } } "
              "FILTER(?g >= 30)"))

    def test_bound_filter(self):
        assert_engines_agree(
            PEOPLE,
            q("{ ?a ex:city ?c OPTIONAL { ?a ex:knows ?b } } "
              "FILTER(BOUND(?b))"))

    def test_boolean_connectives(self):
        assert_engines_agree(
            PEOPLE,
            q("?a ex:age ?g FILTER(?g > 26 && ?g < 35 || ?g = 40)"))

    def test_regex_filter(self):
        assert_engines_agree(
            PEOPLE, q('?a ex:city ?c FILTER(REGEX(?c, "nyc$"))'))

    def test_unsafe_filter_rejected_by_lbr(self):
        store = BitMatStore.build(PEOPLE)
        with pytest.raises(UnsupportedQueryError, match="unsafe"):
            LBREngine(store).execute(
                q("{ ?a ex:age ?g FILTER(?zzz > 1) } "))

    def test_equality_filter_eliminated(self):
        # FILTER(?m = ?n) handled by variable renaming (§5.2)
        assert_engines_agree(
            PEOPLE,
            q("?a ex:knows ?m . ?a ex:knows ?n FILTER(?m = ?n)"))

    def test_filter_emptying_all_rows(self):
        assert_engines_agree(PEOPLE, q("?a ex:age ?g FILTER(?g > 999)"))


class TestUnions:
    def test_simple_union(self):
        assert_engines_agree(
            PEOPLE, q("{ ?a ex:city ex:nyc } UNION { ?a ex:city ex:la }"))

    def test_union_preserves_bag_multiplicity(self):
        # the same row from both branches must appear twice
        store = BitMatStore.build(PEOPLE)
        result = LBREngine(store).execute(
            q("{ ?a ex:city ex:nyc } UNION { ?a ex:city ex:nyc }"))
        assert result.as_multiset()[(uri("p1"),)] == 2

    def test_union_join_distribution(self):
        assert_engines_agree(
            PEOPLE,
            q("{ { ?a ex:city ex:nyc } UNION { ?a ex:city ex:la } } "
              "{ ?a ex:age ?g }"))

    def test_union_with_optional_master(self):
        assert_engines_agree(
            PEOPLE,
            q("{ { ?a ex:city ex:nyc } UNION { ?a ex:city ex:la } } "
              "OPTIONAL { ?a ex:knows ?b }"))

    def test_union_inside_optional_rule3(self):
        # rule 3 introduces spurious rows removed by minimum union:
        # compare as sets (documented approximation)
        assert_engines_agree(
            PEOPLE,
            q("?a ex:age ?g OPTIONAL { { ?a ex:city ?c } UNION "
              "{ ?a ex:knows ?c } }"),
            compare="set")

    def test_union_branches_with_different_variables(self):
        assert_engines_agree(
            PEOPLE,
            q("{ ?a ex:city ex:nyc } UNION { ?a ex:age ?g }"),
            compare="set")

    def test_union_of_optionals(self):
        assert_engines_agree(
            PEOPLE,
            q("{ ?a ex:city ex:nyc OPTIONAL { ?a ex:knows ?b } } UNION "
              "{ ?a ex:city ex:la OPTIONAL { ?a ex:age ?g } }"),
            compare="set")

    def test_union_with_filter_rule5(self):
        assert_engines_agree(
            PEOPLE,
            q("{ { ?a ex:age ?g } UNION { ?a ex:age ?g . ?a ex:city ex:la } }"
              " FILTER(?g > 26)"))

    def test_stats_report_branches(self):
        store = BitMatStore.build(PEOPLE)
        engine = LBREngine(store)
        engine.execute(q("{ ?a ex:city ex:nyc } UNION { ?a ex:city ex:la }"
                         " UNION { ?a ex:city ex:sf }"))
        assert engine.last_stats.branches == 3


class TestFaNInteraction:
    def test_fan_failure_nullifies_block(self):
        # the filter inside the OPT fails for p2's age: that block must
        # be NULL, not dropped
        store = BitMatStore.build(PEOPLE)
        result = LBREngine(store).execute(
            q("?a ex:city ?c OPTIONAL { ?a ex:age ?g FILTER(?g < 28) }"))
        rows = {row["a"]: row["g"] for row in result.bindings()}
        assert rows[uri("p3")] is not NULL
        assert rows[uri("p1")] is NULL
        assert rows[uri("p2")] is NULL

    def test_fan_drop_on_master_scope(self):
        store = BitMatStore.build(PEOPLE)
        result = LBREngine(store).execute(
            q("?a ex:age ?g . ?a ex:knows ?b . ?b ex:age ?h "
              "FILTER(?g > ?h)"))
        for row in result.bindings():
            assert float(str(row["g"])) > float(str(row["h"]))
