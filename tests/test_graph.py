"""Triple store tests."""

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import Triple, URI

from .conftest import triples, uri


@pytest.fixture()
def graph() -> Graph:
    return Graph(triples(
        ("a", "knows", "b"),
        ("a", "knows", "c"),
        ("b", "knows", "c"),
        ("a", "name", "b"),
    ))


class TestMutation:
    def test_add_returns_true_for_new(self):
        g = Graph()
        assert g.add(Triple(uri("x"), uri("p"), uri("y")))

    def test_add_duplicate_returns_false(self, graph):
        assert not graph.add(triples(("a", "knows", "b"))[0])
        assert len(graph) == 4

    def test_add_all_counts_new_only(self, graph):
        added = graph.add_all(triples(("a", "knows", "b"),
                                      ("z", "knows", "a")))
        assert added == 1
        assert len(graph) == 5

    def test_add_accepts_plain_tuples(self):
        g = Graph()
        g.add((uri("x"), uri("p"), uri("y")))
        assert (uri("x"), uri("p"), uri("y")) in g

    def test_discard_removes(self, graph):
        assert graph.discard(triples(("a", "knows", "b"))[0])
        assert len(graph) == 3
        assert triples(("a", "knows", "b"))[0] not in graph

    def test_discard_missing_returns_false(self, graph):
        assert not graph.discard(triples(("q", "q", "q"))[0])

    def test_discard_cleans_indexes(self, graph):
        graph.discard(triples(("a", "name", "b"))[0])
        assert graph.count(p=uri("name")) == 0
        assert uri("name") not in graph.predicates()


class TestMatch:
    def test_full_wildcard(self, graph):
        assert len(list(graph.match())) == 4

    def test_by_subject(self, graph):
        assert len(list(graph.match(s=uri("a")))) == 3

    def test_by_predicate(self, graph):
        assert len(list(graph.match(p=uri("knows")))) == 3

    def test_by_object(self, graph):
        assert len(list(graph.match(o=uri("c")))) == 2

    def test_sp_pattern(self, graph):
        found = set(graph.match(s=uri("a"), p=uri("knows")))
        assert found == set(triples(("a", "knows", "b"), ("a", "knows", "c")))

    def test_po_pattern(self, graph):
        found = list(graph.match(p=uri("knows"), o=uri("c")))
        assert len(found) == 2

    def test_so_pattern(self, graph):
        found = list(graph.match(s=uri("a"), o=uri("b")))
        assert {t.p for t in found} == {uri("knows"), uri("name")}

    def test_exact_triple(self, graph):
        assert list(graph.match(uri("a"), uri("knows"), uri("b")))
        assert not list(graph.match(uri("a"), uri("knows"), uri("zzz")))


class TestCounts:
    def test_count_matches_match(self, graph):
        for pattern in [(None, None, None), (uri("a"), None, None),
                        (None, uri("knows"), None), (None, None, uri("c")),
                        (uri("a"), uri("knows"), None)]:
            assert graph.count(*pattern) == len(list(graph.match(*pattern)))

    def test_characteristics(self, graph):
        chars = graph.characteristics()
        assert chars == {"triples": 4, "subjects": 2, "predicates": 2,
                         "objects": 2}

    def test_predicate_counts(self, graph):
        assert graph.predicate_counts() == {uri("knows"): 3, uri("name"): 1}

    def test_dimension_sets(self, graph):
        assert graph.subjects() == {uri("a"), uri("b")}
        assert graph.objects() == {uri("b"), uri("c")}
