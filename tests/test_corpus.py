"""Regression corpus replay: every case under ``tests/corpus/``.

The corpus is the fuzzer's long-term memory — every found-and-fixed
mismatch and every hand-picked tricky query lands here as JSON and is
replayed by tier-1 on every run.  A case expects either full
differential agreement (``expect: "agree"``) or a clean rejection
(``expect: "unsupported"`` for queries documenting fragment limits).
"""

from __future__ import annotations

import os

import pytest

from repro.fuzz import load_corpus, run_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    """The ISSUE-2 floor: at least ten persisted tricky cases."""
    assert len(ENTRIES) >= 10


@pytest.mark.parametrize(
    "entry", ENTRIES,
    ids=[entry.case.name or os.path.basename(entry.path)
         for entry in ENTRIES])
def test_corpus_case(entry):
    result = run_case(entry.case)
    detail = "; ".join(d.describe() for d in result.disagreements)
    assert result.status == entry.expect, (
        f"{entry.path}: expected {entry.expect}, got {result.status} "
        f"{detail}\n{entry.case.query_text}")


def test_corpus_cases_have_descriptions():
    """Every case must say why it is tricky (the corpus is documentation)."""
    for entry in ENTRIES:
        assert entry.case.name, f"{entry.path}: missing name"
        assert entry.case.description, (
            f"{entry.path}: missing description")
