"""SPARQL parser and algebra tests."""

import pytest

from repro.exceptions import ParseError
from repro.rdf.terms import BNode, Literal, URI, Variable
from repro.sparql import parse_pattern, parse_query, serialize_algebra
from repro.sparql.ast import (BGP, Filter, Join, LeftJoin, TriplePattern,
                              Union, simplify)
from repro.sparql import expressions as ex
from repro.sparql.tokenizer import tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("SELECT * WHERE { ?s <p> 'x' }")
                 if t.kind != "EOF"]
        # note: single quotes are not N-Triples; use double in queries
        assert kinds[0] == "KEYWORD"

    def test_iri_vs_less_than(self):
        tokens = list(tokenize("FILTER(?x < 5)"))
        assert any(t.kind == "OP" and t.value == "<" for t in tokens)

    def test_iri_token(self):
        tokens = list(tokenize("<http://example.org/x>"))
        assert tokens[0].kind == "IRI"
        assert tokens[0].value == "http://example.org/x"

    def test_pname_trailing_dot_split(self):
        tokens = list(tokenize("ub:Person."))
        assert tokens[0].kind == "PNAME"
        assert tokens[0].value == "ub:Person"
        assert tokens[1].value == "."

    def test_keyword_case_insensitive(self):
        tokens = list(tokenize("select Select SELECT"))
        assert all(t.kind == "KEYWORD" and t.value == "select"
                   for t in tokens[:3])

    def test_a_keyword(self):
        assert any(t.kind == "A" for t in tokenize("?s a ub:Thing"))

    def test_var_with_dollar(self):
        tokens = list(tokenize("$x"))
        assert tokens[0].kind == "VAR" and tokens[0].value == "x"

    def test_comment_skipped(self):
        tokens = [t for t in tokenize("?x # comment\n?y") if t.kind == "VAR"]
        assert [t.value for t in tokens] == ["x", "y"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            list(tokenize("?x ~ ?y"))

    def test_line_and_column_tracked(self):
        tokens = list(tokenize("?a\n  ?b"))
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestBasicQueries:
    def test_select_star_single_tp(self):
        query = parse_query("SELECT * WHERE { ?s <p> ?o }")
        assert query.select is None
        assert isinstance(query.pattern, BGP)
        assert query.pattern.patterns == (
            TriplePattern(Variable("s"), URI("p"), Variable("o")),)

    def test_select_vars(self):
        query = parse_query("SELECT ?a ?b WHERE { ?a <p> ?b }")
        assert query.select == (Variable("a"), Variable("b"))

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT * WHERE { ?s <p> ?o }").distinct

    def test_where_keyword_optional(self):
        assert parse_query("SELECT * { ?s <p> ?o }") is not None

    def test_prefix_expansion(self):
        query = parse_query(
            "PREFIX ex: <http://example.org/>\n"
            "SELECT * WHERE { ex:s ex:p ?o }")
        tp = query.pattern.patterns[0]
        assert tp.s == URI("http://example.org/s")

    def test_default_prefixes_preloaded(self):
        query = parse_query("SELECT * WHERE { ?s rdf:type ?t }")
        assert "rdf-syntax-ns#type" in str(query.pattern.patterns[0].p)

    def test_undeclared_prefix_raises(self):
        with pytest.raises(ParseError, match="undeclared prefix"):
            parse_query("SELECT * WHERE { ?s nope:thing ?o }")

    def test_a_expands_to_rdf_type(self):
        query = parse_query("SELECT * WHERE { ?s a <C> }")
        assert str(query.pattern.patterns[0].p).endswith("#type")

    def test_multiple_triples_merge_into_one_bgp(self):
        query = parse_query("SELECT * WHERE { ?a <p> ?b . ?b <q> ?c . }")
        assert isinstance(query.pattern, BGP)
        assert len(query.pattern.patterns) == 2

    def test_semicolon_predicate_lists(self):
        query = parse_query("SELECT * WHERE { ?s <p> ?o ; <q> ?r . }")
        patterns = query.pattern.patterns
        assert len(patterns) == 2
        assert patterns[0].s == patterns[1].s == Variable("s")

    def test_comma_object_lists(self):
        query = parse_query("SELECT * WHERE { ?s <p> ?a , ?b . }")
        assert len(query.pattern.patterns) == 2

    def test_literal_objects(self):
        query = parse_query('SELECT * WHERE { ?s <p> "txt"@en . ?s <q> 5 . '
                            '?s <r> 2.5 . ?s <t> true . }')
        objects = [tp.o for tp in query.pattern.patterns]
        assert objects[0] == Literal("txt", language="en")
        assert objects[1].datatype.endswith("integer")
        assert objects[2].datatype.endswith("decimal")
        assert objects[3].datatype.endswith("boolean")

    def test_typed_literal(self):
        query = parse_query(
            'SELECT * WHERE { ?s <p> "5"^^xsd:integer . }')
        assert query.pattern.patterns[0].o.datatype.endswith("integer")

    def test_blank_node_terms(self):
        query = parse_query("SELECT * WHERE { _:b0 <p> ?o }")
        assert query.pattern.patterns[0].s == BNode("b0")

    def test_trailing_dot_optional(self):
        q1 = parse_query("SELECT * WHERE { ?s <p> ?o . }")
        q2 = parse_query("SELECT * WHERE { ?s <p> ?o }")
        assert q1.pattern == q2.pattern

    def test_missing_brace_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * WHERE { ?s <p> ?o ")

    def test_no_select_vars_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT WHERE { ?s <p> ?o }")

    def test_garbage_after_query_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * WHERE { ?s <p> ?o } trailing")


class TestAlgebraShapes:
    def test_optional_becomes_left_join(self):
        query = parse_query(
            "SELECT * WHERE { ?s <p> ?o OPTIONAL { ?o <q> ?r } }")
        assert isinstance(query.pattern, LeftJoin)
        assert isinstance(query.pattern.left, BGP)
        assert isinstance(query.pattern.right, BGP)

    def test_nested_optional(self):
        query = parse_query(
            "SELECT * WHERE { ?a <p> ?b OPTIONAL { ?b <q> ?c "
            "OPTIONAL { ?c <r> ?d } } }")
        assert serialize_algebra(query.pattern) == "(P1 OPT (P2 OPT P3))"

    def test_sequential_optionals_left_deep(self):
        query = parse_query(
            "SELECT * WHERE { ?a <p> ?b OPTIONAL { ?a <q> ?c } "
            "OPTIONAL { ?a <r> ?d } }")
        assert serialize_algebra(query.pattern) == "((P1 OPT P2) OPT P3)"

    def test_adjacent_groups_join(self):
        query = parse_query(
            "SELECT * WHERE { { ?a <p> ?b OPTIONAL { ?a <x> ?y } } "
            "{ ?a <q> ?c OPTIONAL { ?a <z> ?w } } }")
        assert serialize_algebra(query.pattern) == \
            "((P1 OPT P2) JOIN (P3 OPT P4))"

    def test_figure_2_1b_shape(self):
        # ((Pa OPT Pb) JOIN (Pc OPT Pd)) OPT (Pe OPT Pf)
        query = parse_query("""
            SELECT * WHERE {
              { { ?a <p1> ?x OPTIONAL { ?a <p2> ?b } }
                { ?a <p3> ?c OPTIONAL { ?c <p4> ?d } } }
              OPTIONAL { ?a <p5> ?e OPTIONAL { ?e <p6> ?f } }
            }""")
        assert serialize_algebra(query.pattern) == \
            "(((P1 OPT P2) JOIN (P3 OPT P4)) OPT (P5 OPT P6))"

    def test_union(self):
        query = parse_query(
            "SELECT * WHERE { { ?a <p> ?b } UNION { ?a <q> ?b } }")
        assert isinstance(query.pattern, Union)

    def test_union_chain(self):
        query = parse_query(
            "SELECT * WHERE { { ?a <p> ?b } UNION { ?a <q> ?b } "
            "UNION { ?a <r> ?b } }")
        assert serialize_algebra(query.pattern) == \
            "((P1 UNION P2) UNION P3)"

    def test_filter_wraps_group(self):
        query = parse_query(
            "SELECT * WHERE { ?a <p> ?b FILTER(?b > 5) }")
        assert isinstance(query.pattern, Filter)
        assert isinstance(query.pattern.expr, ex.Comparison)

    def test_filter_position_independent(self):
        q1 = parse_query("SELECT * WHERE { FILTER(?b > 5) ?a <p> ?b }")
        q2 = parse_query("SELECT * WHERE { ?a <p> ?b FILTER(?b > 5) }")
        assert q1.pattern == q2.pattern

    def test_empty_group(self):
        query = parse_query("SELECT * WHERE { }")
        assert query.pattern == BGP()

    def test_optional_only_group(self):
        query = parse_query("SELECT * WHERE { OPTIONAL { ?a <p> ?b } }")
        assert isinstance(query.pattern, LeftJoin)
        assert query.pattern.left == BGP()


class TestFilterExpressions:
    def test_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            query = parse_query(
                f"SELECT * WHERE {{ ?a <p> ?b FILTER(?b {op} 3) }}")
            assert query.pattern.expr.op == op

    def test_boolean_connectives(self):
        query = parse_query(
            "SELECT * WHERE { ?a <p> ?b FILTER(?b > 1 && ?b < 9 || !(?b = 5)) }")
        assert isinstance(query.pattern.expr, ex.BooleanOp)
        assert query.pattern.expr.op == "||"

    def test_bound(self):
        query = parse_query(
            "SELECT * WHERE { ?a <p> ?b FILTER(BOUND(?b)) }")
        assert query.pattern.expr == ex.Bound(Variable("b"))

    def test_regex(self):
        query = parse_query(
            'SELECT * WHERE { ?a <p> ?b FILTER(REGEX(?b, "abc", "i")) }')
        assert query.pattern.expr.pattern == "abc"
        assert query.pattern.expr.flags == "i"

    def test_sameterm(self):
        query = parse_query(
            "SELECT * WHERE { ?a <p> ?b . ?a <q> ?c "
            "FILTER(sameTerm(?b, ?c)) }")
        assert isinstance(query.pattern.expr, ex.SameTerm)

    def test_parenthesized_precedence(self):
        query = parse_query(
            "SELECT * WHERE { ?a <p> ?b FILTER((?b > 1 || ?b < 0) && ?b != 5) }")
        assert query.pattern.expr.op == "&&"


class TestSimplify:
    def test_join_of_bgps_merges(self):
        merged = simplify(Join(BGP((TriplePattern(Variable("a"), URI("p"),
                                                  Variable("b")),)),
                               BGP((TriplePattern(Variable("b"), URI("q"),
                                                  Variable("c")),))))
        assert isinstance(merged, BGP)
        assert len(merged.patterns) == 2

    def test_join_with_empty_bgp_collapses(self):
        bgp = BGP((TriplePattern(Variable("a"), URI("p"), Variable("b")),))
        assert simplify(Join(BGP(), bgp)) == bgp
        assert simplify(Join(bgp, BGP())) == bgp

    def test_parse_pattern_helper(self):
        pattern = parse_pattern("{ ?a <p> ?b OPTIONAL { ?b <q> ?c } }")
        assert isinstance(pattern, LeftJoin)


class TestRoundTrip:
    def test_to_sparql_reparses_to_same_algebra(self):
        text = """
            PREFIX ex: <http://example.org/>
            SELECT ?a ?c WHERE {
              ?a ex:p ?b .
              OPTIONAL { ?b ex:q ?c . ?c ex:r ex:End . }
            }"""
        query = parse_query(text)
        again = parse_query(query.to_sparql())
        assert again.pattern == query.pattern
        assert again.select == query.select

    def test_union_filter_round_trip(self):
        text = ('SELECT * WHERE { { ?a <p> ?b } UNION { ?a <q> ?b } '
                'FILTER(?b != <x>) }')
        query = parse_query(text)
        assert parse_query(query.to_sparql()).pattern == query.pattern
