"""Algorithm 3.1 tests: jvar orders, SNss, and the best-match decision."""

import pytest

from repro.core.goj import GoJ
from repro.core.gosn import GoSN
from repro.core.jvar_order import (decide_best_match_required,
                                   get_jvar_order, order_slave_supernodes,
                                   supernode_jvars)
from repro.core.selectivity import SelectivityRanker
from repro.rdf.terms import Variable
from repro.sparql import parse_query

RUNNING = """
SELECT * WHERE {
  <Jerry> <hasFriend> ?friend .
  OPTIONAL { ?friend <actedIn> ?sitcom . ?sitcom <location> <NYC> . }
}"""


def build(text: str, counts):
    pattern = parse_query(text).pattern
    gosn = GoSN.from_pattern(pattern)
    goj = GoJ.build(gosn.patterns)
    ranker = SelectivityRanker(gosn.patterns, counts)
    return gosn, goj, ranker


class TestSelectivityRanker:
    def test_jvar_key_is_min_tp_count(self):
        gosn, goj, ranker = build(RUNNING, [2, 100, 50])
        assert ranker.jvar_key(Variable("friend")) == 2
        assert ranker.jvar_key(Variable("sitcom")) == 50

    def test_most_and_least_selective(self):
        gosn, goj, ranker = build(RUNNING, [2, 100, 50])
        jvars = {Variable("friend"), Variable("sitcom")}
        assert ranker.most_selective_jvar(jvars) == Variable("friend")
        assert ranker.least_selective_jvar(jvars) == Variable("sitcom")

    def test_greedy_order(self):
        gosn, goj, ranker = build(RUNNING, [2, 100, 50])
        order = ranker.greedy_jvar_order({Variable("friend"),
                                          Variable("sitcom")})
        assert order == [Variable("friend"), Variable("sitcom")]

    def test_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            SelectivityRanker([], [1])


class TestExample2:
    def test_paper_example_orders(self):
        # Example-2 (§3.2): orderbu = [?friend, (?sitcom, ?friend)],
        # ordertd = [?friend, (?friend, ?sitcom)]
        gosn, goj, ranker = build(RUNNING, [2, 100, 50])
        order_bu, order_td = get_jvar_order(gosn, goj, ranker)
        friend, sitcom = Variable("friend"), Variable("sitcom")
        assert order_bu == [friend, sitcom, friend]
        assert order_td == [friend, friend, sitcom]

    def test_supernode_jvars(self):
        gosn, goj, ranker = build(RUNNING, [2, 100, 50])
        assert supernode_jvars(gosn, 0, goj.nodes) == {Variable("friend")}
        assert supernode_jvars(gosn, 1, goj.nodes) == {Variable("friend"),
                                                       Variable("sitcom")}


class TestCyclicFallback:
    CYCLIC = """
    SELECT * WHERE {
      ?x <worksFor> <dept> .
      OPTIONAL { ?y <advisor> ?x . ?x <teacherOf> ?z .
                 ?y <takesCourse> ?z . }
    }"""

    def test_greedy_order_for_cyclic(self):
        gosn, goj, ranker = build(self.CYCLIC, [5, 80, 60, 90])
        assert goj.is_cyclic()
        order_bu, order_td = get_jvar_order(gosn, goj, ranker)
        assert order_bu == order_td
        # descending selectivity: ?x (min 5), ?z (min 60), ?y (min 80)
        assert order_bu == [Variable("x"), Variable("z"), Variable("y")]

    def test_best_match_required_cyclic_multi_jvar_slave(self):
        gosn, goj, ranker = build(self.CYCLIC, [5, 80, 60, 90])
        assert decide_best_match_required(gosn, goj)

    def test_best_match_not_required_acyclic(self):
        gosn, goj, ranker = build(RUNNING, [2, 100, 50])
        assert not decide_best_match_required(gosn, goj)

    def test_best_match_not_required_single_jvar_slaves(self):
        # cyclic masters, but each slave has one jvar (Lemma 3.4)
        text = """
        SELECT * WHERE {
          { ?st <taOf> ?course . OPTIONAL { ?st <takes> ?c2 } }
          { ?prof <teacherOf> ?course . ?st <advisor> ?prof .
            OPTIONAL { ?prof <interest> ?ri } }
        }"""
        gosn, goj, ranker = build(text, [10, 20, 30, 40, 50])
        assert goj.is_cyclic()
        assert not decide_best_match_required(gosn, goj)


class TestSlaveOrdering:
    NESTED = """
    SELECT * WHERE {
      { ?a <p1> ?b OPTIONAL { ?b <p2> ?c OPTIONAL { ?c <p3> ?d } } }
      { ?a <p4> ?e OPTIONAL { ?e <p5> ?f } }
    }"""

    def test_masters_before_slaves(self):
        counts = [10, 20, 30, 5, 40]
        gosn, goj, ranker = build(self.NESTED, counts)
        order = order_slave_supernodes(gosn, ranker)
        position = {sn: i for i, sn in enumerate(order)}
        # SN1 (the ?b block) precedes its slave SN2 (the ?c block)
        assert position[1] < position[2]

    def test_selective_peer_first(self):
        counts = [10, 20, 30, 5, 4]
        gosn, goj, ranker = build(self.NESTED, counts)
        order = order_slave_supernodes(gosn, ranker)
        # SN4 (count 4) is more selective than SN1 (count 20)
        assert order.index(4) < order.index(1)

    def test_orders_cover_all_jvars(self):
        counts = [10, 20, 30, 5, 40]
        gosn, goj, ranker = build(self.NESTED, counts)
        order_bu, order_td = get_jvar_order(gosn, goj, ranker)
        assert set(order_bu) == goj.nodes
        assert set(order_td) == goj.nodes


class TestDegenerate:
    def test_no_jvars(self):
        gosn, goj, ranker = build(
            "SELECT * WHERE { ?a <p> ?b }", [3])
        assert get_jvar_order(gosn, goj, ranker) == ([], [])

    def test_single_tp_optional(self):
        gosn, goj, ranker = build(
            "SELECT * WHERE { ?a <p> ?b OPTIONAL { ?a <q> ?c } }", [3, 4])
        order_bu, order_td = get_jvar_order(gosn, goj, ranker)
        assert order_bu.count(Variable("a")) >= 2


class TestDeterminism:
    """S-tier reproducibility: tie-breaks are keys, never hash order.

    Cost-vs-heuristic plan diffs are only meaningful when the same
    inputs always produce the same orders, so every ranking tie breaks
    by variable name / supernode index and the whole pipeline must be
    insensitive to the interpreter's hash seed.
    """

    TIED = """
SELECT * WHERE {
  ?a <p> ?b . ?b <p> ?c . ?c <p> ?d . ?d <p> ?a .
}"""

    def test_tied_jvar_keys_break_by_name(self):
        gosn, goj, ranker = build(self.TIED, [7, 7, 7, 7])
        jvars = goj.nodes
        assert ranker.most_selective_jvar(jvars) == Variable("a")
        assert ranker.least_selective_jvar(jvars) == Variable("a")
        assert ranker.greedy_jvar_order(jvars) == [
            Variable(v) for v in "abcd"]

    def test_tied_orders_stable_across_candidate_order(self):
        gosn, goj, ranker = build(self.TIED, [7, 7, 7, 7])
        baseline = get_jvar_order(gosn, goj, ranker)
        for _ in range(5):
            assert get_jvar_order(gosn, goj, ranker) == baseline

    def test_orders_identical_across_hash_seeds(self):
        """The executed plan is bit-identical under any PYTHONHASHSEED."""
        import os
        import subprocess
        import sys

        script = (
            "from repro import BitMatStore, LBREngine\n"
            "from repro.datasets import generate_lubm, ALL_SUITES\n"
            "store = BitMatStore.build(generate_lubm())\n"
            "store.freeze()\n"
            "engine = LBREngine(store)\n"
            "for name, query in sorted(ALL_SUITES['LUBM'].items()):\n"
            "    print(name, str(engine.explain(query)))\n")
        outputs = []
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH="src")
            result = subprocess.run(
                [sys.executable, "-c", script], env=env, cwd=_REPO_ROOT,
                capture_output=True, text=True, check=True)
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1] == outputs[2]


import os as _os

_REPO_ROOT = _os.path.dirname(_os.path.dirname(_os.path.abspath(__file__)))
