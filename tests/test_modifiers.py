"""Solution modifier tests: ORDER BY, LIMIT, OFFSET, interplay."""

import pytest

from repro import BitMatStore, Graph, LBREngine, NULL, Triple, URI
from repro.rdf.terms import Literal, Variable
from repro.sparql import parse_query

from .conftest import EX, assert_engines_agree, engines_for, triples, uri

INT = "http://www.w3.org/2001/XMLSchema#integer"


def q(body: str, tail: str = "") -> str:
    return f"PREFIX ex: <{EX}>\nSELECT * WHERE {{ {body} }}{tail}"


GRAPH = Graph(triples(
    ("a", "knows", "b"), ("b", "knows", "c"), ("c", "knows", "a"),
))
for person, age in (("a", 30), ("b", 9), ("c", 25)):
    GRAPH.add(Triple(uri(person), uri("age"),
                     Literal(str(age), datatype=INT)))


class TestParsing:
    def test_order_by_variants(self):
        query = parse_query(
            "SELECT * WHERE { ?s <p> ?o } ORDER BY ?o DESC(?s) ASC(?o)")
        assert query.order_by == ((Variable("o"), True),
                                  (Variable("s"), False),
                                  (Variable("o"), True))

    def test_limit_offset_any_order(self):
        first = parse_query("SELECT * WHERE { ?s <p> ?o } LIMIT 5 OFFSET 2")
        second = parse_query("SELECT * WHERE { ?s <p> ?o } OFFSET 2 LIMIT 5")
        assert (first.limit, first.offset) == (5, 2)
        assert (second.limit, second.offset) == (5, 2)

    def test_round_trip(self):
        text = ("SELECT ?s WHERE { ?s <p> ?o }"
                " ORDER BY DESC(?o) LIMIT 3 OFFSET 1")
        query = parse_query(text)
        again = parse_query(query.to_sparql())
        assert again.order_by == query.order_by
        assert (again.limit, again.offset) == (3, 1)

    def test_empty_order_by_rejected(self):
        from repro.exceptions import ParseError
        with pytest.raises(ParseError):
            parse_query("SELECT * WHERE { ?s <p> ?o } ORDER BY LIMIT 2")


class TestOrderBy:
    def test_numeric_ordering(self):
        lbr, naive, col = engines_for(GRAPH)
        query = q("?p ex:age ?g", " ORDER BY ?g")
        for engine in (lbr, naive, col):
            rows = engine.execute(query).rows
            ages = [float(str(row[0])) for row in rows]
            assert ages == sorted(ages)
        # "9" < "25" numerically even though "25" < "9" lexically
        assert float(str(lbr.execute(query).rows[0][0])) == 9

    def test_descending(self):
        lbr, _, _ = engines_for(GRAPH)
        rows = lbr.execute(q("?p ex:age ?g", " ORDER BY DESC(?g)")).rows
        ages = [float(str(row[0])) for row in rows]
        assert ages == sorted(ages, reverse=True)

    def test_null_sorts_lowest(self):
        graph = Graph(triples(("a", "knows", "b"), ("b", "knows", "c"),
                              ("b", "likes", "x")))
        lbr, _, _ = engines_for(graph)
        query = q("?p ex:knows ?o OPTIONAL { ?p ex:likes ?l }",
                  " ORDER BY ?l")
        rows = lbr.execute(query).rows
        variables = lbr.execute(query).variables
        l_index = variables.index(Variable("l"))
        assert rows[0][l_index] is NULL

    def test_all_engines_agree_on_order(self):
        query = q("?p ex:age ?g", " ORDER BY DESC(?g) ?p")
        lbr, naive, col = engines_for(GRAPH)
        assert lbr.execute(query).rows == naive.execute(query).rows \
            == col.execute(query).rows

    def test_order_by_non_projected_variable(self):
        query = (f"PREFIX ex: <{EX}>\nSELECT ?p WHERE "
                 f"{{ ?p ex:age ?g }} ORDER BY DESC(?g)")
        lbr, naive, _ = engines_for(GRAPH)
        assert lbr.execute(query).rows == naive.execute(query).rows
        assert lbr.execute(query).rows[0] == (uri("a"),)  # age 30 first


class TestLimitOffset:
    def test_limit(self):
        lbr, naive, col = engines_for(GRAPH)
        query = q("?p ex:age ?g", " ORDER BY ?g LIMIT 2")
        for engine in (lbr, naive, col):
            assert len(engine.execute(query)) == 2

    def test_offset(self):
        lbr, _, _ = engines_for(GRAPH)
        all_rows = lbr.execute(q("?p ex:age ?g", " ORDER BY ?g")).rows
        shifted = lbr.execute(q("?p ex:age ?g",
                                " ORDER BY ?g OFFSET 1")).rows
        assert shifted == all_rows[1:]

    def test_limit_offset_window(self):
        lbr, _, _ = engines_for(GRAPH)
        all_rows = lbr.execute(q("?p ex:age ?g", " ORDER BY ?g")).rows
        window = lbr.execute(q("?p ex:age ?g",
                               " ORDER BY ?g LIMIT 1 OFFSET 1")).rows
        assert window == all_rows[1:2]

    def test_limit_larger_than_result(self):
        lbr, _, _ = engines_for(GRAPH)
        assert len(lbr.execute(q("?p ex:age ?g", " LIMIT 99"))) == 3

    def test_offset_past_end(self):
        lbr, _, _ = engines_for(GRAPH)
        assert len(lbr.execute(q("?p ex:age ?g", " OFFSET 99"))) == 0


class TestInterplay:
    def test_distinct_then_limit(self):
        query = (f"PREFIX ex: <{EX}>\nSELECT DISTINCT ?p WHERE "
                 f"{{ ?p ex:knows ?o . ?p ex:age ?g }} ORDER BY ?p LIMIT 2")
        lbr, naive, col = engines_for(GRAPH)
        rows = lbr.execute(query).rows
        assert rows == naive.execute(query).rows == col.execute(query).rows
        assert len(rows) == 2
        assert len(set(rows)) == 2

    def test_modifiers_with_optional(self):
        query = q("?p ex:knows ?o OPTIONAL { ?o ex:age ?g }",
                  " ORDER BY DESC(?g) LIMIT 2")
        lbr, naive, col = engines_for(GRAPH)
        assert lbr.execute(query).rows == naive.execute(query).rows \
            == col.execute(query).rows
