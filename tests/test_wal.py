"""WAL framing, replay, and torn/corrupt-tail semantics."""

import pytest

from repro.exceptions import WALError
from repro.rdf.terms import Literal, Triple, URI
from repro.update.faultfs import FaultPlan, FaultyFS, MemFS, SimulatedCrash
from repro.update.wal import (MAGIC, WalRecord, WriteAheadLog,
                              encode_record, replay_wal)

LOG = "/wal/segment.log"


def t(s: str, p: str, o: str) -> Triple:
    return Triple(URI(f"http://x/{s}"), URI(f"http://x/{p}"),
                  URI(f"http://x/{o}"))


def make_log(fs, batches, path=LOG):
    fs.makedirs("/wal")
    wal = WriteAheadLog(path, fs=fs).open()
    for adds, deletes in batches:
        wal.append_batch(adds, deletes)
    wal.close()
    return wal


class TestRoundTrip:
    def test_empty_log_replays_empty(self):
        fs = MemFS()
        make_log(fs, [])
        assert replay_wal(fs, LOG) == []

    def test_missing_file_replays_empty(self):
        assert replay_wal(MemFS(), "/nope.log") == []

    def test_batches_round_trip_in_order(self):
        fs = MemFS()
        batches = [((t("a", "p", "b"),), ()),
                   ((t("c", "p", "d"), t("e", "p", "f")),
                    (t("a", "p", "b"),)),
                   ((), (t("c", "p", "d"),))]
        make_log(fs, batches)
        records = replay_wal(fs, LOG)
        assert [r.seq for r in records] == [1, 2, 3]
        assert [(r.adds, r.deletes) for r in records] == batches

    def test_all_term_kinds_survive(self):
        fs = MemFS()
        triple = Triple(URI("http://x/s"), URI("http://x/p"),
                        Literal("v é", language="fr"))
        typed = Triple(URI("http://x/s"), URI("http://x/p"),
                       Literal("7", datatype="http://x/int"))
        make_log(fs, [((triple, typed), ())])
        [record] = replay_wal(fs, LOG)
        assert record.adds == (triple, typed)

    def test_reopen_continues_sequence(self):
        fs = MemFS()
        make_log(fs, [((t("a", "p", "b"),), ())])
        records = replay_wal(fs, LOG)
        wal = WriteAheadLog(LOG, fs=fs,
                            next_seq=records[-1].seq + 1).open()
        wal.append_batch((t("c", "p", "d"),), ())
        wal.close()
        assert [r.seq for r in replay_wal(fs, LOG)] == [1, 2]


class TestDamage:
    def _logged_bytes(self, fs):
        return bytes(fs.read_bytes(LOG))

    def test_torn_header_truncates_to_nothing(self):
        fs = MemFS()
        fs.makedirs("/wal")
        handle = fs.open_append(LOG)
        handle.write(MAGIC[:3])
        handle.fsync()
        handle.close()
        assert replay_wal(fs, LOG) == []
        assert fs.file_size(LOG) == 0

    def test_bad_magic_rejected(self):
        fs = MemFS()
        fs.makedirs("/wal")
        handle = fs.open_append(LOG)
        handle.write(b"NOTAWALFILE")
        handle.fsync()
        handle.close()
        with pytest.raises(WALError):
            replay_wal(fs, LOG)

    def test_torn_tail_frame_is_truncated(self):
        fs = MemFS()
        make_log(fs, [((t("a", "p", "b"),), ()),
                      ((t("c", "p", "d"),), ())])
        data = self._logged_bytes(fs)
        for cut in range(len(MAGIC) + 1, len(data)):
            torn = MemFS()
            torn.makedirs("/wal")
            handle = torn.open_append(LOG)
            handle.write(data[:cut])
            handle.fsync()
            handle.close()
            records = replay_wal(torn, LOG)
            # only full frames survive; the torn suffix is gone
            assert [r.seq for r in records] == \
                list(range(1, len(records) + 1))
            assert len(records) <= 2
            # truncation is physical: a second replay is clean
            assert replay_wal(torn, LOG) == records

    def test_corrupt_middle_with_valid_tail_is_an_error(self):
        fs = MemFS()
        make_log(fs, [((t("a", "p", "b"),), ()),
                      ((t("c", "p", "d"),), ())])
        data = bytearray(self._logged_bytes(fs))
        # flip a byte inside the first record's payload
        data[len(MAGIC) + 10] ^= 0xFF
        bad = MemFS()
        bad.makedirs("/wal")
        handle = bad.open_append(LOG)
        handle.write(bytes(data))
        handle.fsync()
        handle.close()
        with pytest.raises(WALError, match="corrupt record"):
            replay_wal(bad, LOG)

    def test_out_of_order_seq_rejected(self):
        fs = MemFS()
        fs.makedirs("/wal")
        handle = fs.open_append(LOG)
        handle.write(MAGIC)
        handle.write(encode_record(
            WalRecord(seq=2, adds=(t("a", "p", "b"),), deletes=())))
        handle.fsync()
        handle.close()
        with pytest.raises(WALError, match="seq"):
            replay_wal(fs, LOG)


class TestFailureLatch:
    def test_failed_append_latches_the_log_shut(self):
        fs = MemFS()
        fs.makedirs("/wal")
        wal = WriteAheadLog(LOG, fs=FaultyFS(fs, FaultPlan())).open()
        wal.append_batch((t("a", "p", "b"),), ())
        wal.fs.plan = FaultPlan(fail_at=wal.fs.op_count + 1)
        with pytest.raises(WALError, match="append failed"):
            wal.append_batch((t("c", "p", "d"),), ())
        wal.fs.plan = FaultPlan()
        with pytest.raises(WALError, match="failed state"):
            wal.append_batch((t("e", "p", "f"),), ())

    def test_crash_mid_append_loses_only_that_batch(self):
        base = MemFS()
        base.makedirs("/wal")
        wal = WriteAheadLog(LOG, fs=base).open()
        wal.append_batch((t("a", "p", "b"),), ())
        wal.close()
        faulty = FaultyFS(base, FaultPlan())
        wal = WriteAheadLog(LOG, fs=faulty, next_seq=2).open()
        faulty.plan = FaultPlan(crash_at=faulty.op_count + 1)
        with pytest.raises(SimulatedCrash):
            wal.append_batch((t("c", "p", "d"),), ())
        survivor = base.after_crash("durable")
        records = replay_wal(survivor, LOG)
        assert [r.seq for r in records] == [1]
