"""RDF term model unit tests."""

import pickle

import pytest

from repro.rdf.terms import (NULL, BNode, Literal, Triple, URI, Variable,
                             is_ground, is_variable)


class TestURI:
    def test_is_a_string(self):
        assert URI("http://example.org/a") == "http://example.org/a"

    def test_n3_form(self):
        assert URI("http://example.org/a").n3 == "<http://example.org/a>"

    def test_hashable_and_equal(self):
        assert {URI("x"): 1}[URI("x")] == 1

    def test_sortable(self):
        assert sorted([URI("b"), URI("a")]) == [URI("a"), URI("b")]


class TestBNode:
    def test_n3_form(self):
        assert BNode("b0").n3 == "_:b0"

    def test_equality_with_plain_string(self):
        assert BNode("b0") == "b0"


class TestLiteral:
    def test_plain_literal_equality(self):
        assert Literal("hello") == Literal("hello")

    def test_datatype_distinguishes(self):
        plain = Literal("5")
        typed = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert plain != typed

    def test_language_distinguishes(self):
        assert Literal("chat") != Literal("chat", language="fr")
        assert Literal("chat", language="fr") == Literal("chat", language="fr")

    def test_hash_consistent_with_eq(self):
        a = Literal("x", datatype="http://example.org/dt")
        b = Literal("x", datatype="http://example.org/dt")
        assert hash(a) == hash(b)

    def test_literal_not_equal_to_uri(self):
        assert Literal("http://example.org/a") != URI("http://example.org/a")

    def test_n3_plain(self):
        assert Literal("hi").n3 == '"hi"'

    def test_n3_language(self):
        assert Literal("chat", language="fr").n3 == '"chat"@fr'

    def test_n3_datatype(self):
        lit = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert lit.n3 == '"5"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_n3_escapes_quotes_and_newlines(self):
        assert Literal('say "hi"\n').n3 == '"say \\"hi\\"\\n"'

    def test_inequality_operator(self):
        assert Literal("a") != Literal("b")


class TestVariable:
    def test_n3_form(self):
        assert Variable("x").n3 == "?x"

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable(URI("x"))
        assert not is_variable("x")

    def test_is_ground(self):
        assert is_ground(URI("x"))
        assert is_ground(Literal("x"))
        assert is_ground(BNode("x"))
        assert not is_ground(Variable("x"))


class TestNull:
    def test_singleton(self):
        import repro.rdf.terms as terms
        assert terms._Null() is NULL

    def test_falsy(self):
        assert not NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL

    def test_not_equal_to_terms(self):
        assert NULL != URI("x")
        assert NULL != Literal("")


class TestTriple:
    def test_field_access(self):
        t = Triple(URI("s"), URI("p"), URI("o"))
        assert (t.s, t.p, t.o) == (URI("s"), URI("p"), URI("o"))

    def test_n3_line(self):
        t = Triple(URI("s"), URI("p"), Literal("v"))
        assert t.n3 == '<s> <p> "v" .'

    def test_tuple_unpacking(self):
        s, p, o = Triple(URI("a"), URI("b"), URI("c"))
        assert o == URI("c")

    def test_equality_and_hash(self):
        assert Triple(URI("s"), URI("p"), URI("o")) in {
            Triple(URI("s"), URI("p"), URI("o"))}
