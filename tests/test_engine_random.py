"""Randomized equivalence testing: LBR vs the naive oracle.

Hypothesis generates random graphs and random *well-designed* BGP-OPT
queries (fresh variables per OPTIONAL block guarantee well-designedness;
blocks always share a link variable with their master, so there are no
Cartesian products).  Every generated query must produce bag-identical
results across LBR and the oracle — this exercises GoSN construction,
jvar ordering, pruning, the multi-way join, nullification, and
best-match end to end.

The full-surface strategies at the bottom delegate to the
:mod:`repro.fuzz` generators: Hypothesis draws a case seed (and shrinks
over it), while graph and query construction — FILTER expressions at
every scope, UNION branches, non-well-designed nesting, ground terms,
solution modifiers — comes from the same seeded generators the ``lbr
fuzz`` campaigns use.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import BitMatStore, Graph, LBREngine, NaiveEngine, Triple, URI
from repro.fuzz import CampaignConfig, generate_case, run_case
from repro.rdf.terms import Variable
from repro.sparql.ast import BGP, Join, LeftJoin, Query, TriplePattern
from repro.sparql.wd import is_well_designed

ENTITIES = [URI(f"e{i}") for i in range(8)]
PREDICATES = [URI(f"p{i}") for i in range(4)]

graphs = st.builds(
    lambda rows: Graph(Triple(ENTITIES[s], PREDICATES[p], ENTITIES[o])
                       for s, p, o in rows),
    st.sets(st.tuples(st.integers(0, 7), st.integers(0, 3),
                      st.integers(0, 7)), min_size=1, max_size=40))


class _QueryBuilder:
    """Builds random well-designed, connected BGP-OPT trees.

    Every OPTIONAL block shares exactly its *link* variable with the
    enclosing pattern and otherwise uses fresh variables, which
    guarantees well-designedness; anchors for slaves and joined
    patterns are drawn from master-level (root BGP) variables only.
    """

    def __init__(self, draw):
        self._draw = draw
        self._counter = 0

    def fresh_var(self) -> Variable:
        self._counter += 1
        return Variable(f"v{self._counter}")

    def term(self, candidates: list[Variable]):
        choice = self._draw(st.integers(0, 3))
        if choice == 0 and candidates:
            return self._draw(st.sampled_from(candidates))
        if choice == 1:
            return self._draw(st.sampled_from(ENTITIES))
        return self.fresh_var()

    def bgp(self, link: Variable | None) -> BGP:
        size = self._draw(st.integers(1, 3))
        local_vars: list[Variable] = [link] if link is not None else []
        patterns = []
        for _ in range(size):
            predicate = self._draw(st.sampled_from(PREDICATES))
            if local_vars:
                # anchor one position on an existing local variable so
                # the block never contains a Cartesian product
                anchor = self._draw(st.sampled_from(local_vars))
                other = self.term(local_vars)
                if self._draw(st.booleans()):
                    subject, obj = anchor, other
                else:
                    subject, obj = other, anchor
            else:
                subject = self.fresh_var()
                local_vars.append(subject)
                obj = self.term(local_vars)
            for term in (subject, obj):
                if isinstance(term, Variable) and term not in local_vars:
                    local_vars.append(term)
            patterns.append(TriplePattern(subject, predicate, obj))
        return BGP(tuple(patterns))

    def pattern(self, link: Variable | None,
                depth: int) -> tuple[object, list[Variable]]:
        """Returns (pattern, master-level variables)."""
        node = self.bgp(link)
        master_vars = sorted(node.variables())
        attachments = self._draw(st.integers(0, 2 if depth < 2 else 0))
        current = node
        for _ in range(attachments):
            if not master_vars:
                break
            anchor = self._draw(st.sampled_from(master_vars))
            slave, _ = self.pattern(anchor, depth + 1)
            current = LeftJoin(current, slave)
        return current, master_vars


@st.composite
def wd_queries(draw) -> Query:
    builder = _QueryBuilder(draw)
    pattern, master_vars = builder.pattern(None, 0)
    join_second = draw(st.booleans())
    if join_second and master_vars:
        anchor = draw(st.sampled_from(master_vars))
        second, _ = builder.pattern(anchor, 1)
        pattern = Join(pattern, second)
    return Query(pattern=pattern)


@settings(max_examples=120, deadline=None)
@given(graphs, wd_queries())
def test_lbr_matches_oracle_on_random_wd_queries(graph, query):
    assert is_well_designed(query.pattern)
    store = BitMatStore.build(graph)
    lbr = LBREngine(store).execute(query)
    oracle = NaiveEngine(graph).execute(query)
    assert lbr.as_multiset() == oracle.as_multiset(), (
        f"mismatch on:\n{query.to_sparql()}")


@settings(max_examples=60, deadline=None)
@given(graphs, wd_queries())
def test_pruning_ablation_preserves_results(graph, query):
    store = BitMatStore.build(graph)
    with_prune = LBREngine(store, enable_prune=True).execute(query)
    without_prune = LBREngine(store, enable_prune=False).execute(query)
    assert with_prune.as_multiset() == without_prune.as_multiset()


@settings(max_examples=60, deadline=None)
@given(graphs, wd_queries())
def test_active_prune_ablation_preserves_results(graph, query):
    store = BitMatStore.build(graph)
    on = LBREngine(store, enable_active_prune=True).execute(query)
    off = LBREngine(store, enable_active_prune=False).execute(query)
    assert on.as_multiset() == off.as_multiset()


@settings(max_examples=60, deadline=None)
@given(graphs, wd_queries())
def test_columnstore_matches_oracle_on_random_wd_queries(graph, query):
    from repro import ColumnStoreEngine
    oracle = NaiveEngine(graph).execute(query)
    col = ColumnStoreEngine(graph).execute(query)
    assert col.as_multiset() == oracle.as_multiset()


@settings(max_examples=40, deadline=None)
@given(graphs, wd_queries(), wd_queries())
def test_union_of_wd_patterns_matches_oracle(graph, first, second):
    from repro.sparql.ast import Union
    query = Query(pattern=Union(first.pattern, second.pattern))
    store = BitMatStore.build(graph)
    lbr = LBREngine(store).execute(query)
    oracle = NaiveEngine(graph).execute(query)
    assert lbr.as_multiset() == oracle.as_multiset()


@settings(max_examples=50, deadline=None)
@given(graphs, wd_queries(), st.integers(0, 7), st.booleans())
def test_filtered_wd_queries_match_oracle(graph, query, entity, negate):
    """Random safe single-variable filters over random WD queries."""
    from repro.sparql import expressions as ex
    from repro.sparql.ast import Filter

    pattern_vars = sorted(query.pattern.variables())
    if not pattern_vars:
        return
    target = pattern_vars[0]
    comparison = ex.Comparison("=", ex.VarRef(target),
                               ex.Constant(ENTITIES[entity]))
    expr = ex.Not(comparison) if negate else comparison
    filtered = Query(pattern=Filter(expr, query.pattern))
    store = BitMatStore.build(graph)
    lbr = LBREngine(store).execute(filtered)
    oracle = NaiveEngine(graph).execute(filtered)
    assert lbr.as_multiset() == oracle.as_multiset(), (
        f"mismatch on:\n{filtered.to_sparql()}")


@settings(max_examples=40, deadline=None)
@given(graphs, wd_queries(), st.integers(1, 5), st.integers(0, 3))
def test_modifiers_on_random_queries(graph, query, limit, offset):
    """LIMIT/OFFSET with a deterministic ORDER BY match the oracle."""
    order = tuple((var, index % 2 == 0) for index, var
                  in enumerate(sorted(query.pattern.variables())))
    modified = Query(pattern=query.pattern, order_by=order, limit=limit,
                     offset=offset)
    store = BitMatStore.build(graph)
    lbr = LBREngine(store).execute(modified)
    oracle = NaiveEngine(graph).execute(modified)
    # the full ORDER BY key covers every variable, so row order is
    # fully deterministic and the windows must agree exactly
    assert lbr.rows == oracle.rows, f"mismatch on:\n{modified.to_sparql()}"


# ----------------------------------------------------------------------
# full-surface strategies, delegating to the repro.fuzz generators
# ----------------------------------------------------------------------

@st.composite
def fuzz_cases(draw, profile: str):
    """One differential (graph, query) case from the fuzz generators.

    The query surface goes far beyond the BGP-OPT strategies above:
    FILTER expressions (comparisons, BOUND, REGEX, sameTerm, boolean
    connectives) at every scope, UNION branches, fully-ground patterns,
    variable predicates, and solution modifiers — plus, under the
    ``full`` profile, non-well-designed OPTIONAL nesting.
    """
    case_seed = draw(st.integers(0, 2 ** 48 - 1))
    config = CampaignConfig(seed=0, profile=profile, max_triples=40)
    case, _ = generate_case(config, case_seed)
    return case


@settings(max_examples=50, deadline=None)
@given(fuzz_cases(profile="wd"))
def test_full_surface_wd_cases_agree(case):
    """FILTER/UNION/modifier queries (WD) across the engine matrix."""
    result = run_case(case)
    assert result.status != "mismatch", (
        "; ".join(d.describe() for d in result.disagreements)
        + f"\non:\n{case.query_text}")


@settings(max_examples=50, deadline=None)
@given(fuzz_cases(profile="full"))
def test_full_surface_cases_agree_including_nwd(case):
    """The full profile adds non-well-designed nesting (Appendix B/C)."""
    result = run_case(case)
    assert result.status != "mismatch", (
        "; ".join(d.describe() for d in result.disagreements)
        + f"\non:\n{case.query_text}")


@settings(max_examples=60, deadline=None)
@given(graphs, wd_queries())
def test_minimality_after_pruning_random(graph, query):
    """Lemma 3.3 on random acyclic WD queries.

    Every triple surviving ``prune_triples`` must bind in some final
    result row (checked against the oracle's rows).
    """
    from repro.core.goj import GoJ
    from repro.core.gosn import GoSN
    from repro.core.jvar_order import get_jvar_order
    from repro.core.prune import prune_triples
    from repro.core.selectivity import SelectivityRanker
    from repro.core.tp import TPState
    from repro.core.results import decode_binding

    gosn = GoSN.from_pattern(query.pattern)
    goj = GoJ.build(gosn.patterns)
    if goj.is_cyclic():
        return  # minimality is only guaranteed for acyclic GoJ
    store = BitMatStore.build(graph)
    ranker = SelectivityRanker(gosn.patterns, [1] * len(gosn.patterns))
    order_bu, order_td = get_jvar_order(gosn, goj, ranker)
    states = [TPState.load(i, tp, store)
              for i, tp in enumerate(gosn.patterns)]
    prune_triples(order_bu, order_td, gosn, states, store.num_shared)

    rows = list(NaiveEngine(graph).execute(query).bindings())
    for state in states:
        for bindings in state.enumerate({}):
            decoded = {var: decode_binding(binding, store.dictionary)
                       for var, binding in bindings.items()}
            assert any(all(row.get(var) == value
                           for var, value in decoded.items())
                       for row in rows), (
                f"non-minimal triple {decoded} in {state.pattern} for:\n"
                f"{query.to_sparql()}")
