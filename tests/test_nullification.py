"""Nullification, best-match, and minimum-union tests (§3.1, Figure 3.2)."""

from hypothesis import given, strategies as st

from repro.core.nullification import best_match, minimum_union
from repro.rdf.terms import NULL, URI


def u(name):
    return URI(name)


class TestFigure32BestMatch:
    """Res2 → Res3 of Figure 3.2: best-match removes subsumed rows."""

    RES2 = [
        (u("Julia"), u("Seinfeld")),
        (u("Julia"), NULL),
        (u("Julia"), NULL),
        (u("Julia"), NULL),
        (u("Larry"), NULL),
    ]

    def test_subsumed_rows_removed(self):
        result = best_match(self.RES2)
        assert (u("Julia"), u("Seinfeld")) in result
        assert (u("Larry"), NULL) in result
        assert (u("Julia"), NULL) not in result

    def test_best_match_keeps_duplicates(self):
        rows = [(u("a"), NULL), (u("a"), NULL)]
        assert best_match(rows) == rows

    def test_minimum_union_drops_duplicates(self):
        rows = [(u("a"), NULL), (u("a"), NULL)]
        assert minimum_union(rows) == [(u("a"), NULL)]

    def test_figure_res3(self):
        assert sorted(map(str, minimum_union(self.RES2))) == sorted(map(str, [
            (u("Julia"), u("Seinfeld")), (u("Larry"), NULL)]))


class TestSubsumptionEdgeCases:
    def test_equal_rows_not_subsumed(self):
        rows = [(u("a"), u("b")), (u("a"), u("b"))]
        assert best_match(rows) == rows

    def test_different_values_not_subsumed(self):
        rows = [(u("a"), u("b")), (u("a"), u("c"))]
        assert sorted(best_match(rows)) == sorted(rows)

    def test_all_null_row_subsumed_by_anything(self):
        rows = [(NULL, NULL), (u("a"), NULL)]
        assert best_match(rows) == [(u("a"), NULL)]

    def test_all_null_rows_survive_alone(self):
        rows = [(NULL, NULL), (NULL, NULL)]
        assert best_match(rows) == rows
        assert minimum_union(rows) == [(NULL, NULL)]

    def test_partial_overlap_not_subsumed(self):
        # (a, NULL, c) vs (a, b, NULL): neither subsumes the other
        rows = [(u("a"), NULL, u("c")), (u("a"), u("b"), NULL)]
        assert sorted(best_match(rows), key=repr) == sorted(rows, key=repr)

    def test_transitive_subsumption(self):
        rows = [(u("a"), u("b"), u("c")),
                (u("a"), u("b"), NULL),
                (u("a"), NULL, NULL)]
        assert best_match(rows) == [(u("a"), u("b"), u("c"))]

    def test_empty_input(self):
        assert best_match([]) == []
        assert minimum_union([]) == []

    def test_preserves_input_order_of_kept(self):
        rows = [(u("z"), NULL), (u("a"), u("b"))]
        assert best_match(rows) == rows


def _rows(draw_terms):
    return st.lists(
        st.tuples(*[st.sampled_from([NULL] + [URI(c) for c in "abc"])
                    for _ in range(3)]),
        max_size=25)


class TestBestMatchProperties:
    @staticmethod
    def _subsumed(r1, r2):
        """r1 strictly subsumed by r2."""
        bound1 = {(i, v) for i, v in enumerate(r1) if v is not NULL}
        bound2 = {(i, v) for i, v in enumerate(r2) if v is not NULL}
        return bound1 < bound2 and all(
            r2[i] == v for i, v in bound1)

    @given(_rows(None))
    def test_no_kept_row_subsumed_by_kept_row(self, rows):
        kept = best_match(rows)
        for r1 in kept:
            for r2 in kept:
                assert not self._subsumed(r1, r2)

    @given(_rows(None))
    def test_every_dropped_row_is_subsumed(self, rows):
        kept = best_match(rows)
        kept_count = {}
        for row in kept:
            kept_count[row] = kept_count.get(row, 0) + 1
        for row in rows:
            if kept_count.get(row, 0) > 0:
                kept_count[row] -= 1
                continue
            assert any(self._subsumed(row, other) for other in kept)

    @given(_rows(None))
    def test_idempotent(self, rows):
        once = best_match(rows)
        assert best_match(once) == once

    @given(_rows(None))
    def test_minimum_union_is_subset_of_best_match(self, rows):
        mu = minimum_union(rows)
        bm = best_match(rows)
        assert set(mu) <= set(bm)
        assert len(set(mu)) == len(mu)  # no duplicates
