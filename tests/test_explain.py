"""Query plan explanation tests."""

import pytest

from repro import BitMatStore, LBREngine

from .conftest import EX, FIGURE_3_2_QUERY


def q(body: str) -> str:
    return f"PREFIX ex: <{EX}>\nSELECT * WHERE {{ {body} }}"


@pytest.fixture()
def engine(figure_store) -> LBREngine:
    return LBREngine(figure_store)


class TestExplain:
    def test_running_example_plan(self, engine):
        plan = engine.explain(FIGURE_3_2_QUERY)
        assert len(plan.branches) == 1
        branch = plan.branches[0]
        assert branch.algebra == "(P1 OPT P2)"
        assert branch.well_designed
        assert not branch.goj_cyclic
        assert not branch.best_match_required
        assert branch.absolute_masters == [0]
        assert branch.uni_edges == [(0, 1)]
        assert branch.jvars == ["?friend", "?sitcom"]
        assert branch.order_bu == ["?friend", "?sitcom", "?friend"]
        assert branch.order_td == ["?friend", "?friend", "?sitcom"]
        assert branch.tp_counts == [2, 5, 1]

    def test_plan_renders_as_text(self, engine):
        text = str(engine.explain(FIGURE_3_2_QUERY))
        assert "branch 1/1" in text
        assert "SN0*" in text  # absolute master marked
        assert "order_bu" in text

    def test_union_produces_branches(self, engine):
        plan = engine.explain(q(
            "{ ?a ex:actedIn ?b } UNION { ?a ex:location ?b }"))
        assert len(plan.branches) == 2
        assert not plan.spurious_cleanup

    def test_rule3_flagged(self, engine):
        plan = engine.explain(q(
            "?a ex:hasFriend ?b OPTIONAL { { ?b ex:actedIn ?c } UNION "
            "{ ?b ex:location ?c } }"))
        assert plan.spurious_cleanup

    def test_cyclic_plan(self, engine):
        plan = engine.explain(q(
            "?x ex:hasFriend ?y . ?y ex:actedIn ?z . "
            "OPTIONAL { ?w ex:location ?z . ?w ex:actedIn ?x . }"))
        branch = plan.branches[0]
        assert branch.goj_cyclic
        assert branch.best_match_required  # slave has jvars ?w?z?x
        # cyclic: greedy order, both passes identical
        assert branch.order_bu == branch.order_td

    def test_nwd_plan_not_well_designed(self, engine):
        plan = engine.explain(q(
            "{ ?x ex:actedIn ?c } { ?y ex:hasFriend ?z "
            "OPTIONAL { ?z ex:location ?c } }"))
        assert not plan.branches[0].well_designed

    def test_explain_does_not_execute(self, engine):
        engine.execute(FIGURE_3_2_QUERY)
        results_before = engine.last_stats.num_results
        engine.explain(FIGURE_3_2_QUERY)
        assert engine.last_stats.num_results == results_before
