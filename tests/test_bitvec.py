"""Compressed bitvector tests, including set-model equivalence properties."""

import pytest
from hypothesis import given, strategies as st

from repro.bitmat.bitvec import BitVector

SIZE = 64
position_sets = st.sets(st.integers(min_value=0, max_value=SIZE - 1),
                        max_size=SIZE)


def vec(positions, size=SIZE) -> BitVector:
    return BitVector.from_positions(size, positions)


class TestConstruction:
    def test_empty(self):
        v = BitVector.empty(10)
        assert not v
        assert v.count() == 0

    def test_full(self):
        v = BitVector.full(10)
        assert v.count() == 10
        assert v.positions() == list(range(10))

    def test_full_with_start(self):
        v = BitVector.full(10, start=7)
        assert v.positions() == [7, 8, 9]

    def test_full_start_past_size_is_empty(self):
        assert not BitVector.full(5, start=5)

    def test_from_positions_deduplicates(self):
        assert vec([3, 3, 5]).count() == 2

    def test_from_positions_out_of_range(self):
        with pytest.raises(ValueError):
            BitVector.from_positions(4, [4])
        with pytest.raises(ValueError):
            BitVector.from_positions(4, [-1])

    def test_from_intervals_merges_overlaps(self):
        v = BitVector.from_intervals(20, [(0, 5), (3, 8), (10, 12)])
        assert v.positions() == list(range(0, 8)) + [10, 11]

    def test_from_intervals_ignores_empty_runs(self):
        assert not BitVector.from_intervals(10, [(3, 3), (5, 4)])

    def test_adjacent_positions_become_one_run(self):
        assert vec([1, 2, 3]).run_length() == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)


class TestInspection:
    def test_contains(self):
        v = vec([2, 3, 9])
        assert 2 in v and 3 in v and 9 in v
        assert 1 not in v and 4 not in v and 63 not in v

    def test_first(self):
        assert vec([5, 9]).first() == 5
        assert BitVector.empty(4).first() is None

    def test_intervals(self):
        assert vec([1, 2, 5]).intervals() == [(1, 3), (5, 6)]

    def test_equality_and_hash(self):
        assert vec([1, 2]) == vec([2, 1])
        assert hash(vec([1, 2])) == hash(vec([1, 2]))
        assert vec([1]) != vec([1], size=32)

    def test_iter_positions_sorted(self):
        assert list(vec([9, 1, 4]).iter_positions()) == [1, 4, 9]


class TestOperations:
    @given(position_sets, position_sets)
    def test_and_matches_set_intersection(self, a, b):
        assert set(vec(a).and_(vec(b)).positions()) == (a & b)

    @given(position_sets, position_sets)
    def test_or_matches_set_union(self, a, b):
        assert set(vec(a).or_(vec(b)).positions()) == (a | b)

    @given(position_sets, position_sets)
    def test_andnot_matches_set_difference(self, a, b):
        assert set(vec(a).andnot(vec(b)).positions()) == (a - b)

    @given(position_sets, position_sets)
    def test_intersects_matches_disjointness(self, a, b):
        assert vec(a).intersects(vec(b)) == bool(a & b)

    @given(position_sets, st.integers(min_value=0, max_value=SIZE))
    def test_truncate_drops_high_positions(self, a, limit):
        assert set(vec(a).truncate(limit).positions()) == {
            p for p in a if p < limit}

    @given(st.lists(position_sets, min_size=0, max_size=6))
    def test_union_many_matches_set_union(self, sets):
        expected = set().union(*sets) if sets else set()
        merged = BitVector.union_many([vec(s) for s in sets], SIZE)
        assert set(merged.positions()) == expected

    def test_and_asymmetric_path(self):
        # small (1 run) against big (many runs) takes the bisect path
        small = vec([30])
        big = vec(set(range(0, SIZE, 2)))
        assert small.and_(big).positions() == [30]
        assert big.and_(vec([31])).positions() == []

    def test_and_different_sizes_clips(self):
        a = BitVector.from_positions(100, [5, 60, 99])
        b = BitVector.full(10)
        assert a.and_(b).positions() == [5]
        assert a.and_(b).size == 10

    def test_or_different_sizes_keeps_larger(self):
        a = BitVector.from_positions(100, [99])
        b = BitVector.from_positions(10, [3])
        merged = a.or_(b)
        assert merged.size == 100
        assert merged.positions() == [3, 99]

    @given(position_sets)
    def test_operator_aliases(self, a):
        assert (vec(a) & vec(a)) == vec(a)
        assert (vec(a) | BitVector.empty(SIZE)) == vec(a)


class TestHybridStorage:
    def test_paper_rle_example_dense(self):
        # "1110011110" -> "[1] 3 2 4 1": 4 runs
        v = BitVector.from_positions(10, [0, 1, 2, 5, 6, 7, 8])
        assert v.rle_ints() == 4

    def test_paper_rle_example_sparse(self):
        # "0010010000" -> RLE needs 5 ints but only 2 bits are set,
        # so the hybrid scheme stores the 2 positions
        v = BitVector.from_positions(10, [2, 5])
        assert v.rle_ints() == 5
        assert v.storage_ints() == 2

    def test_empty_vector_storage(self):
        v = BitVector.empty(10)
        assert v.rle_ints() == 1
        assert v.storage_ints() == 0

    def test_full_vector_prefers_rle(self):
        v = BitVector.full(1000)
        assert v.rle_ints() == 1
        assert v.storage_ints() == 1

    def test_zero_size(self):
        assert BitVector.empty(0).rle_ints() == 0

    @given(position_sets)
    def test_hybrid_never_exceeds_rle(self, a):
        v = vec(a)
        assert v.storage_ints() <= v.rle_ints()
        assert v.storage_ints() <= v.count()
        assert v.storage_bytes() == 4 * v.storage_ints()

    def test_leading_and_trailing_zero_runs_counted(self):
        v = BitVector.from_positions(10, [4, 5])
        # 0000110000 -> [0] 4 2 4: 3 runs
        assert v.rle_ints() == 3


class TestImmutability:
    def test_and_does_not_mutate_operands(self):
        a, b = vec({1, 2, 3}), vec({2, 3, 4})
        a.and_(b)
        assert a == vec({1, 2, 3})
        assert b == vec({2, 3, 4})

    def test_count_cache_consistent(self):
        v = vec({1, 5, 6})
        assert v.count() == 3
        assert v.count() == 3


DENSE_SIZE = 4096


def dense_vec(step, offset=0):
    return BitVector.from_positions(
        DENSE_SIZE, range(offset, DENSE_SIZE, step))


class TestDualBacking:
    """Dense operands take the packed path; results must stay exact."""

    @given(st.integers(1, 5), st.integers(1, 5))
    def test_dense_and_matches_set_model(self, step_a, step_b):
        a, b = dense_vec(step_a), dense_vec(step_b, offset=1)
        expected = (set(range(0, DENSE_SIZE, step_a))
                    & set(range(1, DENSE_SIZE, step_b)))
        assert set(a.and_(b).positions()) == expected

    @given(st.integers(1, 5), st.integers(1, 5))
    def test_dense_or_matches_set_model(self, step_a, step_b):
        a, b = dense_vec(step_a), dense_vec(step_b, offset=1)
        expected = (set(range(0, DENSE_SIZE, step_a))
                    | set(range(1, DENSE_SIZE, step_b)))
        assert set(a.or_(b).positions()) == expected

    def test_packed_result_supports_all_queries(self):
        packed = dense_vec(2).and_(dense_vec(3))  # packed-backed result
        assert packed.count() == len(
            set(range(0, DENSE_SIZE, 2)) & set(range(0, DENSE_SIZE, 3)))
        assert 0 in packed and 6 in packed and 3 not in packed
        assert packed.first() == 0
        assert packed.run_length() >= 1
        assert packed.truncate(10).positions() == [0, 6]
        assert packed.rle_ints() > 0

    def test_packed_equality_with_interval_backed(self):
        interval = BitVector.from_positions(DENSE_SIZE,
                                            range(0, DENSE_SIZE, 6))
        packed = dense_vec(2).and_(dense_vec(3))
        assert packed == interval
        assert hash(packed) == hash(interval)

    def test_union_many_dense_takes_packed_path(self):
        parts = [dense_vec(7, offset=i) for i in range(7)]
        merged = BitVector.union_many(parts, DENSE_SIZE)
        assert merged.count() == DENSE_SIZE

    def test_mixed_backing_operations(self):
        packed = dense_vec(2).and_(dense_vec(2))  # bits-backed
        sparse = vec({2, 4, 100}, size=DENSE_SIZE)  # interval-backed
        assert set(packed.and_(sparse).positions()) == {2, 4, 100}
        assert sparse.intersects(packed)
        assert set(packed.andnot(sparse).positions()) == (
            set(range(0, DENSE_SIZE, 2)) - {2, 4, 100})
