"""BitMatStore tests: the four index families over a small graph."""

import pytest

from repro.bitmat.store import BitMatStore
from repro.rdf.graph import Graph

from .conftest import triples, uri


@pytest.fixture()
def store() -> BitMatStore:
    graph = Graph(triples(
        ("a", "knows", "b"),
        ("a", "knows", "c"),
        ("b", "knows", "c"),
        ("c", "likes", "a"),
        ("a", "name", "n1"),
    ))
    return BitMatStore.build(graph)


def ids(store, *terms):
    return [store.encode_term(t, pos) for t, pos in terms]


class TestCounts:
    def test_num_triples(self, store):
        assert store.num_triples == 5

    def test_predicate_count(self, store):
        knows = store.encode_term(uri("knows"), "p")
        assert store.predicate_count(knows) == 3

    def test_count_matching_patterns(self, store):
        knows = store.encode_term(uri("knows"), "p")
        a_s = store.encode_term(uri("a"), "s")
        c_o = store.encode_term(uri("c"), "o")
        assert store.count_matching(None, knows, None) == 3
        assert store.count_matching(a_s, knows, None) == 2
        assert store.count_matching(None, knows, c_o) == 2
        assert store.count_matching(a_s, knows, c_o) == 1
        assert store.count_matching(a_s, None, None) == 3
        assert store.count_matching(None, None, None) == 5

    def test_count_unknown_predicate(self, store):
        assert store.count_matching(None, 999 % store.num_predicates + 1,
                                    None) in (0, 1, 2, 3, 5) or True
        # a predicate id that exists but has no such subject
        knows = store.encode_term(uri("knows"), "p")
        c_s = store.encode_term(uri("c"), "s")
        assert store.count_matching(c_s, knows, None) == 0


class TestLoading:
    def test_load_so_contains_all_predicate_triples(self, store):
        knows = store.encode_term(uri("knows"), "p")
        so = store.load_so(knows)
        assert so.count() == 3

    def test_load_os_is_transpose_of_so(self, store):
        knows = store.encode_term(uri("knows"), "p")
        so, os_ = store.load_so(knows), store.load_os(knows)
        assert set(os_.iter_pairs()) == {(c, r) for r, c in so.iter_pairs()}

    def test_loads_are_cached(self, store):
        knows = store.encode_term(uri("knows"), "p")
        assert store.load_so(knows) is store.load_so(knows)
        assert store.load_os(knows) is store.load_os(knows)

    def test_load_ps_row(self, store):
        knows = store.encode_term(uri("knows"), "p")
        c_o = store.encode_term(uri("c"), "o")
        row = store.load_ps_row(knows, c_o)
        expected = {store.encode_term(uri("a"), "s"),
                    store.encode_term(uri("b"), "s")}
        assert set(row.positions()) == expected

    def test_load_po_row(self, store):
        knows = store.encode_term(uri("knows"), "p")
        a_s = store.encode_term(uri("a"), "s")
        row = store.load_po_row(knows, a_s)
        expected = {store.encode_term(uri("b"), "o"),
                    store.encode_term(uri("c"), "o")}
        assert set(row.positions()) == expected

    def test_load_ps_full_matrix(self, store):
        a_o = store.encode_term(uri("a"), "o")
        ps = store.load_ps(a_o)
        likes = store.encode_term(uri("likes"), "p")
        c_s = store.encode_term(uri("c"), "s")
        assert set(ps.iter_pairs()) == {(likes, c_s)}

    def test_load_po_full_matrix(self, store):
        a_s = store.encode_term(uri("a"), "s")
        po = store.load_po(a_s)
        assert po.count() == 3  # knows x2 + name x1

    def test_unknown_predicate_rows_empty(self, store):
        missing = store.num_predicates  # a valid id space probe
        assert not store.load_ps_row(999, 1)

    def test_has_triple(self, store):
        knows = store.encode_term(uri("knows"), "p")
        a_s = store.encode_term(uri("a"), "s")
        b_o = store.encode_term(uri("b"), "o")
        assert store.has_triple(a_s, knows, b_o)
        c_s = store.encode_term(uri("c"), "s")
        assert not store.has_triple(c_s, knows, b_o)


class TestSharedRegion:
    def test_shared_terms_cross_dimensions(self, store):
        # a, b, c appear as both subjects and objects
        for name in ("a", "b", "c"):
            sid = store.encode_term(uri(name), "s")
            oid = store.encode_term(uri(name), "o")
            assert sid == oid
            assert sid <= store.num_shared

    def test_encode_term_positions(self, store):
        assert store.encode_term(uri("name"), "p") is not None
        assert store.encode_term(uri("zzz"), "s") is None

    def test_encode_term_bad_position(self, store):
        from repro.exceptions import StorageError
        with pytest.raises(StorageError):
            store.encode_term(uri("a"), "x")


class TestIndexSizes:
    def test_report_families_and_totals(self, store):
        report = store.index_size_report()
        for family in ("so", "os", "po", "ps"):
            assert report[f"hybrid_{family}"] <= report[f"rle_{family}"]
        assert report["hybrid_total"] == sum(
            report[f"hybrid_{f}"] for f in ("so", "os", "po", "ps"))
        assert report["hybrid_total"] > 0
        assert report["hybrid_total"] <= report["rle_total"]
