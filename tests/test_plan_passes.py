"""Unit tests for the compiler pipeline: logical IR and rewrite passes.

Each pass is exercised in isolation (the ISSUE-3 contract: named,
individually-testable, idempotence-checked passes with a recorded
trace), then the full default pipeline is checked for idempotence over
a representative query zoo.
"""

from __future__ import annotations

import pytest

from repro.plan import (LBGP, LFilter, LJoin, LLeftJoin, LUnion, LUnionAll,
                        PassContext, PassError, PassManager, build_logical,
                        compile_logical, from_ast, run_pipeline, to_ast)
from repro.plan.passes import (EqualityFilterEliminationPass,
                               FilterScopeAssignmentPass,
                               UnionNormalFormPass, WellDesignednessPass,
                               collect_scoped_filters, default_passes)
from repro.sparql.parser import parse_query

from .conftest import EX

def q(body: str, head: str = "SELECT *") -> str:
    return f"PREFIX ex: <{EX}>\n{head} WHERE {{ {body} }}"


#: Queries covering the full supported surface (the idempotence zoo).
QUERY_ZOO = [
    q("?a ex:actedIn ?b ."),
    q("?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c }"),
    q("?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c . "
      "OPTIONAL { ?c ex:location ?d } }"),
    q("{ ?a ex:actedIn ?b } UNION { ?a ex:location ?b }"),
    q("?a ex:hasFriend ?b OPTIONAL { { ?b ex:actedIn ?c } UNION "
      "{ ?b ex:location ?c } }"),
    q("?a ex:actedIn ?b . FILTER(?a != ex:Larry)"),
    q("?a ex:actedIn ?b . ?a2 ex:actedIn ?b . FILTER(?a = ?a2)"),
    q("?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c . "
      "FILTER(?c != ex:Veep) }"),
    # non-well-designed: ?c occurs in the OPTIONAL body and outside
    q("{ ?x ex:actedIn ?c } { ?y ex:hasFriend ?z "
      "OPTIONAL { ?z ex:location ?c } }"),
    q("?a ex:actedIn ?b", head="SELECT DISTINCT ?a") + " ORDER BY ?a LIMIT 3",
]


# ----------------------------------------------------------------------
# logical IR lowering
# ----------------------------------------------------------------------

class TestLogicalIR:
    def test_scope_annotations(self):
        _, logical = compile_logical(q(
            "?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c . "
            "OPTIONAL { ?c ex:location ?d } }"))
        root = logical.root
        assert isinstance(root, LLeftJoin)
        assert root.scope == 0
        assert root.left.scope == 0
        # each OPTIONAL body opens a fresh scope
        inner = root.right
        assert isinstance(inner, LLeftJoin)
        assert inner.scope != 0
        assert inner.right.scope not in (0, inner.scope)

    def test_certain_and_possible(self):
        _, logical = compile_logical(q(
            "?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c }"))
        root = logical.root
        assert root.certain == {"a", "b"}
        assert root.possible == {"a", "b", "c"}

    def test_union_certain_is_intersection(self):
        _, logical = compile_logical(q(
            "{ ?a ex:actedIn ?b } UNION { ?a ex:location ?c }"))
        root = logical.root
        assert isinstance(root, LUnion)
        assert root.certain == {"a"}
        assert root.possible == {"a", "b", "c"}

    def test_filter_preserves_annotations(self):
        _, logical = compile_logical(q(
            "?a ex:actedIn ?b . FILTER(?a != ex:Larry)"))
        root = logical.root
        assert isinstance(root, LFilter)
        assert root.certain == {"a", "b"}

    def test_ast_round_trip(self):
        for text in QUERY_ZOO:
            query = parse_query(text)
            assert to_ast(from_ast(query.pattern)) == query.pattern

    def test_build_logical_carries_modifiers(self):
        query = parse_query(q("?a ex:actedIn ?b", head="SELECT ?a")
                            + " ORDER BY ?b LIMIT 5 OFFSET 2")
        logical = build_logical(query)
        assert logical.select == ("a",)
        assert logical.order_by == (("b", True),)
        assert logical.limit == 5 and logical.offset == 2


# ----------------------------------------------------------------------
# individual passes
# ----------------------------------------------------------------------

class TestEqualityFilterElimination:
    def run(self, text):
        _, logical = compile_logical(text)
        ctx = PassContext()
        rewritten, detail = EqualityFilterEliminationPass().run(logical,
                                                                ctx)
        return rewritten, ctx, detail

    def test_top_level_equality_eliminated(self):
        rewritten, ctx, detail = self.run(q(
            "?a ex:actedIn ?b . ?a2 ex:actedIn ?b . FILTER(?a = ?a2)"))
        assert ctx.renames == {"a2": "a"}
        assert "a2" not in rewritten.root.possible
        assert not isinstance(rewritten.root, LFilter)
        assert "renamed" in detail

    def test_nested_equality_untouched(self):
        text = q("?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c . "
                 "?b2 ex:actedIn ?c . FILTER(?b = ?b2) }")
        rewritten, ctx, _detail = self.run(text)
        _, original = compile_logical(text)
        assert ctx.renames == {}
        assert rewritten.root == original.root

    def test_non_certain_equality_untouched(self):
        text = q("?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c } "
                 "FILTER(?b = ?c)")
        rewritten, ctx, _detail = self.run(text)
        _, original = compile_logical(text)
        assert ctx.renames == {}
        assert rewritten.root == original.root


class TestUnionNormalForm:
    def run_unf(self, text):
        _, logical = compile_logical(text)
        return UnionNormalFormPass().run(logical, PassContext())

    def test_single_branch(self):
        rewritten, detail = self.run_unf(q("?a ex:actedIn ?b ."))
        root = rewritten.root
        assert isinstance(root, LUnionAll)
        assert len(root.branches) == 1
        assert not root.spurious_possible
        assert "1 union-free branch(es)" in detail

    def test_union_splits(self):
        rewritten, _ = self.run_unf(q(
            "{ ?a ex:actedIn ?b } UNION { ?a ex:location ?b }"))
        assert len(rewritten.root.branches) == 2

    def test_rule3_flags_spurious(self):
        rewritten, detail = self.run_unf(q(
            "?a ex:hasFriend ?b OPTIONAL { { ?b ex:actedIn ?c } UNION "
            "{ ?b ex:location ?c } }"))
        root = rewritten.root
        assert len(root.branches) == 2
        assert root.spurious_possible
        assert "rule 3" in detail

    def test_spurious_flag_survives_rerun(self):
        rewritten, _ = self.run_unf(q(
            "?a ex:hasFriend ?b OPTIONAL { { ?b ex:actedIn ?c } UNION "
            "{ ?b ex:location ?c } }"))
        again, _ = UnionNormalFormPass().run(rewritten, PassContext())
        assert again == rewritten
        assert again.root.spurious_possible


class TestFilterScopeAssignment:
    def test_requires_unf_first(self):
        _, logical = compile_logical(q("?a ex:actedIn ?b ."))
        with pytest.raises(PassError):
            FilterScopeAssignmentPass().run(logical, PassContext())

    def test_scope_ranges(self):
        _, logical = compile_logical(q(
            "?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c . "
            "FILTER(?c != ex:Veep) }"))
        unf, _ = UnionNormalFormPass().run(logical, PassContext())
        ctx = PassContext()
        FilterScopeAssignmentPass().run(unf, ctx)
        (filters,) = ctx.branch_filters
        (scoped,) = filters
        # the filter scopes over the OPTIONAL body's single TP
        assert (scoped.tp_start, scoped.tp_end) == (1, 2)

    def test_collect_order_is_innermost_first(self):
        _, logical = compile_logical(q(
            "?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c . "
            "FILTER(?c != ex:Veep) } FILTER(?a != ex:Larry)"))
        unf, _ = UnionNormalFormPass().run(logical, PassContext())
        (branch,) = unf.root.branches
        filters = collect_scoped_filters(branch)
        assert len(filters) == 2
        # inner (OPTIONAL-scoped) filter listed before the top filter
        assert filters[0].tp_end <= filters[1].tp_end

    def test_union_inside_branch_rejected(self):
        _, logical = compile_logical(q(
            "{ ?a ex:actedIn ?b } UNION { ?a ex:location ?b }"))
        with pytest.raises(PassError):
            collect_scoped_filters(logical.root)


class TestWellDesignednessPass:
    def analyzed(self, text):
        _, logical = compile_logical(text)
        unf, _ = UnionNormalFormPass().run(logical, PassContext())
        ctx = PassContext()
        WellDesignednessPass().run(unf, ctx)
        return unf, ctx

    def test_well_designed_branch(self):
        _, ctx = self.analyzed(q(
            "?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c }"))
        (info,) = ctx.branch_info
        assert info.well_designed
        assert info.converted_edges == frozenset()
        assert info.reference is not None

    def test_violating_branch_gets_reference_rewrite(self):
        unf, ctx = self.analyzed(q(
            "{ ?x ex:actedIn ?c } { ?y ex:hasFriend ?z "
            "OPTIONAL { ?z ex:location ?c } }"))
        (info,) = ctx.branch_info
        assert not info.well_designed
        assert "c" in info.violated_variables
        assert info.converted_edges
        # the reference rewrite turned the violating OPTIONAL into an
        # inner join: no LeftJoin nodes remain on the converted path
        def left_joins(node):
            if isinstance(node, LLeftJoin):
                yield node
            for child in ("left", "right", "child"):
                sub = getattr(node, child, None)
                if sub is not None:
                    yield from left_joins(sub)
        (branch,) = unf.root.branches
        assert list(left_joins(branch))
        assert not list(left_joins(info.reference))

    def test_requires_unf_first(self):
        _, logical = compile_logical(q("?a ex:actedIn ?b ."))
        with pytest.raises(PassError):
            WellDesignednessPass().run(logical, PassContext())


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------

class TestPassManager:
    def test_trace_records_every_pass(self):
        _, logical = compile_logical(QUERY_ZOO[1])
        result = run_pipeline(logical)
        assert [record.name for record in result.trace] == [
            "equality-filter-elimination", "union-normal-form",
            "filter-scope-assignment", "wd-analysis",
            "cost-based-ordering"]

    def test_trace_marks_what_changed(self):
        _, logical = compile_logical(q(
            "?a ex:actedIn ?b . ?a2 ex:actedIn ?b . FILTER(?a = ?a2)"))
        result = run_pipeline(logical)
        by_name = {record.name: record for record in result.trace}
        assert by_name["equality-filter-elimination"].changed
        assert "a2" in by_name["equality-filter-elimination"].detail

    @pytest.mark.parametrize("text", QUERY_ZOO)
    def test_pipeline_idempotent_on_zoo(self, text):
        _, logical = compile_logical(text)
        manager = PassManager(check_idempotence=True)
        result = manager.run(logical)
        again = manager.run(result.logical)
        assert again.logical == result.logical
        assert again.context.branch_filters == result.context.branch_filters
        assert again.context.branch_info == result.context.branch_info

    def test_check_idempotence_catches_broken_pass(self):
        class Renamer(UnionNormalFormPass):
            """Deliberately non-idempotent: grows a BGP every run."""

            name = "broken"

            def run(self, query, ctx):
                rewritten, detail = super().run(query, ctx)
                (branch, *rest) = rewritten.root.branches
                grown = from_ast(to_ast(LJoin(branch, branch,
                                              branch.scope,
                                              branch.certain,
                                              branch.possible)))
                root = LUnionAll((grown, *rest),
                                 rewritten.root.spurious_possible,
                                 rewritten.root.scope,
                                 rewritten.root.certain,
                                 rewritten.root.possible)
                return (type(rewritten)(root=root,
                                        select=rewritten.select,
                                        distinct=rewritten.distinct,
                                        order_by=rewritten.order_by,
                                        limit=rewritten.limit,
                                        offset=rewritten.offset), detail)

        _, logical = compile_logical(q("?a ex:actedIn ?b ."))
        manager = PassManager([Renamer()], check_idempotence=True)
        with pytest.raises(PassError, match="not idempotent"):
            manager.run(logical)

    def test_default_passes_order(self):
        names = [p.name for p in default_passes()]
        assert names.index("union-normal-form") < names.index(
            "filter-scope-assignment")
        assert names.index("union-normal-form") < names.index(
            "wd-analysis")


class TestBGPLowering:
    def test_lbgp_fields(self):
        _, logical = compile_logical(q("?a ex:actedIn ?b ."))
        root = logical.root
        assert isinstance(root, LBGP)
        assert len(root.patterns) == 1
