"""Hot-path cache behavior: LRU bounds, fold caches, plan cache, decode.

These tests pin down the invariants the caching layers must keep:

* every cache is bounded (LRU eviction actually happens);
* BitMat fold caches survive ``unfold`` only when still exact;
* ``unfold`` returns ``self`` on a no-op so fold/transpose caches stay
  warm, and the incrementally-maintained transpose stays equal to a
  from-scratch rebuild;
* the decode cache keeps S and O ids independent outside ``V_so`` and
  identical inside it;
* the plan cache never shares pruned state between queries that differ
  only in a constant, and cache hits are byte-identical to cold runs.
"""

from __future__ import annotations

import pytest

from repro import BitMatStore, Graph, LBREngine, NaiveEngine, Triple, URI
from repro.bitmat.bitmat import BitMat
from repro.bitmat.bitvec import BitVector
from repro.lru import LRUCache

from .conftest import EX, FIGURE_3_2, FIGURE_3_2_QUERY, triples, uri


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 0) == 0

    def test_eviction_bound(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.evictions == 7
        assert list(cache) == [7, 8, 9]

    def test_recency_on_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" is now the eviction victim
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_put_refreshes_existing(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("a") == 10 and "b" not in cache

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0 and cache.get("a") is None

    def test_stats_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["capacity"] == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


def _matrix() -> BitMat:
    return BitMat.from_pairs(6, 6, [(1, 1), (1, 3), (2, 2), (4, 1), (4, 5)])


class TestFoldCaches:
    def test_unfold_noop_returns_self(self):
        matrix = _matrix()
        full_rows = BitVector.full(6)
        full_cols = BitVector.full(6)
        assert matrix.unfold(full_rows, "row") is matrix
        assert matrix.unfold(full_cols, "col") is matrix

    def test_row_unfold_keeps_row_fold_exact(self):
        matrix = _matrix()
        matrix.fold("row")  # warm the cache
        pruned = matrix.unfold(BitVector.from_positions(6, [1, 2]), "row")
        assert pruned.fold("row") == BitVector.from_positions(6, [1, 2])

    def test_row_unfold_invalidates_col_fold(self):
        matrix = _matrix()
        matrix.fold("col")  # warm: {1, 2, 3, 5}
        pruned = matrix.unfold(BitVector.from_positions(6, [1, 2]), "row")
        # cols contributed only by dropped row 4 must disappear
        assert pruned.fold("col") == BitVector.from_positions(6, [1, 2, 3])

    def test_col_unfold_keeps_col_fold_exact(self):
        matrix = _matrix()
        matrix.fold("col")  # warm
        pruned = matrix.unfold(BitVector.from_positions(6, [1, 2]), "col")
        assert pruned.fold("col") == BitVector.from_positions(6, [1, 2])
        # row 4's only surviving bit is col 1; row fold recomputed fresh
        assert pruned.fold("row") == BitVector.from_positions(6, [1, 2, 4])

    def test_col_unfold_shares_unchanged_rows(self):
        matrix = _matrix()
        keep = BitVector.from_positions(6, [1, 2, 3, 5])  # clears nothing
        assert matrix.unfold(keep, "col") is matrix
        partial = matrix.unfold(BitVector.from_positions(6, [2, 3]), "col")
        # row 1 loses col 1 (changed); row 2 keeps its single bit 2 and
        # must be the *same* object so its caches stay warm
        assert partial.get_row(2) is matrix.get_row(2)

    def test_unfold_equals_reference_semantics(self):
        matrix = _matrix()
        mask = BitVector.from_positions(6, [1, 5])
        pruned = matrix.unfold(mask, "col")
        expected = {(r, c) for r, c in matrix.iter_pairs() if c in (1, 5)}
        assert set(pruned.iter_pairs()) == expected


class TestIncrementalTranspose:
    def _state(self):
        from repro.core.tp import TPState
        from repro.sparql import parse_query
        graph = Graph(triples(("a", "p", "b"), ("a", "p", "c"),
                              ("b", "p", "c"), ("c", "p", "a")))
        store = BitMatStore.build(graph)
        query = f"PREFIX ex: <{EX}> SELECT * WHERE {{ ?x ex:p ?y }}"
        pattern = parse_query(query).pattern.triple_patterns()[0]
        return TPState.load(0, pattern, store), store

    def test_transpose_maintained_through_unfold(self):
        state, store = self._state()
        warm = state.transpose()  # build the cache
        mask = state.fold(state.row_var)
        some_row = mask.first()
        pruned_mask = BitVector.from_positions(mask.size, [some_row])
        assert state.unfold(state.row_var, pruned_mask)
        rebuilt = state.matrix.transpose()
        assert state.transpose() == rebuilt
        assert state.transpose() is not warm  # it was masked, not stale

    def test_noop_unfold_keeps_transpose_object(self):
        state, store = self._state()
        warm = state.transpose()
        assert not state.unfold(state.row_var, state.fold(state.row_var))
        assert state.transpose() is warm


class TestStoreCaches:
    def test_row_cache_correct_and_bounded(self):
        graph = Graph(triples(*FIGURE_3_2))
        store = BitMatStore.build(graph)
        pid = store.encode_term(uri("actedIn"), "p")
        oid = store.encode_term(uri("CurbYourEnthu"), "o")
        first = store.load_ps_row(pid, oid)
        again = store.load_ps_row(pid, oid)
        assert again is first  # cache hit returns the shared vector
        stats = store.cache_stats()
        assert stats["rows"]["hits"] >= 1
        for family in stats.values():
            assert family["size"] <= family["capacity"]

    def test_entity_cache_hits(self):
        graph = Graph(triples(*FIGURE_3_2))
        store = BitMatStore.build(graph)
        sid = store.encode_term(uri("Jerry"), "s")
        assert store.load_po(sid) is store.load_po(sid)

    def test_matrix_caches_are_lru(self):
        from repro.bitmat import store as store_module
        graph = Graph(triples(*FIGURE_3_2))
        store = BitMatStore.build(graph)
        assert store._so_cache.capacity == store_module.MATRIX_CACHE_SIZE
        for pid in store._so_by_p:
            store.load_so(pid)
        assert len(store._so_cache) <= store._so_cache.capacity


class TestDecodeCache:
    def test_shared_ids_decode_per_space(self):
        # CurbYourEnthu appears as subject and object: shared V_so id
        graph = Graph(triples(*FIGURE_3_2))
        store = BitMatStore.build(graph)
        dictionary = store.dictionary
        shared_id = dictionary.subject_id(uri("CurbYourEnthu"))
        assert dictionary.is_shared_id(shared_id)
        assert dictionary.decode("s", shared_id) == uri("CurbYourEnthu")
        assert dictionary.decode("o", shared_id) == uri("CurbYourEnthu")
        # outside V_so the same integer denotes different terms
        jerry = dictionary.subject_id(uri("Jerry"))
        assert not dictionary.is_shared_id(jerry)
        assert (dictionary.decode("s", jerry)
                != dictionary.decode("o", jerry))

    def test_decode_cache_memoizes(self):
        graph = Graph(triples(*FIGURE_3_2))
        dictionary = BitMatStore.build(graph).dictionary
        dictionary.decode("s", 1)
        before = dictionary.decode_cache_stats()["hits"]
        dictionary.decode("s", 1)
        assert dictionary.decode_cache_stats()["hits"] == before + 1


PLAN_KEY_QUERIES = [
    f"""PREFIX ex: <{EX}>
SELECT ?friend ?sitcom WHERE {{
  ex:Jerry ex:hasFriend ?friend .
  OPTIONAL {{ ?friend ex:actedIn ?sitcom .
              ?sitcom ex:location ex:{city} . }}
}}""" for city in ("NewYorkCity", "LosAngeles")]


class TestPlanCache:
    def _engine(self) -> tuple[LBREngine, Graph]:
        graph = Graph(triples(*FIGURE_3_2))
        return LBREngine(BitMatStore.build(graph)), graph

    def test_constant_is_part_of_the_key(self):
        engine, graph = self._engine()
        nyc_cold = engine.execute(PLAN_KEY_QUERIES[0])
        la_cold = engine.execute(PLAN_KEY_QUERIES[1])
        assert engine.plan_cache_stats()["size"] == 2
        # interleave repeats: cached plans must not bleed into each other
        nyc_warm = engine.execute(PLAN_KEY_QUERIES[0])
        la_warm = engine.execute(PLAN_KEY_QUERIES[1])
        assert nyc_warm.rows == nyc_cold.rows
        assert la_warm.rows == la_cold.rows
        assert nyc_cold.as_multiset() != la_cold.as_multiset()
        naive = NaiveEngine(graph)
        assert (nyc_warm.as_multiset()
                == naive.execute(PLAN_KEY_QUERIES[0]).as_multiset())
        assert (la_warm.as_multiset()
                == naive.execute(PLAN_KEY_QUERIES[1]).as_multiset())

    def test_hit_is_byte_identical_to_cold(self):
        queries = [
            FIGURE_3_2_QUERY,
            f"PREFIX ex: <{EX}> SELECT * WHERE {{ ?x ex:actedIn ?y }}",
            f"""PREFIX ex: <{EX}> SELECT ?f ?s WHERE {{
                ex:Jerry ex:hasFriend ?f .
                OPTIONAL {{ ?f ex:actedIn ?s }}
                }} ORDER BY ?f LIMIT 3""",
            f"""PREFIX ex: <{EX}> SELECT * WHERE {{
                {{ ?x ex:actedIn ?y }} UNION {{ ?x ex:location ?y }}
                }}""",
            f"""PREFIX ex: <{EX}> SELECT * WHERE {{
                ?x ex:actedIn ?y . FILTER(?x != ex:Larry)
                }}""",
        ]
        warm_engine, _ = self._engine()
        for query in queries:
            cold_engine, _ = self._engine()
            cold = cold_engine.execute(query)
            first = warm_engine.execute(query)
            second = warm_engine.execute(query)
            assert second.variables == first.variables == cold.variables
            assert second.rows == first.rows == cold.rows

    def test_cache_is_bounded(self):
        graph = Graph(triples(*FIGURE_3_2))
        engine = LBREngine(BitMatStore.build(graph), plan_cache_size=2)
        for city in ("NewYorkCity", "LosAngeles", "D.C.", "Jersey"):
            engine.execute(f"""PREFIX ex: <{EX}>
                SELECT * WHERE {{ ?s ex:location ex:{city} }}""")
        stats = engine.plan_cache_stats()
        assert stats["size"] <= 2 and stats["evictions"] >= 2

    def test_parsed_query_objects_hit_the_cache(self):
        from repro.sparql import parse_query
        engine, _ = self._engine()
        parsed = parse_query(FIGURE_3_2_QUERY)
        first = engine.execute(parsed)
        hits_before = engine.plan_cache_stats()["hits"]
        second = engine.execute(parsed)
        assert engine.plan_cache_stats()["hits"] == hits_before + 1
        assert second.rows == first.rows

    def test_pruned_state_not_shared_between_plans(self):
        """Warm repeats may replay memoized pruned state, but must
        report the identical pruned size and rows as the cold run."""
        engine, graph = self._engine()
        query = PLAN_KEY_QUERIES[0]
        cold = engine.execute(query)
        after_pruning = engine.last_stats.triples_after_pruning
        warm = engine.execute(query)
        assert engine.last_stats.triples_after_pruning == after_pruning
        assert warm.rows == cold.rows

    def test_state_memo_matches_memoless_execution(self):
        """The pruned-state memo is a pure cache: identical rows and
        pruned sizes with the ablation switch on and off."""
        graph = Graph(triples(*FIGURE_3_2))
        memoized = LBREngine(BitMatStore.build(graph))
        plain = LBREngine(BitMatStore.build(graph),
                          enable_state_memo=False)
        for query in PLAN_KEY_QUERIES:
            cold = memoized.execute(query)
            cold_stats = memoized.last_stats
            warm = memoized.execute(query)
            warm_stats = memoized.last_stats
            reference = plain.execute(query)
            assert warm.rows == cold.rows == reference.rows
            assert (warm_stats.triples_after_pruning
                    == cold_stats.triples_after_pruning
                    == plain.last_stats.triples_after_pruning)

    def test_state_memo_lifetime_tied_to_plan_cache(self):
        """Evicting a plan drops its memo with it: re-executing after
        eviction recompiles and re-prunes, same answer."""
        graph = Graph(triples(*FIGURE_3_2))
        engine = LBREngine(BitMatStore.build(graph), plan_cache_size=1)
        first = engine.execute(PLAN_KEY_QUERIES[0])
        engine.execute(PLAN_KEY_QUERIES[1])  # evicts the first plan
        again = engine.execute(PLAN_KEY_QUERIES[0])
        assert again.rows == first.rows
