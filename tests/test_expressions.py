"""FILTER expression evaluation tests (SPARQL three-valued logic)."""

import pytest

from repro.rdf.terms import Literal, NULL, URI, Variable
from repro.sparql.expressions import (BooleanOp, Bound, Comparison, Constant,
                                      ExpressionError, Not, Regex, SameTerm,
                                      VarRef, evaluate, expression_sparql,
                                      expression_variables, passes,
                                      substitute_variable)

X, Y = Variable("x"), Variable("y")
INT = "http://www.w3.org/2001/XMLSchema#integer"


def num(value) -> Literal:
    return Literal(str(value), datatype=INT)


class TestComparisons:
    def test_numeric_comparisons(self):
        row = {X: num(5)}
        assert evaluate(Comparison(">", VarRef(X), Constant(num(3))), row)
        assert not evaluate(Comparison("<", VarRef(X), Constant(num(3))), row)
        assert evaluate(Comparison(">=", VarRef(X), Constant(num(5))), row)
        assert evaluate(Comparison("<=", VarRef(X), Constant(num(5))), row)

    def test_numeric_equality_across_lexical_forms(self):
        # "5"^^integer equals plain "5.0" numerically
        row = {X: num(5)}
        assert evaluate(Comparison("=", VarRef(X),
                                   Constant(Literal("5.0"))), row)

    def test_string_comparison(self):
        row = {X: Literal("abc")}
        assert evaluate(Comparison("<", VarRef(X),
                                   Constant(Literal("abd"))), row)

    def test_uri_equality(self):
        row = {X: URI("http://a")}
        assert evaluate(Comparison("=", VarRef(X),
                                   Constant(URI("http://a"))), row)
        assert evaluate(Comparison("!=", VarRef(X),
                                   Constant(URI("http://b"))), row)

    def test_unbound_variable_is_error(self):
        with pytest.raises(ExpressionError):
            evaluate(Comparison("=", VarRef(X), Constant(num(1))), {})

    def test_null_binding_is_error(self):
        with pytest.raises(ExpressionError):
            evaluate(Comparison("=", VarRef(X), Constant(num(1))),
                     {X: NULL})


class TestBooleanLogic:
    def test_and_or_not(self):
        row = {X: num(5)}
        gt = Comparison(">", VarRef(X), Constant(num(3)))
        lt = Comparison("<", VarRef(X), Constant(num(3)))
        assert evaluate(BooleanOp("&&", gt, Not(lt)), row)
        assert evaluate(BooleanOp("||", lt, gt), row)
        assert not evaluate(BooleanOp("&&", gt, lt), row)

    def test_or_absorbs_error_when_other_true(self):
        row = {X: num(5)}
        gt = Comparison(">", VarRef(X), Constant(num(3)))
        err = Comparison("=", VarRef(Y), Constant(num(1)))  # Y unbound
        assert evaluate(BooleanOp("||", gt, err), row)
        assert evaluate(BooleanOp("||", err, gt), row)

    def test_and_absorbs_error_when_other_false(self):
        row = {X: num(1)}
        lt = Comparison("<", VarRef(X), Constant(num(0)))  # false
        err = Comparison("=", VarRef(Y), Constant(num(1)))
        assert not evaluate(BooleanOp("&&", lt, err), row)

    def test_error_propagates_otherwise(self):
        row = {X: num(5)}
        gt = Comparison(">", VarRef(X), Constant(num(3)))  # true
        err = Comparison("=", VarRef(Y), Constant(num(1)))
        with pytest.raises(ExpressionError):
            evaluate(BooleanOp("&&", gt, err), row)


class TestBuiltins:
    def test_bound(self):
        assert evaluate(Bound(X), {X: num(1)})
        assert not evaluate(Bound(X), {})
        assert not evaluate(Bound(X), {X: NULL})

    def test_not_bound(self):
        assert evaluate(Not(Bound(X)), {})

    def test_regex(self):
        row = {X: Literal("Hello World")}
        assert evaluate(Regex(VarRef(X), "World"), row)
        assert not evaluate(Regex(VarRef(X), "world"), row)
        assert evaluate(Regex(VarRef(X), "world", "i"), row)

    def test_sameterm(self):
        row = {X: URI("a"), Y: URI("a")}
        assert evaluate(SameTerm(VarRef(X), VarRef(Y)), row)


class TestPasses:
    def test_passes_true(self):
        assert passes(Bound(X), {X: num(1)})

    def test_errors_count_as_false(self):
        assert not passes(Comparison("=", VarRef(X), Constant(num(1))), {})


class TestIntrospection:
    def test_expression_variables(self):
        expr = BooleanOp("&&", Comparison("<", VarRef(X), VarRef(Y)),
                         Bound(Variable("z")))
        assert expression_variables(expr) == {X, Y, Variable("z")}

    def test_expression_sparql_round_trippable(self):
        from repro.sparql.parser import parse_query
        expr = BooleanOp("&&", Comparison("<", VarRef(X), Constant(num(9))),
                         Not(Bound(Y)))
        text = (f"SELECT * WHERE {{ ?x <p> ?y "
                f"FILTER({expression_sparql(expr)}) }}")
        assert parse_query(text) is not None

    def test_substitute_variable(self):
        expr = Comparison("=", VarRef(X), VarRef(Y))
        replaced = substitute_variable(expr, Y, Variable("z"))
        assert expression_variables(replaced) == {X, Variable("z")}

    def test_substitute_inside_nested(self):
        expr = Not(BooleanOp("||", Bound(Y), Regex(VarRef(Y), "a")))
        replaced = substitute_variable(expr, Y, X)
        assert expression_variables(replaced) == {X}
