"""N-Triples reader/writer tests."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ParseError
from repro.rdf import ntriples
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Literal, Triple, URI


class TestParseLine:
    def test_simple_triple(self):
        t = ntriples.parse_line("<s> <p> <o> .")
        assert t == Triple(URI("s"), URI("p"), URI("o"))

    def test_literal_object(self):
        t = ntriples.parse_line('<s> <p> "hello" .')
        assert t.o == Literal("hello")

    def test_language_tag(self):
        t = ntriples.parse_line('<s> <p> "chat"@fr .')
        assert t.o.language == "fr"

    def test_datatype(self):
        t = ntriples.parse_line(
            '<s> <p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
        assert t.o.datatype == "http://www.w3.org/2001/XMLSchema#integer"

    def test_blank_nodes(self):
        t = ntriples.parse_line("_:b0 <p> _:b1 .")
        assert t.s == BNode("b0")
        assert t.o == BNode("b1")

    def test_escapes(self):
        t = ntriples.parse_line(r'<s> <p> "line\nbreak \"q\" \\" .')
        assert str(t.o) == 'line\nbreak "q" \\'

    def test_unicode_escape(self):
        t = ntriples.parse_line(r'<s> <p> "é\U0001F600" .')
        assert str(t.o) == "é\U0001F600"

    def test_comment_returns_none(self):
        assert ntriples.parse_line("# a comment") is None

    def test_blank_line_returns_none(self):
        assert ntriples.parse_line("   ") is None

    def test_trailing_comment_allowed(self):
        assert ntriples.parse_line("<s> <p> <o> . # note") is not None

    def test_missing_dot_raises(self):
        with pytest.raises(ParseError):
            ntriples.parse_line("<s> <p> <o>")

    def test_bad_subject_raises(self):
        with pytest.raises(ParseError):
            ntriples.parse_line('"literal" <p> <o> .')

    def test_literal_predicate_raises(self):
        with pytest.raises(ParseError):
            ntriples.parse_line('<s> "p" <o> .')

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError, match="line 3"):
            list(ntriples.parse("<a> <b> <c> .\n\nbad line\n"))


class TestStreamAndFiles:
    def test_parse_multiline_string(self):
        text = "<a> <p> <b> .\n# comment\n<b> <p> <c> .\n"
        assert len(list(ntriples.parse(text))) == 2

    def test_load_and_dump_round_trip(self, tmp_path):
        graph = Graph([Triple(URI("s"), URI("p"), Literal('v "quoted"\n')),
                       Triple(BNode("b"), URI("p"), URI("o"))])
        path = str(tmp_path / "data.nt")
        written = ntriples.dump(graph, path)
        assert written == 2
        loaded = ntriples.load(path)
        assert set(loaded) == set(graph)

    def test_load_into_existing_graph(self, tmp_path):
        path = str(tmp_path / "data.nt")
        ntriples.dump([Triple(URI("s"), URI("p"), URI("o"))], path)
        graph = Graph([Triple(URI("x"), URI("y"), URI("z"))])
        ntriples.load(path, graph)
        assert len(graph) == 2


safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=0, max_size=20)
uri_names = st.text(alphabet="abcdefghij/#.", min_size=1, max_size=12)


def _literals():
    return st.builds(
        lambda v, lang: Literal(v, language=lang),
        safe_text, st.sampled_from([None, "en", "fr-CA"]))


class TestRoundTripProperty:
    @given(st.lists(st.tuples(uri_names, uri_names,
                              st.one_of(uri_names.map(URI), _literals())),
                    min_size=1, max_size=20))
    def test_serialize_parse_round_trip(self, rows):
        data = [Triple(URI("http://x/" + s), URI("http://p/" + p), o)
                for s, p, o in rows]
        text = ntriples.serialize(data)
        parsed = list(ntriples.parse(text))
        assert parsed == data
