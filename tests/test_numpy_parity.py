"""Parity of the optional numpy fast path (``LBR_NUMPY=1``).

The stdlib-only build is the default and the normatively tested one;
the numpy path only accelerates bulk position decoding and must be
bit-identical.  Parity is checked through a subprocess because the
flag is read at import time: the child runs the battery under
``LBR_NUMPY=1`` and prints a digest, the parent computes the same
digest on the stdlib path.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: executed in both interpreters; prints one line per battery entry
_BATTERY = """
import hashlib

from repro import BitMatStore, LBREngine
from repro.bitmat.bitvec import BitVector
from repro.datasets import ALL_SUITES, generate_lubm

vectors = [
    BitVector.empty(1000),
    BitVector.full(1000),
    BitVector.from_positions(1 << 14, range(7, 1 << 14, 97)),
    BitVector.from_intervals(1 << 14, [(0, 5000), (9000, 16000)]),
    BitVector.from_positions(256, [0, 1, 2, 255]),
]
for vec in vectors:
    print(list(vec.positions_array()) == vec.positions())
    print(hashlib.sha256(
        repr(list(vec.positions_array())).encode()).hexdigest())

store = BitMatStore.build(generate_lubm())
store.freeze()
engine = LBREngine(store)
for name, query in sorted(ALL_SUITES["LUBM"].items()):
    rows = sorted(repr(row) for row in engine.execute(query).rows)
    print(name, hashlib.sha256("\\n".join(rows).encode()).hexdigest())
"""


def _run(env_flag: str) -> str:
    env = dict(os.environ, LBR_NUMPY=env_flag, PYTHONPATH="src")
    result = subprocess.run(
        [sys.executable, "-c", _BATTERY], env=env, cwd=_REPO_ROOT,
        capture_output=True, text=True, check=True)
    return result.stdout


def test_numpy_path_is_bit_identical():
    pytest.importorskip("numpy")
    stdlib_out = _run("0")
    numpy_out = _run("1")
    assert "False" not in stdlib_out
    assert numpy_out == stdlib_out


def test_flag_enables_numpy_in_subprocess():
    pytest.importorskip("numpy")
    env = dict(os.environ, LBR_NUMPY="1", PYTHONPATH="src")
    result = subprocess.run(
        [sys.executable, "-c",
         "from repro.bitmat import bitvec; print(bitvec._np is not None)"],
        env=env, cwd=_REPO_ROOT, capture_output=True, text=True,
        check=True)
    assert result.stdout.strip() == "True"


def test_missing_numpy_degrades_to_stdlib():
    """LBR_NUMPY=1 without numpy importable must not break anything."""
    env = dict(os.environ, LBR_NUMPY="1", PYTHONPATH="src")
    script = (
        "import sys\n"
        "sys.modules['numpy'] = None\n"  # force ImportError on import
        "import importlib\n"
        "from repro.bitmat import bitvec\n"
        "importlib.reload(bitvec)\n"
        "print(bitvec._np is None)\n"
        "vec = bitvec.BitVector.from_positions(64, [1, 5, 9])\n"
        "print(list(vec.positions_array()))\n")
    result = subprocess.run(
        [sys.executable, "-c", script], env=env, cwd=_REPO_ROOT,
        capture_output=True, text=True, check=True)
    assert result.stdout.splitlines() == ["True", "[1, 5, 9]"]
