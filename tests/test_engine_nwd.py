"""Non-well-designed queries: Appendix B transformation + Appendix C semantics.

For NWD queries the paper prescribes a GoSN transformation under the
null-intolerant join assumption: every unidirectional edge on the
undirected path between a violation pair becomes bidirectional — i.e.
those left-outer joins become inner joins.  The precise conformance
test is therefore: LBR on the NWD query must equal the (SPARQL) oracle
on the *explicitly rewritten* query in which the converted OPTIONALs
are inner joins.
"""

import pytest

from repro import (BitMatStore, ColumnStoreEngine, Graph, LBREngine,
                   NaiveEngine, NULL)
from repro.sparql import is_well_designed, parse_query

from .conftest import EX, triples, uri


def q(body: str) -> str:
    return f"PREFIX ex: <{EX}>\nSELECT * WHERE {{ {body} }}"


DATA = Graph(triples(
    ("x1", "p", "y1"), ("x2", "p", "y2"), ("x3", "p", "y3"),
    ("y1", "q", "z1"), ("y2", "q", "z2"),
    ("z1", "r", "w1"),
    ("y1", "s", "v1"), ("y3", "s", "v3"),
    ("x1", "t", "u1"), ("x2", "t", "u2"), ("x3", "t", "u3"),
))

# (NWD query, its Appendix-B-transformed equivalent)
NWD_CASES = [
    # ?y of the second block's slave occurs in the first block: the
    # violation paths convert every OPT on them into inner joins
    ("{ ?x ex:p ?y OPTIONAL { ?y ex:q ?z } } "
     "{ ?x ex:t ?u OPTIONAL { ?y ex:s ?v } }",
     "?x ex:p ?y . ?y ex:q ?z . ?x ex:t ?u . ?y ex:s ?v"),
    # innermost OPT references ?y from two levels up: the whole chain
    # of OPTs lies on the violation paths
    ("?x ex:p ?y OPTIONAL { ?y ex:q ?z OPTIONAL { ?z ex:r ?w "
     "OPTIONAL { ?y ex:s ?v } } }",
     "?x ex:p ?y . ?y ex:q ?z . ?z ex:r ?w . ?y ex:s ?v"),
    # textbook Px JOIN (Py OPT Pz): the single OPT becomes inner
    ("{ ?x ex:p ?c } { ?y ex:q ?z OPTIONAL { ?z ex:r ?c } }",
     "?x ex:p ?c . ?y ex:q ?z . ?z ex:r ?c"),
]


class TestAppendixBConformance:
    @pytest.mark.parametrize("body,_", NWD_CASES)
    def test_cases_are_really_nwd(self, body, _):
        assert not is_well_designed(parse_query(q(body)).pattern)

    @pytest.mark.parametrize("body,transformed", NWD_CASES)
    def test_lbr_equals_oracle_on_transformed_query(self, body,
                                                    transformed):
        store = BitMatStore.build(DATA)
        lbr = LBREngine(store).execute(q(body))
        oracle = NaiveEngine(DATA).execute(q(transformed))
        # align on the shared variable tuple (the transformed query has
        # the same variables)
        assert lbr.project(oracle.variables).as_multiset() == \
            oracle.as_multiset()

    @pytest.mark.parametrize("body,_", NWD_CASES)
    def test_transformation_flag_reported(self, body, _):
        store = BitMatStore.build(DATA)
        engine = LBREngine(store)
        engine.execute(q(body))
        assert engine.last_stats.nwd_transformed

    def test_simple_violation_matches_sql_oracle_too(self):
        # for Px JOIN (Py OPT Pz) the inner-join conversion provably
        # coincides with SQL null-intolerant evaluation
        body, _ = NWD_CASES[2]
        store = BitMatStore.build(DATA)
        lbr = LBREngine(store).execute(q(body))
        sql = NaiveEngine(DATA, null_intolerant=True).execute(q(body))
        col = ColumnStoreEngine(DATA).execute(q(body))
        assert lbr.as_multiset() == sql.as_multiset()
        assert col.as_multiset() == sql.as_multiset()


class TestAppendixCDivergence:
    """SPARQL and SQL answers genuinely differ on joins over NULLs."""

    MOVIES = Graph(triples(
        ("f1", "acted", "s1"),
        # no location for s1 -> ?c unbound on the left side
        ("z1", "in", "c1"),
    ))
    QUERY = q("{ ?f ex:acted ?s OPTIONAL { ?s ex:loc ?c } } "
              "{ ?z ex:in ?c }")

    def test_query_is_nwd(self):
        assert not is_well_designed(parse_query(self.QUERY).pattern)

    def test_pure_sparql_keeps_counterintuitive_row(self):
        # Appendix C: an unbound ?c is compatible with anything, so the
        # pure-SPARQL answer joins (f1, s1) with (z1, c1)
        rows = NaiveEngine(self.MOVIES).execute(self.QUERY)
        assert len(rows) == 1
        assert rows.rows[0][rows.variables.index("c")] == uri("c1")

    def test_sql_semantics_rejects_null_join(self):
        rows = NaiveEngine(self.MOVIES,
                           null_intolerant=True).execute(self.QUERY)
        assert len(rows) == 0

    def test_lbr_follows_the_sql_interpretation(self):
        store = BitMatStore.build(self.MOVIES)
        rows = LBREngine(store).execute(self.QUERY)
        assert len(rows) == 0

    def test_wd_queries_unaffected_by_semantics(self):
        query = q("?x ex:p ?y OPTIONAL { ?y ex:q ?z }")
        sparql_rows = NaiveEngine(DATA).execute(query)
        sql_rows = NaiveEngine(DATA, null_intolerant=True).execute(query)
        assert sparql_rows.as_multiset() == sql_rows.as_multiset()


class TestTransformedRelations:
    def test_violating_leftjoin_becomes_inner(self):
        # after transformation the ?y ex:s ?v block is an inner join:
        # masters without an s-edge disappear
        store = BitMatStore.build(DATA)
        result = LBREngine(store).execute(q(NWD_CASES[0][0]))
        bound_y = {row["y"] for row in result.bindings()}
        assert uri("y2") not in bound_y
        assert uri("y1") in bound_y
