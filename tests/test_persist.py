"""Store persistence round-trip tests."""

import pytest
from hypothesis import given, strategies as st

from repro import BitMatStore, Graph, LBREngine, StorageError, Triple, URI
from repro.bitmat.persist import (dump_store_bytes, load_store,
                                  load_store_bytes, save_store)
from repro.rdf.terms import BNode, Literal

from .conftest import FIGURE_3_2, FIGURE_3_2_QUERY, triples, uri


class TestRoundTrip:
    def test_figure_store_round_trip(self, figure_graph, tmp_path):
        store = BitMatStore.build(figure_graph)
        path = str(tmp_path / "figure.lbr")
        written = store.save(path)
        assert written > 0
        loaded = BitMatStore.load(path)
        assert loaded.num_triples == store.num_triples
        assert loaded.num_shared == store.num_shared
        assert loaded.num_subjects == store.num_subjects

    def test_loaded_store_answers_queries(self, figure_graph, tmp_path):
        store = BitMatStore.build(figure_graph)
        path = str(tmp_path / "figure.lbr")
        store.save(path)
        loaded = BitMatStore.load(path)
        original = LBREngine(store).execute(FIGURE_3_2_QUERY)
        reloaded = LBREngine(loaded).execute(FIGURE_3_2_QUERY)
        assert original.as_multiset() == reloaded.as_multiset()

    def test_all_term_kinds_survive(self, tmp_path):
        graph = Graph([
            Triple(URI("http://ex/s"), URI("http://ex/p"),
                   Literal("plain")),
            Triple(URI("http://ex/s"), URI("http://ex/p"),
                   Literal("typed", datatype="http://ex/dt")),
            Triple(URI("http://ex/s"), URI("http://ex/p"),
                   Literal("tagged", language="fr")),
            Triple(BNode("b0"), URI("http://ex/q"), URI("http://ex/s")),
            Triple(URI("http://ex/u"), URI("http://ex/p"),
                   Literal("unicode é\U0001F600")),
        ])
        store = BitMatStore.build(graph)
        path = str(tmp_path / "terms.lbr")
        save_store(store, path)
        loaded = load_store(path)
        for triple in graph:
            sid, pid, oid = loaded.dictionary.encode_triple(triple)
            assert loaded.has_triple(sid, pid, oid)

    def test_empty_graph(self, tmp_path):
        store = BitMatStore.build(Graph())
        path = str(tmp_path / "empty.lbr")
        store.save(path)
        assert load_store(path).num_triples == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.lbr")
        with open(path, "wb") as handle:
            handle.write(b"NOTASTORE")
        with pytest.raises(StorageError):
            load_store(path)

    def test_truncated_file_rejected(self, figure_graph, tmp_path):
        store = BitMatStore.build(figure_graph)
        path = str(tmp_path / "trunc.lbr")
        store.save(path)
        with open(path, "rb") as handle:
            payload = handle.read()
        with open(path, "wb") as handle:
            handle.write(payload[:len(payload) // 2])
        with pytest.raises(StorageError):
            load_store(path)

    def test_frozen_store_round_trips(self, figure_graph, tmp_path):
        store = BitMatStore.build(figure_graph)
        store.freeze()
        path = str(tmp_path / "frozen.lbr")
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.num_triples == store.num_triples
        original = LBREngine(store).execute(FIGURE_3_2_QUERY)
        reloaded = LBREngine(loaded).execute(FIGURE_3_2_QUERY)
        assert original.as_multiset() == reloaded.as_multiset()

    def test_bytes_round_trip(self, figure_graph):
        store = BitMatStore.build(figure_graph)
        payload = dump_store_bytes(store)
        loaded = load_store_bytes(payload)
        assert loaded.num_triples == store.num_triples
        assert sorted(loaded.iter_triples(),
                      key=lambda t: (t.s.n3, t.p.n3, t.o.n3)) \
            == sorted(store.iter_triples(),
                      key=lambda t: (t.s.n3, t.p.n3, t.o.n3))

    def test_every_single_bit_flip_in_body_is_detected(self,
                                                       figure_graph):
        """The CRC footer catches any one-bit corruption of the body."""
        store = BitMatStore.build(figure_graph)
        payload = bytearray(dump_store_bytes(store))
        # flip one bit in a spread of body positions (first byte after
        # the magic, a middle byte, the last body byte)
        body_end = len(payload) - 4
        for position in (len(b"LBRSTORE2"), body_end // 2, body_end - 1):
            corrupted = bytearray(payload)
            corrupted[position] ^= 0x10
            with pytest.raises(StorageError):
                load_store_bytes(bytes(corrupted))

    def test_corrupted_footer_is_detected(self, figure_graph):
        store = BitMatStore.build(figure_graph)
        payload = bytearray(dump_store_bytes(store))
        payload[-1] ^= 0xFF
        with pytest.raises(StorageError):
            load_store_bytes(bytes(payload))


names = st.text(alphabet="abcdef", min_size=1, max_size=3)


class TestRoundTripProperty:
    @given(st.sets(st.tuples(names, names, names), min_size=1,
                   max_size=30))
    def test_random_graphs_round_trip(self, rows):
        import tempfile

        graph = Graph(Triple(URI("http://x/" + s), URI("http://p/" + p),
                             URI("http://x/" + o)) for s, p, o in rows)
        store = BitMatStore.build(graph)
        with tempfile.TemporaryDirectory() as tmp_dir:
            path = f"{tmp_dir}/g.lbr"
            save_store(store, path)
            loaded = load_store(path)
        assert loaded.num_triples == store.num_triples
        for triple in graph:
            encoded = loaded.dictionary.encode_triple(triple)
            assert loaded.has_triple(*encoded)
