"""The differential fuzzing subsystem: generators, harness, shrinker.

Covers determinism (a corpus case must replay bit-identically from its
seed), generator validity (parse round-trips, the WD profile really
produces well-designed queries), the oracle's engine matrix, corpus
(de)serialization, ddmin shrinking, and the self-check the acceptance
gate runs: a deliberately injected nullification bug must be caught
and shrunk to a tiny counterexample.
"""

from __future__ import annotations

import random

import pytest

from repro import Graph, Triple, URI
from repro.fuzz import (CampaignConfig, FuzzCase, GraphSpec,
                        QueryGenerator, QuerySpec, case_from_json,
                        case_to_json, generate_case, generate_graph,
                        inject_bug, run_campaign, run_case,
                        run_ordering_case, shrink)
from repro.sparql.parser import parse_query
from repro.sparql.wd import is_well_designed


class TestGraphGenerator:
    def test_deterministic(self):
        spec = GraphSpec(shape="uniform", triples=50)
        first, _ = generate_graph(spec, seed=7)
        second, _ = generate_graph(spec, seed=7)
        assert set(first) == set(second)

    def test_seeds_differ(self):
        spec = GraphSpec(shape="uniform", triples=50)
        first, _ = generate_graph(spec, seed=7)
        second, _ = generate_graph(spec, seed=8)
        assert set(first) != set(second)

    def test_size_target(self):
        spec = GraphSpec(shape="clustered", triples=200,
                         num_entities=40)
        graph, _ = generate_graph(spec, seed=0)
        assert 100 <= len(graph) <= 200

    def test_star_shape_is_hub_skewed(self):
        spec = GraphSpec(shape="star", triples=300, num_entities=30,
                         hubs=2, literal_prob=0.0)
        graph, vocab = generate_graph(spec, seed=3)
        hubs = set(vocab.entities[:2])
        touching = sum(1 for t in graph if t.s in hubs or t.o in hubs)
        assert touching / len(graph) > 0.5

    def test_scales_to_10k(self):
        spec = GraphSpec(shape="uniform", triples=10_000,
                         num_entities=500, num_predicates=12)
        graph, _ = generate_graph(spec, seed=1)
        assert len(graph) > 8_000

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            GraphSpec(shape="ring")


class TestQueryGenerator:
    def _generate(self, seed, spec):
        graph, vocab = generate_graph(GraphSpec(triples=40), seed)
        generator = QueryGenerator(vocab, spec, random.Random(seed),
                                   graph=graph)
        return generator.generate()

    def test_deterministic(self):
        spec = QuerySpec()
        assert (self._generate(11, spec).to_sparql()
                == self._generate(11, spec).to_sparql())

    def test_all_queries_parse_and_round_trip(self):
        spec = QuerySpec()
        for seed in range(60):
            text = self._generate(seed, spec).to_sparql()
            reparsed = parse_query(text)
            # the parsed form is the case's canonical semantics; its
            # re-serialization must be stable (fixpoint)
            assert parse_query(reparsed.to_sparql()).to_sparql() \
                == reparsed.to_sparql()

    def test_wd_profile_is_well_designed(self):
        spec = QuerySpec(profile="wd")
        for seed in range(80):
            query = self._generate(seed, spec)
            reparsed = parse_query(query.to_sparql())
            assert is_well_designed(reparsed.pattern), query.to_sparql()

    def test_full_profile_produces_nwd_queries(self):
        spec = QuerySpec(profile="full")
        nwd = sum(
            not is_well_designed(
                parse_query(self._generate(seed, spec).to_sparql())
                .pattern)
            for seed in range(60))
        assert nwd >= 5

    def test_surface_coverage(self):
        """Across seeds the generator must hit the full query surface."""
        spec = QuerySpec()
        texts = [self._generate(seed, spec).to_sparql()
                 for seed in range(120)]
        blob = "\n".join(texts)
        for token in ("OPTIONAL", "FILTER", "UNION", "ORDER BY",
                      "LIMIT", "DISTINCT", "BOUND", "REGEX"):
            assert token in blob, f"surface never generated: {token}"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            QuerySpec(profile="chaos")


class TestOracleHarness:
    def test_agreeing_case(self):
        graph = [Triple(URI("a"), URI("p"), URI("b")),
                 Triple(URI("b"), URI("q"), URI("c"))]
        case = FuzzCase(
            query_text="SELECT * WHERE { ?x <p> ?y "
                       "OPTIONAL { ?y <q> ?z } }",
            triples=tuple(graph))
        result = run_case(case)
        assert result.status == "agree"
        assert result.reference_rows == 1
        assert result.well_designed

    def test_unsupported_case(self):
        case = FuzzCase(
            query_text="SELECT * WHERE { ?a <p> ?b . ?c <q> ?d }",
            triples=(Triple(URI("a"), URI("p"), URI("b")),))
        result = run_case(case)
        assert result.status == "unsupported"
        assert "Cartesian" in result.unsupported_reason

    def test_campaign_deterministic(self):
        config = CampaignConfig(seed=42, budget=20)
        first = run_campaign(config)
        second = run_campaign(config)
        assert first.cases == second.cases == 20
        assert first.agreed == second.agreed
        assert first.by_shape == second.by_shape
        assert first.mismatched == second.mismatched == 0

    def test_generate_case_is_pure(self):
        config = CampaignConfig(seed=5, budget=1)
        one, shape_one = generate_case(config, 123456, 0)
        two, shape_two = generate_case(config, 123456, 0)
        assert one.query_text == two.query_text
        assert one.triples == two.triples
        assert shape_one == shape_two

    def test_time_budget_stops_campaign(self):
        config = CampaignConfig(seed=0, budget=10_000, seconds=1.0)
        report = run_campaign(config)
        assert report.cases < 10_000


class TestCorpusSerialization:
    def test_round_trip(self):
        case = FuzzCase(
            query_text="SELECT * WHERE { ?x <p> ?y }",
            triples=(Triple(URI("a"), URI("p"), URI("b")),
                     Triple(URI("c"), URI("p"), URI("d"))),
            name="round-trip", description="serialization test")
        data = case_to_json(case, expect="agree")
        entry = case_from_json(data, path="inline")
        assert entry.case.query_text == case.query_text
        assert set(entry.case.triples) == set(case.triples)
        assert entry.expect == "agree"

    def test_unknown_expectation_rejected(self):
        case = FuzzCase(query_text="SELECT * WHERE { ?x <p> ?y }")
        with pytest.raises(ValueError):
            case_to_json(case, expect="maybe")


class TestShrinker:
    def test_shrinks_to_relevant_triple(self):
        """ddmin over the graph: keep only what the failure needs."""
        needle = Triple(URI("n"), URI("p"), URI("n"))
        hay = [Triple(URI(f"h{i}"), URI("q"), URI(f"h{i + 1}"))
               for i in range(30)]
        case = FuzzCase(query_text="SELECT * WHERE { ?x <p> ?y }",
                        triples=tuple(hay + [needle]))

        def fails(candidate: FuzzCase) -> bool:
            return needle in candidate.triples

        shrunk = shrink(case, fails)
        assert shrunk.triples == (needle,)

    def test_shrinks_query_structure(self):
        """OPTIONAL blocks, UNION branches, filters and modifiers all
        collapse when the failure does not depend on them."""
        case = FuzzCase(
            query_text="""SELECT DISTINCT * WHERE {
  ?x <p> ?y .
  OPTIONAL { ?y <q> ?z . }
  { ?x <r> ?w . } UNION { ?x <s> ?v . }
  FILTER(BOUND(?y))
}
ORDER BY ?x""",
            triples=(Triple(URI("a"), URI("p"), URI("b")),))

        def fails(candidate: FuzzCase) -> bool:
            return "<p>" in candidate.query_text

        shrunk = shrink(case, fails)
        text = shrunk.query_text
        for token in ("OPTIONAL", "UNION", "FILTER", "DISTINCT",
                      "ORDER"):
            assert token not in text, text
        assert "<p>" in text

    def test_returns_original_when_not_failing(self):
        case = FuzzCase(query_text="SELECT * WHERE { ?x <p> ?y }",
                        triples=(Triple(URI("a"), URI("p"), URI("b")),))
        assert shrink(case, lambda c: False) is case


class TestInjectedBugSelfCheck:
    """The acceptance gate: the fuzzer must catch a planted bug."""

    def test_nullification_bug_caught_and_shrunk(self):
        config = CampaignConfig(seed=2, budget=200, profile="nul",
                                stop_on_failure=True)
        with inject_bug("nullification"):
            report = run_campaign(config)
        assert report.mismatched >= 1, (
            "the planted nullification bug was not caught")
        shrunk = report.shrunk[0]
        patterns = parse_query(shrunk.query_text).pattern
        assert len(shrunk.triples) <= 6
        assert len(patterns.triple_patterns()) <= 3

    def test_injection_restores_engine(self):
        with inject_bug("nullification"):
            pass
        graph = Graph([Triple(URI("x"), URI("p"), URI("y")),
                       Triple(URI("y"), URI("q"), URI("z1")),
                       Triple(URI("z1"), URI("r"), URI("xw")),
                       Triple(URI("y"), URI("q"), URI("z2")),
                       Triple(URI("z2"), URI("r"), URI("x")),
                       Triple(URI("xw"), URI("p"), URI("yw"))])
        case = FuzzCase(
            query_text="SELECT * WHERE { ?x <p> ?y "
                       "OPTIONAL { ?y <q> ?z . ?z <r> ?x } }",
            triples=tuple(graph))
        assert run_case(case).status == "agree"

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError, match="unknown bug"):
            with inject_bug("gremlins"):
                pass


class TestOrderingProfile:
    """Cost-based vs heuristic ordering must be row-identical."""

    def test_agreeing_case_runs_both_orderings(self):
        graph = [Triple(URI("a"), URI("p"), URI("b")),
                 Triple(URI("b"), URI("q"), URI("c")),
                 Triple(URI("a"), URI("p"), URI("c"))]
        case = FuzzCase(
            query_text="SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }",
            triples=tuple(graph))
        result = run_ordering_case(case)
        assert result.status == "agree"
        assert not result.disagreements

    def test_frozen_store_plans_cost_based(self):
        # the profile's whole point: freezing flips the ordering source
        from repro import BitMatStore
        from repro.core.explain import explain

        graph = Graph([Triple(URI("a"), URI("p"), URI("b")),
                       Triple(URI("b"), URI("q"), URI("c"))])
        query = "SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }"
        frozen = BitMatStore.build(graph)
        frozen.freeze()
        assert explain(frozen, query).branches[0].ordering_source == "cost"
        plain = BitMatStore.build(graph)
        assert (explain(plain, query).branches[0].ordering_source
                == "heuristic")

    def test_small_campaign_is_clean_and_deterministic(self):
        config = CampaignConfig(seed=11, budget=25, profile="ordering")
        first = run_campaign(config)
        second = run_campaign(config)
        assert first.ok, [d.describe() for f in first.failures
                          for d in f.disagreements]
        assert first.cases == 25
        assert (first.agreed, first.unsupported, first.skipped) == (
            second.agreed, second.unsupported, second.skipped)
