"""Dictionary encoding tests — the Appendix D shared-id mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DictionaryError
from repro.rdf.dictionary import Dictionary
from repro.rdf.terms import Literal, Triple, URI


def make_triples(rows):
    return [Triple(URI(s), URI(p), URI(o)) for s, p, o in rows]


@pytest.fixture()
def sample() -> Dictionary:
    return Dictionary.from_triples(make_triples([
        ("a", "p", "b"),   # a: S only until...
        ("b", "p", "c"),   # b: both S and O -> shared
        ("d", "q", "a"),   # a: now shared too
    ]))


class TestSharedRegion:
    def test_shared_terms_get_identical_ids(self, sample):
        for name in ("a", "b"):
            assert sample.subject_id(URI(name)) == sample.object_id(URI(name))

    def test_shared_ids_form_a_prefix(self, sample):
        assert sample.num_shared == 2
        for name in ("a", "b"):
            assert sample.subject_id(URI(name)) <= sample.num_shared

    def test_non_shared_ids_above_prefix(self, sample):
        assert sample.subject_id(URI("d")) > sample.num_shared
        assert sample.object_id(URI("c")) > sample.num_shared

    def test_is_shared_id(self, sample):
        assert sample.is_shared_id(1)
        assert sample.is_shared_id(sample.num_shared)
        assert not sample.is_shared_id(sample.num_shared + 1)
        assert not sample.is_shared_id(0)

    def test_ids_are_one_based(self, sample):
        all_ids = [sample.subject_id(URI(n)) for n in ("a", "b", "d")]
        assert min(all_ids) == 1


class TestCounts:
    def test_dimension_counts(self, sample):
        assert sample.num_subjects == 3   # a, b, d
        assert sample.num_objects == 3    # a, b, c
        assert sample.num_predicates == 2

    def test_len_counts_distinct_terms(self, sample):
        # terms: a, b, c, d + predicates p, q
        assert len(sample) == 6


class TestRoundTrip:
    def test_encode_decode_round_trip(self, sample):
        for triple in make_triples([("a", "p", "b"), ("d", "q", "a")]):
            assert sample.decode_triple(sample.encode_triple(triple)) == triple

    def test_unknown_term_raises(self, sample):
        with pytest.raises(DictionaryError):
            sample.encode_triple(Triple(URI("zz"), URI("p"), URI("b")))

    def test_unknown_ids_raise(self, sample):
        with pytest.raises(DictionaryError):
            sample.subject_term(0)
        with pytest.raises(DictionaryError):
            sample.subject_term(99)
        with pytest.raises(DictionaryError):
            sample.predicate_term(11)

    def test_encode_triples_stream(self, sample):
        batch = make_triples([("a", "p", "b"), ("b", "p", "c")])
        assert len(list(sample.encode_triples(batch))) == 2


class TestDeterminism:
    def test_same_input_same_ids(self):
        rows = [("s1", "p", "o1"), ("o1", "p", "s1"), ("x", "q", "y")]
        d1 = Dictionary.from_triples(make_triples(rows))
        d2 = Dictionary.from_triples(make_triples(reversed(rows)))
        for name in ("s1", "o1", "x"):
            assert d1.subject_id(URI(name)) == d2.subject_id(URI(name))

    def test_literals_and_uris_do_not_collide(self):
        d = Dictionary.from_triples([
            Triple(URI("s"), URI("p"), Literal("s")),
        ])
        # "s" as URI subject and "s" as literal object are distinct terms
        assert d.num_shared == 0

    def test_literal_datatypes_distinct(self):
        d = Dictionary.from_triples([
            Triple(URI("s"), URI("p"), Literal("5")),
            Triple(URI("s"), URI("p"),
                   Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")),
        ])
        assert d.num_objects == 2


names = st.text(alphabet="abcdefg", min_size=1, max_size=3)
triple_sets = st.sets(st.tuples(names, names, names), min_size=1,
                      max_size=30)


class TestProperties:
    @given(triple_sets)
    def test_appendix_d_invariants(self, rows):
        data = make_triples(rows)
        d = Dictionary.from_triples(data)
        subjects = {t.s for t in data}
        objects = {t.o for t in data}
        shared = subjects & objects
        assert d.num_shared == len(shared)
        assert d.num_subjects == len(subjects)
        assert d.num_objects == len(objects)
        # V_so ids are 1..|Vso| and equal across dimensions
        for term in shared:
            sid = d.subject_id(term)
            assert sid == d.object_id(term)
            assert 1 <= sid <= d.num_shared
        # S-only and O-only ids are above the shared prefix
        for term in subjects - shared:
            assert d.subject_id(term) > d.num_shared
        for term in objects - shared:
            assert d.object_id(term) > d.num_shared

    @given(triple_sets)
    def test_round_trip_every_triple(self, rows):
        data = make_triples(rows)
        d = Dictionary.from_triples(data)
        for triple in data:
            assert d.decode_triple(d.encode_triple(triple)) == triple
