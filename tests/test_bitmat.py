"""2D BitMat tests: fold/unfold against a brute-force set model."""

from hypothesis import given, strategies as st

from repro.bitmat.bitmat import BitMat
from repro.bitmat.bitvec import BitVector

ROWS, COLS = 12, 10
pair_sets = st.sets(st.tuples(st.integers(0, ROWS - 1),
                              st.integers(0, COLS - 1)), max_size=40)
row_masks = st.sets(st.integers(0, ROWS - 1), max_size=ROWS)
col_masks = st.sets(st.integers(0, COLS - 1), max_size=COLS)


def mat(pairs) -> BitMat:
    return BitMat.from_pairs(ROWS, COLS, pairs)


class TestConstruction:
    def test_from_pairs(self):
        m = mat({(1, 2), (1, 3), (4, 0)})
        assert m.count() == 3
        assert m.get_row(1).positions() == [2, 3]
        assert m.get_row(0) is None

    def test_from_sorted_pairs_equals_from_pairs(self):
        pairs = [(0, 1), (0, 5), (2, 2), (7, 0)]
        assert BitMat.from_sorted_pairs(ROWS, COLS, pairs) == mat(set(pairs))

    def test_single_row(self):
        vec = BitVector.from_positions(COLS, [1, 2])
        m = BitMat.single_row(ROWS, COLS, 5, vec)
        assert m.row_ids() == [5]
        assert m.count() == 2

    def test_single_empty_row_is_empty_matrix(self):
        m = BitMat.single_row(ROWS, COLS, 5, BitVector.empty(COLS))
        assert not m

    def test_iter_pairs_round_trip(self):
        pairs = {(1, 2), (3, 4), (3, 5)}
        assert set(mat(pairs).iter_pairs()) == pairs

    def test_iter_rows_sorted(self):
        m = mat({(5, 0), (1, 0), (3, 0)})
        assert [row for row, _ in m.iter_rows()] == [1, 3, 5]


class TestFoldUnfold:
    @given(pair_sets)
    def test_fold_row_is_row_projection(self, pairs):
        expected = {r for r, _ in pairs}
        assert set(mat(pairs).fold("row").positions()) == expected

    @given(pair_sets)
    def test_fold_col_is_col_projection(self, pairs):
        expected = {c for _, c in pairs}
        assert set(mat(pairs).fold("col").positions()) == expected

    @given(pair_sets, row_masks)
    def test_unfold_row_keeps_masked_rows(self, pairs, mask):
        kept = mat(pairs).unfold(BitVector.from_positions(ROWS, mask), "row")
        assert set(kept.iter_pairs()) == {(r, c) for r, c in pairs
                                          if r in mask}

    @given(pair_sets, col_masks)
    def test_unfold_col_keeps_masked_cols(self, pairs, mask):
        kept = mat(pairs).unfold(BitVector.from_positions(COLS, mask), "col")
        assert set(kept.iter_pairs()) == {(r, c) for r, c in pairs
                                          if c in mask}

    @given(pair_sets)
    def test_unfold_with_own_fold_is_identity(self, pairs):
        m = mat(pairs)
        assert m.unfold(m.fold("row"), "row") == m
        assert m.unfold(m.fold("col"), "col") == m

    @given(pair_sets)
    def test_unfold_is_out_of_place(self, pairs):
        m = mat(pairs)
        m.unfold(BitVector.empty(ROWS), "row")
        assert set(m.iter_pairs()) == pairs

    def test_fold_caches_are_consistent(self):
        m = mat({(1, 2), (3, 4)})
        assert m.fold("row") == m.fold("row")
        assert m.fold("col") == m.fold("col")


class TestTranspose:
    @given(pair_sets)
    def test_transpose_swaps_coordinates(self, pairs):
        t = mat(pairs).transpose()
        assert set(t.iter_pairs()) == {(c, r) for r, c in pairs}
        assert (t.num_rows, t.num_cols) == (COLS, ROWS)

    @given(pair_sets)
    def test_double_transpose_is_identity(self, pairs):
        m = mat(pairs)
        assert m.transpose().transpose() == m


class TestStorage:
    @given(pair_sets)
    def test_hybrid_never_exceeds_rle(self, pairs):
        m = mat(pairs)
        assert m.storage_bytes() <= m.rle_bytes()

    def test_empty_matrix_has_zero_storage(self):
        assert mat(set()).storage_bytes() == 0
