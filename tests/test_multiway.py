"""VarMap and multi-way join mechanics (Alg 5.4 internals)."""

import pytest

from repro import BitMatStore, Graph, LBREngine, NULL
from repro.core.gosn import GoSN
from repro.core.results import ResultSet, VarMap, decode_binding
from repro.core.tp import TPState, translate_id
from repro.rdf.terms import Literal, URI, Variable
from repro.sparql import parse_query

from .conftest import EX, triples, uri


def build_states(graph, text):
    pattern = parse_query(text).pattern
    gosn = GoSN.from_pattern(pattern)
    store = BitMatStore.build(graph)
    states = [TPState.load(i, tp, store)
              for i, tp in enumerate(gosn.patterns)]
    return store, gosn, states


GRAPH = Graph(triples(
    ("a", "p", "b"), ("b", "q", "c"), ("a", "r", "d"),
))

QUERY = f"""PREFIX ex: <{EX}>
SELECT * WHERE {{ ?x ex:p ?y . ?y ex:q ?z . ?x ex:r ?w }}"""


class TestTranslateId:
    def test_same_space_passthrough(self):
        assert translate_id(("s", 7), "s", 3) == 7

    def test_cross_space_inside_shared(self):
        assert translate_id(("s", 2), "o", 3) == 2
        assert translate_id(("o", 3), "s", 3) == 3

    def test_cross_space_outside_shared(self):
        assert translate_id(("s", 4), "o", 3) is None

    def test_predicate_never_crosses(self):
        assert translate_id(("p", 1), "s", 99) is None
        assert translate_id(("s", 1), "p", 99) is None


class TestVarMap:
    def test_slots_and_effective(self):
        store, gosn, states = build_states(GRAPH, QUERY)
        varmap = VarMap(states)
        y = Variable("y")
        assert varmap.effective(y) is None
        varmap.bind(0, {Variable("x"): ("s", 1), y: ("o", 2)})
        assert varmap.effective(y) == ("o", 2)

    def test_master_preferred_binding(self):
        store, gosn, states = build_states(GRAPH, QUERY)
        varmap = VarMap(states)
        y = Variable("y")
        # slot 1 binds ?y too, but slot 0 (earlier in sort order) wins
        varmap.bind(1, {y: ("s", 9), Variable("z"): ("o", 1)})
        assert varmap.effective(y) == ("s", 9)
        varmap.bind(0, {Variable("x"): ("s", 1), y: ("o", 2)})
        assert varmap.effective(y) == ("o", 2)

    def test_failed_slot_yields_null(self):
        store, gosn, states = build_states(GRAPH, QUERY)
        varmap = VarMap(states)
        varmap.bind_failed(0)
        assert varmap.effective(Variable("x")) is NULL

    def test_unbind_restores(self):
        store, gosn, states = build_states(GRAPH, QUERY)
        varmap = VarMap(states)
        varmap.bind(0, {Variable("x"): ("s", 1), Variable("y"): ("o", 2)})
        varmap.unbind(0)
        assert varmap.effective(Variable("x")) is None
        assert 0 not in varmap.visited

    def test_constraints_for(self):
        store, gosn, states = build_states(GRAPH, QUERY)
        varmap = VarMap(states)
        varmap.bind(0, {Variable("x"): ("s", 1), Variable("y"): ("o", 2)})
        constraints, mapped, any_null = varmap.constraints_for(1)
        assert mapped and not any_null
        assert Variable("y") in constraints

    def test_variables_sorted(self):
        store, gosn, states = build_states(GRAPH, QUERY)
        varmap = VarMap(states)
        assert varmap.variables() == sorted([Variable("x"), Variable("y"),
                                             Variable("z"), Variable("w")])


class TestVisitPlanning:
    def test_visit_order_is_connected(self):
        from repro.core.multiway import MultiWayJoin
        from repro.core.nullification import GroupPlan
        store, gosn, states = build_states(GRAPH, QUERY)
        plan = GroupPlan(gosn, states)
        join = MultiWayJoin(states, gosn, plan, False, [],
                            store.dictionary, lambda row: None)
        order = join.visit_order
        assert sorted(order) == [0, 1, 2]
        # every later TP shares a variable with an earlier one
        seen_vars = set(states[order[0]].variables())
        for position in order[1:]:
            assert seen_vars & set(states[position].variables())
            seen_vars |= set(states[position].variables())

    def test_depth_sources_point_to_visited(self):
        from repro.core.multiway import MultiWayJoin
        from repro.core.nullification import GroupPlan
        store, gosn, states = build_states(GRAPH, QUERY)
        plan = GroupPlan(gosn, states)
        join = MultiWayJoin(states, gosn, plan, False, [],
                            store.dictionary, lambda row: None)
        visited = set()
        for depth, position in enumerate(join.visit_order):
            for var, source in join.depth_sources[depth]:
                if source is not None:
                    assert source in visited
            visited.add(position)


class TestResultSet:
    def test_project_and_distinct(self):
        rs = ResultSet((Variable("a"), Variable("b")),
                       [(uri("x"), uri("y")), (uri("x"), uri("z"))])
        projected = rs.project([Variable("a")])
        assert projected.rows == [(uri("x"),), (uri("x"),)]
        assert projected.distinct().rows == [(uri("x"),)]

    def test_project_missing_var_gives_null(self):
        rs = ResultSet((Variable("a"),), [(uri("x"),)])
        projected = rs.project([Variable("a"), Variable("zz")])
        assert projected.rows == [(uri("x"), NULL)]

    def test_rows_with_nulls(self):
        rs = ResultSet((Variable("a"), Variable("b")),
                       [(uri("x"), NULL), (uri("x"), uri("y"))])
        assert rs.rows_with_nulls() == 1

    def test_multiset_and_set_views(self):
        rs = ResultSet((Variable("a"),), [(uri("x"),), (uri("x"),)])
        assert rs.as_multiset() == {(uri("x"),): 2}
        assert rs.as_set() == {(uri("x"),)}

    def test_sorted_rows_handles_nulls(self):
        rs = ResultSet((Variable("a"),), [(NULL,), (uri("x"),)])
        assert rs.sorted_rows() == [(uri("x"),), (NULL,)]

    def test_bindings_view(self):
        rs = ResultSet((Variable("a"), Variable("b")),
                       [(uri("x"), NULL)])
        row = next(rs.bindings())
        assert row[Variable("a")] == uri("x")
        assert row[Variable("b")] is NULL

    def test_contains(self):
        rs = ResultSet((Variable("a"),), [(uri("x"),)])
        assert (uri("x"),) in rs


class TestDecodeBinding:
    def test_decode_each_space(self, figure_store):
        dictionary = figure_store.dictionary
        jerry_s = dictionary.subject_id(uri("Jerry"))
        assert decode_binding(("s", jerry_s), dictionary) == uri("Jerry")
        pred = dictionary.predicate_id(uri("hasFriend"))
        assert decode_binding(("p", pred), dictionary) == uri("hasFriend")
        nyc_o = dictionary.object_id(uri("NewYorkCity"))
        assert decode_binding(("o", nyc_o), dictionary) == uri("NewYorkCity")

    def test_decode_none_is_null(self, figure_store):
        assert decode_binding(None, figure_store.dictionary) is NULL
