"""Unit tests for the statistics-fed cost model (repro.plan.cost).

The cost model refines two ordering decisions: ``jvar_key`` becomes a
distinct-binding estimate and ``supernode_key`` a skew-aware expansion
estimate.  These tests pin the estimates against hand-built statistics
so planner behavior is reviewable without running whole queries.
"""

from __future__ import annotations

import pytest

from repro.bitmat.stats import PredicateStats, StoreStats, _histogram
from repro.core.selectivity import SelectivityRanker
from repro.plan.cost import CostRanker, make_ranker
from repro.rdf.terms import URI, Variable
from repro.sparql.ast import TriplePattern

P = URI("http://example.org/p")
Q = URI("http://example.org/q")
A = URI("http://example.org/a")


def pred_stats(pairs: list[tuple[int, int]]) -> PredicateStats:
    """Statistics of one predicate given its sorted (sid, oid) pairs."""
    return StoreStats.collect({1: sorted(pairs)}).predicates[1]


class FakeStore:
    """Just enough of a store for make_ranker: predicate encoding."""

    def __init__(self, pids: dict[URI, int]):
        self._pids = pids

    def encode_term(self, term, position):
        assert position == "p"
        return self._pids.get(term)


class TestDistinctBindingEstimates:
    def test_jvar_key_uses_distinct_counts_not_cardinality(self):
        # 100 triples, but only 4 distinct objects: the object variable
        # is highly selective even though the raw count is large.
        pairs = [(s, s % 4) for s in range(100)]
        stats = StoreStats(predicates={7: pred_stats(pairs)})
        tp = TriplePattern(Variable("s"), P, Variable("o"))
        ranker = CostRanker([tp], [100], stats, (7,))
        assert ranker.jvar_key(Variable("o")) == 4
        assert ranker.jvar_key(Variable("s")) == 100
        # the static heuristic would have keyed both on the count
        static = SelectivityRanker([tp], [100])
        assert static.jvar_key(Variable("o")) == 100

    def test_diagonal_tp_takes_min_of_both_sides(self):
        pairs = [(s, s % 4) for s in range(100)]
        stats = StoreStats(predicates={7: pred_stats(pairs)})
        tp = TriplePattern(Variable("x"), P, Variable("x"))
        ranker = CostRanker([tp], [100], stats, (7,))
        assert ranker.jvar_key(Variable("x")) == 4

    def test_shared_variable_keeps_minimum_estimate(self):
        # ?o appears in two TPs; the tighter estimate wins.
        loose = [(s, o) for s in range(10) for o in range(10)]
        tight = [(s, 0) for s in range(50)]
        stats = StoreStats(predicates={1: pred_stats(loose),
                                       2: pred_stats(tight)})
        tps = [TriplePattern(Variable("s"), P, Variable("o")),
               TriplePattern(Variable("t"), Q, Variable("o"))]
        ranker = CostRanker(tps, [100, 50], stats, (1, 2))
        assert ranker.jvar_key(Variable("o")) == 1


class TestFallbacks:
    def test_ground_position_falls_back_to_count(self):
        pairs = [(s, s % 4) for s in range(100)]
        stats = StoreStats(predicates={7: pred_stats(pairs)})
        tp = TriplePattern(A, P, Variable("o"))
        ranker = CostRanker([tp], [25], stats, (7,))
        assert ranker.jvar_key(Variable("o")) == 25
        assert ranker.supernode_key([0]) == 25

    def test_variable_predicate_falls_back_to_count(self):
        stats = StoreStats(predicates={})
        tp = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        ranker = CostRanker([tp], [33], stats, (None,))
        assert ranker.jvar_key(Variable("s")) == 33
        assert ranker.jvar_key(Variable("p")) == 33
        assert ranker.supernode_key([0]) == 33

    def test_missing_predicate_falls_back_to_count(self):
        stats = StoreStats(predicates={})
        tp = TriplePattern(Variable("s"), P, Variable("o"))
        ranker = CostRanker([tp], [12], stats, (99,))
        assert ranker.jvar_key(Variable("s")) == 12
        assert ranker.supernode_key([0]) == 12


class TestSkewScaling:
    def test_hub_heavy_predicate_costs_more_than_uniform(self):
        # Same cardinality (100), same distinct-subject count (10):
        # uniform fan-out 10 each vs one hub with 91 objects.
        uniform = [(s, o) for s in range(10) for o in range(10)]
        hub = [(0, o) for o in range(91)] + [(s, 0)
                                             for s in range(1, 10)]
        stats = StoreStats(predicates={1: pred_stats(uniform),
                                       2: pred_stats(hub)})
        tps = [TriplePattern(Variable("a"), P, Variable("b")),
               TriplePattern(Variable("c"), Q, Variable("d"))]
        ranker = CostRanker(tps, [100, 100], stats, (1, 2))
        assert ranker.supernode_key([1]) > ranker.supernode_key([0])

    def test_supernode_key_is_cheapest_member(self):
        pairs = [(s, s) for s in range(10)]
        stats = StoreStats(predicates={1: pred_stats(pairs)})
        tps = [TriplePattern(Variable("a"), P, Variable("b")),
               TriplePattern(Variable("c"), P, Variable("d"))]
        ranker = CostRanker(tps, [10, 10], stats, (1, 1))
        assert ranker.supernode_key([0, 1]) == ranker.supernode_key([0])
        assert ranker.supernode_key([]) == 0

    def test_edge_fanout_skew_aware(self):
        # one group of size 8 and eight of size 1: a random edge lands
        # in the big group half the time, so the expected fan-out is
        # far above the average group size (16/9 ≈ 1.8).
        skewed = pred_stats([(0, o) for o in range(8)]
                            + [(s, 0) for s in range(1, 9)])
        assert skewed.edge_fanout("s") > 4.0
        flat = pred_stats([(s, s) for s in range(16)])
        assert flat.edge_fanout("s") == 1.0


class TestMakeRanker:
    TPS = [TriplePattern(Variable("s"), P, Variable("o"))]

    def test_no_stats_yields_static_heuristic(self):
        ranker = make_ranker(self.TPS, [5], None, FakeStore({P: 1}))
        assert type(ranker) is SelectivityRanker
        assert ranker.source == "heuristic"

    def test_stats_yield_cost_ranker(self):
        stats = StoreStats(
            predicates={1: pred_stats([(s, 0) for s in range(5)])})
        ranker = make_ranker(self.TPS, [5], stats, FakeStore({P: 1}))
        assert type(ranker) is CostRanker
        assert ranker.source == "cost"
        assert ranker.jvar_key(Variable("o")) == 1

    def test_unknown_predicate_encodes_to_none(self):
        stats = StoreStats(predicates={})
        ranker = make_ranker(self.TPS, [5], stats, FakeStore({}))
        assert type(ranker) is CostRanker
        assert ranker.jvar_key(Variable("s")) == 5


class TestHistogram:
    def test_log2_buckets(self):
        assert _histogram([1, 1, 2, 3, 4, 7, 8]) == (2, 2, 2, 1)
        assert _histogram([]) == ()

    def test_roundtrip_preserves_estimates(self):
        pairs = [(s, o) for s in range(7) for o in range(s + 1)]
        original = StoreStats(predicates={3: pred_stats(pairs)})
        decoded = StoreStats.from_bytes(original.to_bytes())
        a, b = original.predicates[3], decoded.predicates[3]
        assert a == b
        assert a.edge_fanout("s") == pytest.approx(b.edge_fanout("s"))
