"""GoSN construction and relation tests — the paper's §2 examples."""

import pytest

from repro.core.gosn import GoSN
from repro.exceptions import UnsupportedQueryError
from repro.sparql import parse_query
from repro.sparql.ast import Union


def gosn_of(text: str) -> GoSN:
    return GoSN.from_pattern(parse_query(text).pattern)


#: ((Pa OPT Pb) JOIN (Pc OPT Pd)) OPT (Pe OPT Pf) — Figure 2.1(b).
FIGURE_2_1B = """
SELECT * WHERE {
  { { ?a <p1> ?x OPTIONAL { ?a <p2> ?b } }
    { ?a <p3> ?c OPTIONAL { ?c <p4> ?d } } }
  OPTIONAL { ?a <p5> ?e OPTIONAL { ?e <p6> ?f } }
}"""


@pytest.fixture(scope="module")
def fig() -> GoSN:
    return gosn_of(FIGURE_2_1B)


class TestConstruction:
    def test_six_supernodes(self, fig):
        assert len(fig.supernodes) == 6

    def test_edges_match_figure(self, fig):
        # SNa=0, SNb=1, SNc=2, SNd=3, SNe=4, SNf=5 in build order
        assert fig.uni_edges == {(0, 1), (2, 3), (4, 5), (0, 4)}
        assert fig.bi_edges == {(0, 2)}

    def test_running_example_gosn(self):
        gosn = gosn_of("""
            SELECT * WHERE {
              <Jerry> <hasFriend> ?friend .
              OPTIONAL { ?friend <actedIn> ?sitcom .
                         ?sitcom <location> <NYC> . }
            }""")
        assert len(gosn.supernodes) == 2
        assert gosn.supernodes[0].patterns[0].p == "hasFriend"
        assert len(gosn.supernodes[1].patterns) == 2
        assert gosn.uni_edges == {(0, 1)}

    def test_tp_indexes_are_query_order(self, fig):
        assert [len(sn.tp_indexes) for sn in fig.supernodes] == [1] * 6
        assert fig.sn_of_tp == {i: i for i in range(6)}

    def test_union_rejected(self):
        pattern = parse_query(
            "SELECT * WHERE { { ?a <p> ?b } UNION { ?a <q> ?b } }").pattern
        assert isinstance(pattern, Union)
        with pytest.raises(UnsupportedQueryError):
            GoSN.from_pattern(pattern)

    def test_filters_are_transparent(self):
        gosn = GoSN.from_pattern(parse_query(
            "SELECT * WHERE { ?a <p> ?b FILTER(?b != <x>) "
            "OPTIONAL { ?b <q> ?c } }").pattern)
        assert len(gosn.supernodes) == 2


class TestRelations:
    def test_absolute_masters(self, fig):
        assert fig.absolute_masters() == {0, 2}

    def test_peers(self, fig):
        assert fig.peers_of(0) == {0, 2}
        assert fig.peers_of(2) == {0, 2}
        assert fig.peers_of(1) == {1}

    def test_direct_mastership(self, fig):
        assert fig.is_master(0, 1)
        assert fig.is_master(0, 4)
        assert fig.is_master(4, 5)

    def test_transitive_mastership(self, fig):
        assert fig.is_master(0, 5)  # a -> e -> f

    def test_mastership_through_peers(self, fig):
        # SNc reaches SNb via the bidirectional edge to SNa
        assert fig.is_master(2, 1)
        assert fig.is_master(2, 5)

    def test_slaves_never_master_their_masters(self, fig):
        assert not fig.is_master(1, 0)
        assert not fig.is_master(5, 4)
        assert not fig.is_master(4, 0)

    def test_slaves_of(self, fig):
        assert fig.slaves_of(0) == {1, 3, 4, 5}
        assert fig.slaves_of(4) == {5}

    def test_tp_level_views(self, fig):
        assert fig.tp_is_master(0, 1)
        assert fig.tp_is_peer(0, 2)
        assert fig.tp_in_absolute_master(0)
        assert not fig.tp_in_absolute_master(5)

    def test_peer_groups(self, fig):
        groups = fig.peer_groups()
        assert {frozenset(g) for g in groups} == {
            frozenset({0, 2}), frozenset({1}), frozenset({3}),
            frozenset({4}), frozenset({5})}


class TestPathsAndTransform:
    def test_undirected_path(self, fig):
        assert fig.undirected_path(1, 3) == [1, 0, 2, 3]
        assert fig.undirected_path(5, 2) == [5, 4, 0, 2]

    def test_path_to_self(self, fig):
        assert fig.undirected_path(3, 3) == [3]

    def test_with_bidirectional_converts(self, fig):
        converted = fig.with_bidirectional({(0, 4)})
        assert (0, 4) not in converted.uni_edges
        assert (0, 4) in converted.bi_edges
        assert converted.peers_of(0) == {0, 2, 4}
        # SNe is no longer a slave of SNa
        assert not converted.is_master(0, 4)
        # but SNf still is a slave (via e->f)
        assert converted.is_master(0, 5)

    def test_gosn_is_a_tree(self, fig):
        assert len(fig.uni_edges) + len(fig.bi_edges) == \
            len(fig.supernodes) - 1


class TestAppendixBTransformation:
    def test_figure_b1(self):
        # (Pa OPT Pb) OPT ((Pc OPT Pd) JOIN (Pe OPT Pf)) where Pb and Pf
        # violate WD with Pc over ?j1 (and with each other)
        text = """
        SELECT * WHERE {
          { ?a <pa> ?x OPTIONAL { ?a <pb> ?j1 } }
          OPTIONAL {
            { ?c <pc> ?j1 OPTIONAL { ?c <pd> ?d } }
            { ?c <pe> ?e OPTIONAL { ?e <pf> ?j1 } }
          }
        }"""
        from repro.core.nwd import transform_non_well_designed
        pattern = parse_query(text).pattern
        gosn = GoSN.from_pattern(pattern)
        # SNa=0 SNb=1 SNc=2 SNd=3 SNe=4 SNf=5
        assert gosn.uni_edges == {(0, 1), (2, 3), (4, 5), (0, 2)}
        transformed = transform_non_well_designed(gosn, pattern)
        # the violation paths run b..c and f..c (and b..f), converting
        # a->b, a->c, e->f into bidirectional edges; c->d stays
        assert transformed.uni_edges == {(2, 3)}
        assert transformed.peers_of(0) >= {0, 1, 2, 4, 5}

    def test_well_designed_untouched(self):
        from repro.core.nwd import transform_non_well_designed
        pattern = parse_query(
            "SELECT * WHERE { ?a <p> ?b OPTIONAL { ?b <q> ?c } }").pattern
        gosn = GoSN.from_pattern(pattern)
        assert transform_non_well_designed(gosn, pattern) is gosn
