"""Structural-hash plan-cache keys: alpha-equivalence and collisions.

The ISSUE-3 acceptance criterion: two alpha-equivalent queries —
renamed variables, reformatted text — share one cached physical plan,
while changing any constant, operator, or solution modifier changes
the key.
"""

from __future__ import annotations

import pytest

from repro import BitMatStore, Graph, LBREngine, NaiveEngine
from repro.plan import canonicalize, compile_frontend, compile_logical
from repro.plan.hashing import CANONICAL_PREFIX

from .conftest import EX, FIGURE_3_2, FIGURE_3_2_QUERY, triples


def key_of(text: str) -> str:
    return compile_frontend(text).canonical.key


def q(body: str, head: str = "SELECT *", tail: str = "") -> str:
    return f"PREFIX ex: <{EX}>\n{head} WHERE {{ {body} }}{tail}"


class TestAlphaEquivalence:
    def test_renamed_variables_share_a_key(self):
        original = q("?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c }")
        renamed = q("?x ex:hasFriend ?y . OPTIONAL { ?y ex:actedIn ?z }")
        assert key_of(original) == key_of(renamed)

    def test_whitespace_and_formatting_invariant(self):
        compact = q("?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c }")
        spread = (f"PREFIX ex: <{EX}>\n"
                  "SELECT *\nWHERE {\n"
                  "    ?a   ex:hasFriend   ?b .\n"
                  "    OPTIONAL {\n        ?b ex:actedIn ?c\n    }\n"
                  "}\n")
        assert key_of(compact) == key_of(spread)

    def test_prefix_spelling_invariant(self):
        with_prefix = q("?a ex:actedIn ?b .")
        spelled_out = (f"SELECT * WHERE {{ ?a <{EX}actedIn> ?b . }}")
        assert key_of(with_prefix) == key_of(spelled_out)

    def test_select_list_follows_the_renaming(self):
        original = q("?a ex:hasFriend ?b", head="SELECT ?b")
        renamed = q("?x ex:hasFriend ?y", head="SELECT ?y")
        assert key_of(original) == key_of(renamed)

    def test_swapped_variables_are_equivalent_by_position(self):
        # {a→b, b→a} is a bijection: still alpha-equivalent
        original = q("?a ex:hasFriend ?b .")
        swapped = q("?b ex:hasFriend ?a .")
        assert key_of(original) == key_of(swapped)


class TestKeySensitivity:
    def test_constant_changes_the_key(self):
        assert key_of(q("?s ex:location ex:NewYorkCity .")) != key_of(
            q("?s ex:location ex:LosAngeles ."))

    def test_operator_changes_the_key(self):
        inner = q("?a ex:hasFriend ?b . { ?b ex:actedIn ?c }")
        optional = q("?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c }")
        assert key_of(inner) != key_of(optional)

    def test_modifiers_change_the_key(self):
        base = q("?a ex:actedIn ?b .")
        assert key_of(base) != key_of(q("?a ex:actedIn ?b .",
                                        head="SELECT DISTINCT *"))
        assert key_of(base) != key_of(q("?a ex:actedIn ?b .",
                                        tail=" LIMIT 3"))
        assert key_of(base) != key_of(q("?a ex:actedIn ?b .",
                                        tail=" ORDER BY ?a"))
        assert key_of(base) != key_of(q("?a ex:actedIn ?b .",
                                        head="SELECT ?a"))

    def test_filter_changes_the_key(self):
        base = q("?a ex:actedIn ?b .")
        filtered = q("?a ex:actedIn ?b . FILTER(?a != ex:Larry)")
        assert key_of(base) != key_of(filtered)

    def test_distinct_variable_structure_not_conflated(self):
        # one shared variable vs two distinct variables
        shared = q("?a ex:actedIn ?b . ?a ex:location ?c .")
        distinct = q("?a ex:actedIn ?b . ?d ex:location ?c .")
        assert key_of(shared) != key_of(distinct)


class TestCanonicalization:
    def test_mapping_is_a_bijection(self):
        frontend = compile_frontend(FIGURE_3_2_QUERY)
        form = frontend.canonical
        assert len(form.to_canonical) == len(form.from_canonical)
        for old, new in form.to_canonical.items():
            assert form.from_canonical[new] == old
            assert new.startswith(CANONICAL_PREFIX)

    def test_canonicalize_is_stable(self):
        _, logical = compile_logical(FIGURE_3_2_QUERY)
        assert (canonicalize(logical).key
                == canonicalize(canonicalize(logical).logical).key)


class TestPlanCacheSharing:
    """Alpha-equivalent queries share one cached physical plan."""

    ORIGINAL = f"""PREFIX ex: <{EX}>
        SELECT ?friend ?sitcom WHERE {{
          ex:Jerry ex:hasFriend ?friend .
          OPTIONAL {{ ?friend ex:actedIn ?sitcom .
                      ?sitcom ex:location ex:NewYorkCity . }}
        }}"""
    RENAMED = f"""PREFIX ex: <{EX}>
        SELECT ?pal ?show
        WHERE {{
            ex:Jerry ex:hasFriend ?pal .
            OPTIONAL {{
                ?pal ex:actedIn ?show .
                ?show ex:location ex:NewYorkCity .
            }}
        }}"""

    def _engine(self) -> tuple[LBREngine, Graph]:
        graph = Graph(triples(*FIGURE_3_2))
        return LBREngine(BitMatStore.build(graph)), graph

    def test_renamed_query_hits_the_plan_cache(self):
        engine, _graph = self._engine()
        cold = engine.execute(self.ORIGINAL)
        stats = engine.plan_cache_stats()
        assert stats["misses"] == 1 and stats["size"] == 1
        renamed = engine.execute(self.RENAMED)
        stats = engine.plan_cache_stats()
        assert stats["hits"] == 1, stats
        assert stats["misses"] == 1 and stats["size"] == 1
        # identical rows modulo the column relabeling
        assert cold.variables == ("friend", "sitcom")
        assert renamed.variables == ("pal", "show")
        assert cold.rows == renamed.rows

    def test_renamed_results_match_the_oracle(self):
        engine, graph = self._engine()
        engine.execute(self.ORIGINAL)  # prime the cache
        renamed = engine.execute(self.RENAMED)
        naive = NaiveEngine(graph).execute(self.RENAMED)
        assert renamed.as_multiset() == naive.as_multiset()

    def test_constants_still_split_plans(self):
        engine, _graph = self._engine()
        engine.execute(q("?s ex:location ex:NewYorkCity ."))
        engine.execute(q("?s ex:location ex:LosAngeles ."))
        assert engine.plan_cache_stats()["size"] == 2

    @pytest.mark.parametrize("head,tail", [
        ("SELECT *", ""),
        ("SELECT DISTINCT ?b", ""),
        ("SELECT *", " ORDER BY ?b LIMIT 2"),
    ])
    def test_warm_equals_cold_through_structural_cache(self, head, tail):
        engine, _graph = self._engine()
        text = q("?a ex:hasFriend ?b . OPTIONAL { ?b ex:actedIn ?c }",
                 head=head, tail=tail)
        cold = engine.execute(text)
        warm = engine.execute(text)
        assert warm.variables == cold.variables
        assert warm.rows == cold.rows
