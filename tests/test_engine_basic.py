"""LBR engine tests: BGP-only queries, TP shapes, projection, stats."""

import pytest

from repro import (BitMatStore, Graph, LBREngine, NULL, NaiveEngine,
                   Triple, URI, UnsupportedQueryError)

from .conftest import EX, assert_engines_agree, triples, uri

SOCIAL = Graph(triples(
    ("alice", "knows", "bob"),
    ("alice", "knows", "carol"),
    ("bob", "knows", "carol"),
    ("carol", "knows", "alice"),
    ("alice", "age", "a30"),
    ("bob", "age", "a40"),
    ("alice", "type", "Person"),
    ("bob", "type", "Person"),
    ("carol", "type", "Person"),
))


def q(body: str) -> str:
    return f"PREFIX ex: <{EX}>\nSELECT * WHERE {{ {body} }}"


class TestBGPQueries:
    @pytest.mark.parametrize("body", [
        "?a ex:knows ?b",
        "?a ex:knows ex:carol",
        "ex:alice ex:knows ?b",
        "?a ex:knows ?b . ?b ex:knows ?c",
        "?a ex:knows ?b . ?b ex:knows ?c . ?c ex:knows ?a",
        "?a ex:knows ?b . ?a ex:age ?g",
        "?a ex:type ex:Person . ?a ex:knows ?b . ?b ex:type ex:Person",
        "ex:alice ex:knows ?x . ?x ex:knows ?y . ?y ex:age ?z",
    ])
    def test_matches_oracle(self, body):
        assert_engines_agree(SOCIAL, q(body))

    def test_s_s_join(self):
        assert_engines_agree(SOCIAL, q("?a ex:knows ?b . ?a ex:type ?t"))

    def test_s_o_join(self):
        assert_engines_agree(SOCIAL, q("?a ex:knows ?b . ?c ex:knows ?a"))

    def test_o_o_join(self):
        assert_engines_agree(SOCIAL, q("?a ex:knows ?x . ?b ex:age ?x"))

    def test_self_join_same_variable_twice(self):
        graph = Graph(triples(("n", "loop", "n"), ("n", "loop", "m")))
        assert_engines_agree(graph, q("?x ex:loop ?x"))

    def test_empty_result_unknown_constant(self):
        assert_engines_agree(SOCIAL, q("?a ex:knows ex:nobody"))

    def test_unknown_predicate(self):
        assert_engines_agree(SOCIAL, q("?a ex:missing ?b"))

    def test_variable_predicate_non_join(self):
        assert_engines_agree(SOCIAL, q("ex:alice ?p ?o"))
        assert_engines_agree(SOCIAL, q("?s ?p ex:carol"))

    def test_variable_predicate_two_fixed(self):
        assert_engines_agree(SOCIAL, q("ex:alice ?p ex:bob"))

    def test_ground_triple_present(self):
        assert_engines_agree(SOCIAL, q(
            "ex:alice ex:knows ex:bob . ?a ex:age ?g"))

    def test_ground_triple_absent_empties_result(self):
        assert_engines_agree(SOCIAL, q(
            "ex:alice ex:knows ex:alice . ?a ex:age ?g"))


class TestProjectionAndDistinct:
    def test_projection_subset(self):
        query = (f"PREFIX ex: <{EX}>\n"
                 f"SELECT ?a WHERE {{ ?a ex:knows ?b }}")
        assert_engines_agree(SOCIAL, query)

    def test_projection_keeps_bag_semantics(self):
        store = BitMatStore.build(SOCIAL)
        query = (f"PREFIX ex: <{EX}>\n"
                 f"SELECT ?a WHERE {{ ?a ex:knows ?b }}")
        result = LBREngine(store).execute(query)
        # alice knows two people: ?a = alice appears twice
        assert result.as_multiset()[(uri("alice"),)] == 2

    def test_distinct(self):
        query = (f"PREFIX ex: <{EX}>\n"
                 f"SELECT DISTINCT ?a WHERE {{ ?a ex:knows ?b }}")
        store = BitMatStore.build(SOCIAL)
        result = LBREngine(store).execute(query)
        assert result.as_multiset()[(uri("alice"),)] == 1
        assert_engines_agree(SOCIAL, query)

    def test_projected_variable_not_in_pattern(self):
        query = (f"PREFIX ex: <{EX}>\n"
                 f"SELECT ?a ?zzz WHERE {{ ?a ex:age ?g }}")
        store = BitMatStore.build(SOCIAL)
        result = LBREngine(store).execute(query)
        assert all(row[1] is NULL for row in result)


class TestUnsupported:
    def test_all_variable_tp(self):
        store = BitMatStore.build(SOCIAL)
        with pytest.raises(UnsupportedQueryError):
            LBREngine(store).execute("SELECT * WHERE { ?s ?p ?o }")

    def test_cartesian_product(self):
        store = BitMatStore.build(SOCIAL)
        with pytest.raises(UnsupportedQueryError, match="Cartesian"):
            LBREngine(store).execute(q("?a ex:knows ?b . ?c ex:age ?d"))

    def test_predicate_join_mixing_positions(self):
        store = BitMatStore.build(SOCIAL)
        with pytest.raises(UnsupportedQueryError):
            LBREngine(store).execute(q("ex:alice ?j ?x . ?j ex:knows ?y"))

    def test_predicate_predicate_join_supported(self):
        # P-P joins stay within one id space — supported as an extension
        assert_engines_agree(SOCIAL, q("ex:alice ?p ?x . ex:bob ?p ?y"))


class TestStats:
    def test_stats_populated(self):
        store = BitMatStore.build(SOCIAL)
        engine = LBREngine(store)
        engine.execute(q("?a ex:knows ?b . ?b ex:knows ?c"))
        stats = engine.last_stats
        assert stats.num_results == len(engine.execute(
            q("?a ex:knows ?b . ?b ex:knows ?c")))
        assert stats.initial_triples == 8  # 4 + 4 knows triples
        assert stats.t_total > 0
        assert stats.branches == 1
        assert not stats.best_match_required

    def test_initial_triples_counts_before_pruning(self):
        store = BitMatStore.build(SOCIAL)
        engine = LBREngine(store)
        engine.execute(q("ex:alice ex:knows ?b . ?b ex:age ?g"))
        assert engine.last_stats.initial_triples == 2 + 2
        assert engine.last_stats.triples_after_pruning <= 4


class TestDegenerateQueries:
    def test_empty_pattern_yields_one_empty_row(self):
        store = BitMatStore.build(SOCIAL)
        result = LBREngine(store).execute("SELECT * WHERE { }")
        assert len(result) == 1
        assert result.rows == [()]

    def test_single_ground_triple_present(self):
        store = BitMatStore.build(SOCIAL)
        result = LBREngine(store).execute(
            q("ex:alice ex:knows ex:bob"))
        assert len(result) == 1

    def test_single_ground_triple_absent(self):
        store = BitMatStore.build(SOCIAL)
        result = LBREngine(store).execute(
            q("ex:alice ex:knows ex:zzz"))
        assert len(result) == 0

    def test_empty_graph(self):
        graph = Graph()
        store = BitMatStore.build(graph)
        result = LBREngine(store).execute(q("?a ex:p ?b"))
        assert len(result) == 0
