"""Per-predicate statistics: collection, encoding, format round-trips.

The cost-based ordering pass (:mod:`repro.plan.cost`) trusts these
numbers, so they are pinned exactly: distinct counts, histogram
bucketing, and the skew summary derived from the histogram.  Both
on-disk formats must round-trip the section byte-identically, and
images predating the section must keep loading with statistics absent.
"""

from __future__ import annotations

import pytest

from repro import BitMatStore, StorageError
from repro.bitmat.backend import open_store_bytes
from repro.bitmat.mmapstore import dump_mmap_bytes
from repro.bitmat.persist import dump_store_bytes
from repro.bitmat.stats import PredicateStats, StoreStats
from repro.rdf.graph import Graph
from repro.rdf.terms import URI


@pytest.fixture()
def skewed_store() -> BitMatStore:
    graph = Graph()
    # p1: 7 subjects share 40 objects (fan-out 5..6 each)
    for i in range(40):
        graph.add((URI(f"s{i % 7}"), URI("p1"), URI(f"o{i}")))
    # p2: a hub object with fan-in 10
    for i in range(10):
        graph.add((URI(f"s{i}"), URI("p2"), URI("hub")))
    return BitMatStore.build(graph)


class TestCollection:
    def test_unfrozen_store_has_no_stats(self, skewed_store):
        assert skewed_store.stats() is None

    def test_freeze_collects(self, skewed_store):
        skewed_store.freeze()
        stats = skewed_store.stats()
        assert stats is not None
        p1 = stats.get(1)
        assert (p1.cardinality, p1.distinct_subjects,
                p1.distinct_objects) == (40, 7, 40)
        # 40 pairs over 7 subjects: five groups of 6, two of 5 —
        # all in the log2 bucket [4, 8)
        assert p1.subject_fanout == (0, 0, 7)
        assert p1.object_fanout == (40,)
        p2 = stats.get(2)
        assert (p2.cardinality, p2.distinct_subjects,
                p2.distinct_objects) == (10, 10, 1)
        assert p2.object_fanout == (0, 0, 0, 1)  # one group of 10
        assert stats.get(99) is None

    def test_edge_fanout_is_skew_aware(self, skewed_store):
        skewed_store.freeze()
        stats = skewed_store.stats()
        # p1 subjects each hold ~6 objects: the expected group size of
        # a random edge is the bucket representative (1.5 * 4 = 6)
        assert stats.get(1).edge_fanout("s") == pytest.approx(6.0)
        # every object of p1 has exactly one subject
        assert stats.get(1).edge_fanout("o") == pytest.approx(1.0)
        # p2's hub dominates its object direction
        assert stats.get(2).edge_fanout("o") > stats.get(2).edge_fanout("s")

    def test_empty_store(self):
        stats = StoreStats.collect({})
        assert stats.predicates == {}
        assert StoreStats.from_bytes(stats.to_bytes()).predicates == {}


class TestEncoding:
    def test_round_trip(self, skewed_store):
        skewed_store.freeze()
        stats = skewed_store.stats()
        decoded = StoreStats.from_bytes(stats.to_bytes())
        assert decoded.predicates == dict(stats.predicates)

    def test_rejects_non_ascending_pids(self):
        pred = PredicateStats(1, 1, 1, (1,), (1,))
        payload = StoreStats({2: pred, 1: pred}).to_bytes()
        # the encoder sorts, so craft an out-of-order section by
        # swapping the two single-byte pid fields
        good = StoreStats({1: pred}).to_bytes()
        assert StoreStats.from_bytes(good).predicates  # sanity
        bad = bytearray(payload)
        # payload: count, then records starting with pid varints 1, 2
        first_record = 1
        bad[first_record] = 2
        with pytest.raises(StorageError):
            StoreStats.from_bytes(bytes(bad))

    def test_rejects_distinct_above_cardinality(self):
        stats = StoreStats({1: PredicateStats(1, 5, 1, (1,), (1,))})
        with pytest.raises(StorageError):
            StoreStats.from_bytes(stats.to_bytes())


class TestFormatRoundTrips:
    def test_lbrstore3_round_trip(self, skewed_store):
        skewed_store.freeze()
        image = dump_store_bytes(skewed_store)
        assert image.startswith(b"LBRSTORE3")
        loaded = open_store_bytes(image)
        assert loaded.stats().predicates == dict(
            skewed_store.stats().predicates)

    def test_dump_collects_when_unfrozen(self, skewed_store):
        # `lbr index` saves unfrozen stores; images must still carry
        # statistics so later opens get cost-based ordering
        image = dump_store_bytes(skewed_store)
        assert open_store_bytes(image).stats() is not None

    def test_legacy_lbrstore2_loads_without_stats(self, skewed_store):
        image = dump_store_bytes(skewed_store, include_stats=False)
        assert image.startswith(b"LBRSTORE2")
        loaded = open_store_bytes(image)
        assert loaded.stats() is None
        assert (sorted(loaded.iter_triples())
                == sorted(skewed_store.iter_triples()))

    def test_mmap_v2_round_trip_without_decoding(self, skewed_store):
        skewed_store.freeze()
        image = dump_mmap_bytes(skewed_store)
        loaded = open_store_bytes(image)
        try:
            assert loaded.stats().predicates == dict(
                skewed_store.stats().predicates)
            # statistics live in their own eager section: reading them
            # must not have materialized a single extent
            assert loaded.materializations == 0
        finally:
            loaded.close()

    def test_mmap_v1_loads_without_stats(self, skewed_store):
        """A version-1 image (no statistics section) still opens."""
        import struct
        import zlib

        from repro.bitmat.mmapstore import _HEADER, _STATS_PREFIX

        image = bytearray(dump_mmap_bytes(skewed_store))
        fields = list(_HEADER.unpack(bytes(image[:_HEADER.size])))
        index_off, index_len = fields[11], fields[12]
        # zero the stats section (it becomes uncovered padding) and
        # stamp the header back to version 1
        stats_off = index_off + index_len
        stats_len = struct.unpack(
            "<I", image[stats_off:stats_off + 4])[0]
        image[stats_off:stats_off + _STATS_PREFIX.size + stats_len] = (
            bytes(_STATS_PREFIX.size + stats_len))
        fields[1] = 1
        header = _HEADER.pack(*fields)
        header = header[:-4] + struct.pack("<I", zlib.crc32(header[:-4]))
        image[:_HEADER.size] = header
        loaded = open_store_bytes(bytes(image))
        try:
            assert loaded.stats() is None
            assert (sorted(loaded.iter_triples())
                    == sorted(skewed_store.iter_triples()))
        finally:
            loaded.close()

    def test_overlay_has_no_stats(self, skewed_store):
        from repro.rdf.terms import Triple
        from repro.update.overlay import OverlayStore, TripleDelta

        skewed_store.freeze()
        delta = TripleDelta(
            added=frozenset({Triple(URI("new-s"), URI("p1"),
                                    URI("new-o"))}),
            deleted=frozenset())
        overlay = OverlayStore.build(skewed_store, delta)
        overlay.freeze()
        assert overlay.stats() is None
