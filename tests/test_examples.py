"""The example scripts must run end to end (smaller scales via argv)."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def run_example(name: str, *args: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (SRC, env.get("PYTHONPATH")) if part)
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=300, check=True, env=env)
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "friend=Julia" in out and "sitcom=Seinfeld" in out
        assert "friend=Larry" in out
        assert "minimal" in out

    def test_lubm_analytics(self):
        out = run_example("lubm_analytics.py", "1")
        assert "LUBM — query processing times" in out
        assert "[verified]" in out
        assert "MISMATCH" not in out

    def test_uniprot_proteins(self):
        out = run_example("uniprot_proteins.py")
        assert "aborted_empty=True" in out
        assert "results match oracle: True" in out

    def test_dbpedia_places(self):
        out = run_example("dbpedia_places.py")
        assert "Q1 — populated places" in out
        assert "aborted_empty=True" in out

    def test_plan_explorer(self):
        out = run_example("plan_explorer.py", "LUBM")
        assert "LUBM Q1" in out and "LUBM Q6" in out
        assert "cyclic=True best-match=True" in out    # Q4/Q5
        assert "cyclic=True best-match=False" in out   # Q1-Q3
        out = run_example("plan_explorer.py", "UniProt", "Q2")
        assert "UniProt Q2" in out
