"""PackedBitVector ↔ BitVector equivalence (representation ablation)."""

import pytest
from hypothesis import given, strategies as st

from repro.bitmat.bitvec import BitVector
from repro.bitmat.packed import PackedBitVector

SIZE = 96
position_sets = st.sets(st.integers(0, SIZE - 1), max_size=SIZE)


def pair(positions):
    return (BitVector.from_positions(SIZE, positions),
            PackedBitVector.from_positions(SIZE, positions))


class TestConstruction:
    def test_empty_and_full(self):
        assert not PackedBitVector.empty(8)
        assert PackedBitVector.full(8).count() == 8
        assert PackedBitVector.full(8, start=5).positions() == [5, 6, 7]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PackedBitVector.from_positions(4, [4])
        with pytest.raises(ValueError):
            PackedBitVector(-1)

    @given(position_sets)
    def test_conversion_round_trip(self, positions):
        interval, packed = pair(positions)
        assert PackedBitVector.from_bitvector(interval) == packed
        assert packed.to_bitvector() == interval


class TestEquivalence:
    @given(position_sets, position_sets)
    def test_and(self, a, b):
        ia, pa = pair(a)
        ib, pb = pair(b)
        assert set(pa.and_(pb).positions()) == set(ia.and_(ib).positions())

    @given(position_sets, position_sets)
    def test_or(self, a, b):
        ia, pa = pair(a)
        ib, pb = pair(b)
        assert set(pa.or_(pb).positions()) == set(ia.or_(ib).positions())

    @given(position_sets, position_sets)
    def test_andnot(self, a, b):
        _, pa = pair(a)
        _, pb = pair(b)
        assert set(pa.andnot(pb).positions()) == (a - b)

    @given(position_sets, st.integers(0, SIZE))
    def test_truncate(self, a, limit):
        _, pa = pair(a)
        assert set(pa.truncate(limit).positions()) == {
            p for p in a if p < limit}

    @given(position_sets, position_sets)
    def test_intersects(self, a, b):
        _, pa = pair(a)
        _, pb = pair(b)
        assert pa.intersects(pb) == bool(a & b)

    @given(st.lists(position_sets, max_size=5))
    def test_union_many(self, sets):
        packed = [PackedBitVector.from_positions(SIZE, s) for s in sets]
        expected = set().union(*sets) if sets else set()
        assert set(PackedBitVector.union_many(packed, SIZE)
                   .positions()) == expected

    @given(position_sets)
    def test_count_contains_first(self, a):
        _, packed = pair(a)
        assert packed.count() == len(a)
        assert packed.first() == (min(a) if a else None)
        for position in a:
            assert position in packed

    def test_and_different_sizes_clips(self):
        a = PackedBitVector.from_positions(100, [5, 60, 99])
        b = PackedBitVector.full(10)
        assert a.and_(b).positions() == [5]
        assert a.and_(b).size == 10

    @given(position_sets)
    def test_iter_positions_sorted(self, a):
        _, packed = pair(a)
        assert packed.positions() == sorted(a)
