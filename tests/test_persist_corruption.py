"""Corruption corpus: every on-disk format rejects every mangled image.

One parametrized battery over the four store formats (``LBRSTORE1``,
``LBRSTORE2``, ``LBRSTORE3``, ``LBRMMAP1``): truncations at every
stride, varint bombs, single-bit flips in checksummed regions, and
trailing garbage must all surface as a typed
:class:`~repro.exceptions.StorageError` — never a silent wrong
dataset, never an uncontrolled exception.  Plus the atomicity
regression: a failed save must leave the previous image untouched.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro import BitMatStore, StorageError
from repro.bitmat.backend import open_store_bytes
from repro.bitmat.mmapstore import _EXTENT, _HEADER, dump_mmap_bytes
from repro.bitmat.persist import (_MAGIC, _MAGIC_V1, _MAGIC_V3,
                                  dump_store_bytes)

FORMATS = ["LBRSTORE1", "LBRSTORE2", "LBRSTORE3", "LBRMMAP1"]


def dump_as(store: BitMatStore, fmt: str) -> bytes:
    if fmt == "LBRMMAP1":
        return dump_mmap_bytes(store)
    if fmt == "LBRSTORE3":
        return dump_store_bytes(store)
    # v2 is the v3 body without the statistics section
    payload = dump_store_bytes(store, include_stats=False)
    if fmt == "LBRSTORE1":
        # v1 is the v2 body without the CRC footer, under the old magic
        return _MAGIC_V1 + payload[len(_MAGIC):-4]
    return payload


def rewrite_v2_crc(body: bytes) -> bytes:
    """A v2 image whose CRC genuinely covers *body* — the adversarial
    case where the checksum cannot save the parser."""
    return body + struct.pack("<I", zlib.crc32(body))


def mmap_regions(payload: bytes) -> list[tuple[int, int]]:
    """The checksummed (start, end) intervals of an LBRMMAP1 image.

    Inter-extent padding is deliberately NOT covered by any CRC, so
    bit-flip tests must aim at bytes a reader actually consumes.
    """
    fields = _HEADER.unpack(payload[:_HEADER.size])
    (_, version, _, _, _, _, _, num_predicates, _, dict_off, dict_len,
     index_off, index_len, _, _, _, _) = fields
    regions = [(0, _HEADER.size), (dict_off, dict_off + dict_len),
               (index_off, index_off + index_len)]
    if version >= 2:
        # the statistics section (length/CRC prefix + payload)
        stats_off = index_off + index_len
        stats_len = struct.unpack(
            "<I", payload[stats_off:stats_off + 4])[0]
        regions.append((stats_off, stats_off + 8 + stats_len))
    for pid in range(1, num_predicates + 1):
        record = payload[index_off + (pid - 1) * _EXTENT.size:
                         index_off + pid * _EXTENT.size]
        offset, length, _, _ = _EXTENT.unpack(record)
        if length:
            regions.append((offset, offset + length))
    return regions


def patch_extent(payload: bytes, blob: bytes) -> bytes:
    """Overwrite the first non-empty extent with *blob*, recomputing
    the extent CRC, the index CRC, and the header CRC — corruption the
    checksums vouch for, so the decoder itself must reject it."""
    image = bytearray(payload)
    fields = list(_HEADER.unpack(payload[:_HEADER.size]))
    num_predicates, index_off, index_len = fields[7], fields[11], fields[12]
    for pid in range(1, num_predicates + 1):
        record_off = index_off + (pid - 1) * _EXTENT.size
        offset, length, pair_count, _ = _EXTENT.unpack(
            payload[record_off:record_off + _EXTENT.size])
        if not length:
            continue
        assert len(blob) <= length, "patch must fit the extent"
        image[offset:offset + len(blob)] = blob
        patched = bytes(image[offset:offset + length])
        image[record_off:record_off + _EXTENT.size] = _EXTENT.pack(
            offset, length, pair_count, zlib.crc32(patched))
        break
    index_bytes = bytes(image[index_off:index_off + index_len])
    fields[15] = zlib.crc32(index_bytes)  # index_crc
    header = _HEADER.pack(*fields)
    header = header[:-4] + struct.pack("<I", zlib.crc32(header[:-4]))
    image[:_HEADER.size] = header
    return bytes(image)


def open_and_scan(payload: bytes) -> None:
    """Open an image and force every lazy decode.

    ``LBRMMAP1`` validates header/dictionary/index at open but extent
    bodies only at materialization — damage there must still surface
    as a StorageError, just on first touch instead of at open.
    """
    store = open_store_bytes(payload)
    try:
        list(store.iter_triples())
    finally:
        store.close()


@pytest.fixture(scope="module")
def images(figure_store) -> dict[str, bytes]:
    return {fmt: dump_as(figure_store, fmt) for fmt in FORMATS}


@pytest.mark.parametrize("fmt", FORMATS)
class TestCorruptionCorpus:
    def test_round_trips_before_mangling(self, images, figure_store, fmt):
        store = open_store_bytes(images[fmt])
        assert (sorted(store.iter_triples())
                == sorted(figure_store.iter_triples()))
        store.close()

    def test_every_truncation_is_rejected(self, images, fmt):
        payload = images[fmt]
        # every strict prefix on a stride, plus the boundary cases
        lengths = set(range(0, len(payload), 37))
        lengths.update((1, 8, 9, len(payload) // 2, len(payload) - 1))
        for length in sorted(lengths):
            with pytest.raises(StorageError):
                open_store_bytes(payload[:length])

    def test_trailing_bytes_are_rejected(self, images, fmt):
        for junk in (b"\x00", b"\x00" * 64, b"LBRSTORE2"):
            with pytest.raises(StorageError):
                open_store_bytes(images[fmt] + junk)

    def test_varint_bomb_is_rejected(self, images, fmt):
        """A run of continuation bits must die at the 10-byte cap, not
        decode into an unbounded integer."""
        bomb = b"\xff" * 11
        if fmt == "LBRSTORE1":
            payload = _MAGIC_V1 + bomb
        elif fmt == "LBRSTORE2":
            # recompute the CRC so only the varint cap can object
            payload = rewrite_v2_crc(_MAGIC + bomb)
        elif fmt == "LBRSTORE3":
            payload = rewrite_v2_crc(_MAGIC_V3 + bomb)
        else:
            payload = patch_extent(images[fmt], bomb)
        with pytest.raises(StorageError) as excinfo:
            open_and_scan(payload)
        assert "varint" in str(excinfo.value)

    def test_bit_flips_in_checksummed_bytes_are_rejected(self, images,
                                                         fmt):
        payload = images[fmt]
        if fmt == "LBRSTORE1":
            pytest.skip("v1 has no checksum; its parser catches only "
                        "structural damage (covered by the other tests)")
        if fmt in ("LBRSTORE2", "LBRSTORE3"):
            positions = range(0, len(payload), 101)
        else:
            positions = [start + step
                         for start, end in mmap_regions(payload)
                         for step in range(0, end - start,
                                           max(1, (end - start) // 3))]
        for position in positions:
            mangled = bytearray(payload)
            mangled[position] ^= 0x04
            with pytest.raises(StorageError):
                open_and_scan(bytes(mangled))


class TestCraftedMmapCorruption:
    """Damage the checksums cannot catch (they were recomputed)."""

    def test_undeclared_pairs_in_extent(self, images):
        # an extent whose varint stream decodes fine but disagrees with
        # the index's pair_count
        payload = patch_extent(images["LBRMMAP1"],
                               bytes([1, 0, 0]))  # count=1, pair (0,0)
        with pytest.raises(StorageError):
            open_and_scan(payload)

    def test_file_length_mismatch(self, images):
        payload = bytearray(images["LBRMMAP1"])
        fields = list(_HEADER.unpack(bytes(payload[:_HEADER.size])))
        fields[13] += 4096  # file_len
        header = _HEADER.pack(*fields)
        header = header[:-4] + struct.pack("<I", zlib.crc32(header[:-4]))
        payload[:_HEADER.size] = header
        with pytest.raises(StorageError):
            open_store_bytes(bytes(payload))

    def test_out_of_bounds_extent(self, images):
        payload = bytearray(images["LBRMMAP1"])
        fields = list(_HEADER.unpack(bytes(payload[:_HEADER.size])))
        num_predicates, index_off, index_len = (fields[7], fields[11],
                                                fields[12])
        for pid in range(1, num_predicates + 1):
            record_off = index_off + (pid - 1) * _EXTENT.size
            offset, length, pair_count, crc = _EXTENT.unpack(
                bytes(payload[record_off:record_off + _EXTENT.size]))
            if not length:
                continue
            payload[record_off:record_off + _EXTENT.size] = _EXTENT.pack(
                fields[13] * 2, length, pair_count, crc)  # past the end
            break
        index_bytes = bytes(payload[index_off:index_off + index_len])
        fields[15] = zlib.crc32(index_bytes)
        header = _HEADER.pack(*fields)
        header = header[:-4] + struct.pack("<I", zlib.crc32(header[:-4]))
        payload[:_HEADER.size] = header
        with pytest.raises(StorageError):
            open_store_bytes(bytes(payload))


class TestAtomicSave:
    def failing_replace(self, monkeypatch):
        from repro import fsio

        def boom(self, source, destination):
            raise OSError("simulated rename failure")

        monkeypatch.setattr(fsio.RealFS, "replace", boom)

    @pytest.mark.parametrize("saver", ["save_store", "save_mmap_store"])
    def test_failed_save_leaves_previous_image_intact(self, figure_store,
                                                      tmp_path,
                                                      monkeypatch, saver):
        from repro.bitmat.mmapstore import save_mmap_store
        from repro.bitmat.persist import save_store

        save = {"save_store": save_store,
                "save_mmap_store": save_mmap_store}[saver]
        path = str(tmp_path / "image.bin")
        save(figure_store, path)
        with open(path, "rb") as handle:
            before = handle.read()
        self.failing_replace(monkeypatch)
        with pytest.raises(OSError):
            save(figure_store, path)
        with open(path, "rb") as handle:
            assert handle.read() == before
        store = open_store_bytes(before, source=path)
        assert store.num_triples == figure_store.num_triples
        store.close()
