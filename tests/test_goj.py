"""GoT/GoJ construction, acyclicity, and tree traversal tests (§3.1)."""

from hypothesis import given, strategies as st

from repro.core.goj import (GoJ, GoT, get_tree, join_variables,
                            pattern_variables)
from repro.rdf.terms import URI, Variable
from repro.sparql.ast import TriplePattern


def tp(s, p, o) -> TriplePattern:
    def term(x):
        return Variable(x[1:]) if x.startswith("?") else URI(x)
    return TriplePattern(term(s), term(p), term(o))


# the running example: Figure 3.3
RUNNING = [tp("Jerry", "hasFriend", "?friend"),
           tp("?friend", "actedIn", "?sitcom"),
           tp("?sitcom", "location", "NYC")]


class TestJoinVariables:
    def test_running_example(self):
        assert join_variables(RUNNING) == {Variable("friend"),
                                           Variable("sitcom")}

    def test_single_occurrence_is_not_jvar(self):
        patterns = [tp("?a", "p", "?b"), tp("?b", "q", "?c")]
        assert join_variables(patterns) == {Variable("b")}

    def test_same_tp_twice_counts(self):
        assert join_variables([tp("?x", "p", "?x")]) == {Variable("x")}

    def test_pattern_variables_preserves_duplicates(self):
        assert pattern_variables(tp("?x", "p", "?x")) == [Variable("x"),
                                                          Variable("x")]


class TestGoT:
    def test_running_example_edges(self):
        got = GoT.build(RUNNING)
        assert got.adjacency[0] == {1}
        assert got.adjacency[1] == {0, 2}
        assert got.is_connected()
        assert not got.is_cyclic()

    def test_disconnected_cartesian(self):
        got = GoT.build([tp("?a", "p", "?b"), tp("?c", "q", "?d"),
                         tp("?a", "r", "?b")])
        assert not got.is_connected()

    def test_triangle_is_cyclic(self):
        got = GoT.build([tp("?a", "p", "?b"), tp("?b", "q", "?c"),
                         tp("?c", "r", "?a")])
        assert got.is_cyclic()

    def test_two_tps_sharing_two_vars_is_redundant_cycle(self):
        got = GoT.build([tp("?a", "p", "?b"), tp("?a", "q", "?b")])
        assert got.is_cyclic()

    def test_star_join_clique_not_flagged_by_simple_edges(self):
        # three TPs sharing one var: GoT clique, but the shared-jvars
        # multigraph view still reports the (redundant) cycle
        got = GoT.build([tp("?a", "p", "?x"), tp("?a", "q", "?y"),
                         tp("?a", "r", "?z")])
        assert got.is_cyclic()  # clique of 3 on ?a


class TestGoJ:
    def test_running_example(self):
        goj = GoJ.build(RUNNING)
        assert goj.nodes == {Variable("friend"), Variable("sitcom")}
        assert goj.adjacency[Variable("friend")] == {Variable("sitcom")}
        assert not goj.is_cyclic()

    def test_triangle_cyclic(self):
        goj = GoJ.build([tp("?a", "p", "?b"), tp("?b", "q", "?c"),
                         tp("?c", "r", "?a")])
        assert goj.is_cyclic()

    def test_parallel_edges_cyclic(self):
        # two TPs each contributing an ?a—?b edge: multigraph cycle
        goj = GoJ.build([tp("?a", "p", "?b"), tp("?a", "q", "?b")])
        assert goj.is_cyclic()

    def test_star_join_acyclic(self):
        goj = GoJ.build([tp("?a", "p", "?b"), tp("?a", "q", "?c"),
                         tp("?a", "r", "?d"), tp("?b", "s", "x")])
        # jvars: a, b; single edge a—b
        assert not goj.is_cyclic()

    def test_lubm_q4_triangle_cyclic(self):
        patterns = [tp("?x", "worksFor", "dept"), tp("?x", "type", "Prof"),
                    tp("?y", "advisor", "?x"), tp("?x", "teacherOf", "?z"),
                    tp("?y", "takesCourse", "?z")]
        assert GoJ.build(patterns).is_cyclic()

    @given(st.integers(2, 8))
    def test_lemma_3_2_path_queries(self, length):
        """Acyclic GoT (a path of TPs) implies acyclic GoJ."""
        patterns = [tp(f"?v{i}", f"p{i}", f"?v{i+1}")
                    for i in range(length)]
        assert not GoT.build(patterns).is_cyclic()
        assert not GoJ.build(patterns).is_cyclic()


class TestTrees:
    def test_rooted_tree_orders(self):
        goj = GoJ.build([tp("?a", "p", "?b"), tp("?b", "q", "?c"),
                         tp("?b", "r", "?d"), tp("?a", "t", "x"),
                         tp("?a", "t", "y"), tp("?c", "u", "x"),
                         tp("?c", "u", "y"), tp("?d", "w", "x"),
                         tp("?d", "w", "y")])
        tree = get_tree(goj, goj.nodes, Variable("a"))
        assert tree.roots == [Variable("a")]
        top_down = tree.top_down()
        bottom_up = tree.bottom_up()
        assert top_down[0] == Variable("a")
        assert bottom_up[-1] == Variable("a")
        assert set(top_down) == goj.nodes
        # children always after parents in top_down
        assert top_down.index(Variable("b")) < top_down.index(Variable("c"))

    def test_induced_subtree(self):
        goj = GoJ.build([tp("?a", "p", "?b"), tp("?b", "q", "?c")])
        tree = get_tree(goj, {Variable("b"), Variable("c")}, Variable("b"))
        assert tree.order == [Variable("b"), Variable("c")]

    def test_disconnected_subset_still_covered(self):
        goj = GoJ.build([tp("?a", "p", "?b"), tp("?b", "q", "?c")])
        tree = get_tree(goj, {Variable("a"), Variable("c")}, Variable("a"))
        assert set(tree.order) == {Variable("a"), Variable("c")}
        assert len(tree.roots) == 2

    def test_root_must_be_in_subset(self):
        import pytest
        goj = GoJ.build(RUNNING)
        with pytest.raises(ValueError):
            get_tree(goj, {Variable("friend")}, Variable("sitcom"))
