"""Delta overlays and the live store: visibility, compaction, recovery."""

import pytest

from repro import BitMatStore, Graph, LBREngine, Triple, URI
from repro.rdf.terms import Literal
from repro.update import (LiveConfig, LiveGraphStore, MemFS, OverlayStore,
                          TripleDelta)
from repro.update.overlay import SharedRegionViolation, store_has_triple


def t(s: str, p: str, o: str) -> Triple:
    return Triple(URI(f"http://x/{s}"), URI(f"http://x/{p}"),
                  URI(f"http://x/{o}"))


def triple_key(triple: Triple):
    return (triple.s.n3, triple.p.n3, triple.o.n3)


def visible_triples(store: BitMatStore) -> list:
    return sorted(store.iter_triples(), key=triple_key)


BASE = [t("a", "p", "b"), t("b", "p", "c"), t("a", "q", "c"),
        t("d", "q", "a")]


def build_base() -> BitMatStore:
    store = BitMatStore.build(Graph(BASE))
    store.freeze()
    return store


class TestTripleDelta:
    def test_delete_then_readd_is_a_noop(self):
        base = build_base()
        delta = TripleDelta.empty()
        delta = delta.apply_batch((), (BASE[0],),
                                  lambda x: store_has_triple(base, x))
        delta = delta.apply_batch((BASE[0],), (),
                                  lambda x: store_has_triple(base, x))
        assert delta.is_empty()

    def test_add_then_delete_is_a_noop(self):
        base = build_base()
        new = t("x", "p", "y")
        delta = TripleDelta.empty()
        delta = delta.apply_batch((new,), (),
                                  lambda x: store_has_triple(base, x))
        delta = delta.apply_batch((), (new,),
                                  lambda x: store_has_triple(base, x))
        assert delta.is_empty()

    def test_same_batch_delete_then_add_keeps_the_triple(self):
        base = build_base()
        delta = TripleDelta.empty().apply_batch(
            (BASE[0],), (BASE[0],),
            lambda x: store_has_triple(base, x))
        assert delta.is_empty()  # delete of base + re-add = no net change

    def test_noop_mutations_do_not_grow_the_delta(self):
        base = build_base()
        delta = TripleDelta.empty().apply_batch(
            (BASE[0],), (t("nope", "p", "nope"),),
            lambda x: store_has_triple(base, x))
        assert delta.size == 0


class TestOverlayStore:
    def equivalent(self, adds, deletes):
        """Overlay visible set == rebuilt-from-scratch store."""
        base = build_base()
        delta = TripleDelta.empty().apply_batch(
            adds, deletes, lambda x: store_has_triple(base, x))
        overlay = OverlayStore.build(base, delta)
        overlay.freeze()
        expected = (set(BASE) - set(deletes)) | set(adds)
        rebuilt = BitMatStore.build(Graph(expected))
        assert visible_triples(overlay) == visible_triples(rebuilt)
        return overlay, rebuilt

    def test_pure_adds(self):
        # new subjects stay subjects, new objects stay objects — the
        # base shared region {a, b} still covers every two-sided term
        self.equivalent([t("a", "p", "c"), t("d", "p", "b")], [])

    def test_pure_deletes(self):
        self.equivalent([], [BASE[0], BASE[3]])

    def test_mixed_batch(self):
        self.equivalent([t("d", "p", "c")], [BASE[1]])

    def test_fresh_terms_get_extension_ids(self):
        base = build_base()
        fresh = Triple(URI("http://x/new1"), URI("http://x/newp"),
                       Literal("42", datatype="http://x/int"))
        delta = TripleDelta.empty().apply_batch(
            (fresh,), (), lambda x: store_has_triple(base, x))
        overlay = OverlayStore.build(base, delta)
        assert store_has_triple(overlay, fresh)
        sid = overlay.dictionary.subject_id(fresh.s)
        assert sid is not None and sid > base.num_subjects

    def test_queries_match_rebuilt_store(self):
        overlay, rebuilt = self.equivalent(
            [t("b", "q", "a"), t("d", "p", "b")], [BASE[2]])
        query = ("SELECT ?x ?y WHERE { ?x <http://x/p> ?z . "
                 "?z <http://x/p> ?y . }")
        left = LBREngine(overlay).execute(query)
        right = LBREngine(rebuilt).execute(query)
        assert left.as_multiset() == right.as_multiset()

    def test_shared_region_violation_raises(self):
        # "c" is object-only in the base; adding an edge out of it puts
        # it on both sides, outside the frozen shared region
        base = build_base()
        delta = TripleDelta.empty().apply_batch(
            (t("c", "p", "a"),), (),
            lambda x: store_has_triple(base, x))
        with pytest.raises(SharedRegionViolation):
            OverlayStore.build(base, delta)


class TestLiveGraphStore:
    def open_live(self, fs=None, **kwargs):
        fs = fs or MemFS()
        live = LiveGraphStore.open(
            "/live", fs=fs, initial=Graph(BASE),
            config=LiveConfig(compact_threshold=None, background=False),
            **kwargs)
        return live, fs

    def test_apply_batch_is_visible_immediately(self):
        live, _ = self.open_live()
        live.apply_batch((t("a", "p", "z"),), (BASE[0],))
        expected = sorted((set(BASE) - {BASE[0]}) | {t("a", "p", "z")},
                          key=triple_key)
        assert visible_triples(live.current_store()) == expected
        live.close()

    def test_checkpoint_on_shared_region_violation(self):
        live, _ = self.open_live()
        summary = live.apply_batch((t("c", "p", "a"),), ())
        assert summary["checkpointed"]
        assert t("c", "p", "a") in set(live.current_store().iter_triples())
        live.close()

    def test_compaction_preserves_state_and_resets_delta(self):
        live, _ = self.open_live()
        live.apply_batch((t("a", "p", "z"),), (BASE[1],))
        before = visible_triples(live.current_store())
        assert live.compact()
        assert visible_triples(live.current_store()) == before
        assert live.stats()["delta_size"] == 0
        live.close()

    def test_recovery_replays_the_wal(self):
        live, fs = self.open_live()
        live.apply_batch((t("a", "p", "z"),), ())
        live.apply_batch((), (BASE[0],))
        state = visible_triples(live.current_store())
        last_seq = live.last_seq
        live.close()
        reopened = LiveGraphStore.open(
            "/live", fs=fs,
            config=LiveConfig(compact_threshold=None, background=False))
        assert visible_triples(reopened.current_store()) == state
        assert reopened.last_seq == last_seq
        reopened.close()

    def test_sequence_continues_after_compaction(self):
        live, _ = self.open_live()
        live.apply_batch((t("a", "p", "z"),), ())
        assert live.compact()
        summary = live.apply_batch((t("a", "p", "w"),), ())
        assert summary["seq"] == 2
        live.close()

    def test_on_publish_fires_per_commit(self):
        published = []
        live, _ = self.open_live()
        live.on_publish = published.append
        live.apply_batch((t("a", "p", "z"),), ())
        live.apply_batch((t("a", "p", "w"),), ())
        assert len(published) == 2
        assert t("a", "p", "w") in set(published[-1].iter_triples())
        live.close()

    def test_closed_store_refuses_writes(self):
        from repro.exceptions import StorageError
        live, _ = self.open_live()
        live.close()
        with pytest.raises(StorageError):
            live.apply_batch((t("a", "p", "z"),), ())
