"""Pruning tests: Example-1, minimality (Lemma 3.3), soundness."""

import pytest

from repro import BitMatStore, Graph, LBREngine, NaiveEngine, NULL
from repro.core.goj import GoJ
from repro.core.gosn import GoSN
from repro.core.jvar_order import get_jvar_order
from repro.core.prune import (active_prune, clustered_semi_join,
                              prune_triples, semi_join)
from repro.core.selectivity import SelectivityRanker
from repro.core.tp import TPState
from repro.sparql import parse_query

from .conftest import (EX, FIGURE_3_2, FIGURE_3_2_QUERY, triples, uri)


def load_states(graph, text):
    pattern = parse_query(text).pattern
    gosn = GoSN.from_pattern(pattern)
    goj = GoJ.build(gosn.patterns)
    store = BitMatStore.build(graph)
    counts = [store.count_matching(
        None if hasattr(tp.s, "n3") and tp.s.n3.startswith("?") else
        store.encode_term(tp.s, "s"), None, None) for tp in gosn.patterns]
    ranker = SelectivityRanker(gosn.patterns,
                               [store.num_triples] * len(gosn.patterns))
    order_bu, order_td = get_jvar_order(gosn, goj, ranker)
    states = [TPState.load(i, tp, store) for i, tp in
              enumerate(gosn.patterns)]
    return store, gosn, states, order_bu, order_td


QUERY = f"""
PREFIX ex: <{EX}>
SELECT * WHERE {{
  ex:Jerry ex:hasFriend ?friend .
  OPTIONAL {{ ?friend ex:actedIn ?sitcom .
              ?sitcom ex:location ex:NewYorkCity . }}
}}"""


class TestExample1:
    """Example-1 of §3.1 on the Figure 3.2 data."""

    def test_pruning_reaches_minimality(self, figure_graph):
        store, gosn, states, obu, otd = load_states(figure_graph, QUERY)
        assert [s.count() for s in states] == [2, 5, 1]
        prune_triples(obu, otd, gosn, states, store.num_shared)
        # paper: tp1 keeps both friends, tp2 reduces to the single
        # (:Julia :actedIn :Seinfeld) triple, tp3 keeps :Seinfeld
        assert [s.count() for s in states] == [2, 1, 1]

    def test_semi_join_direction(self, figure_graph):
        store, gosn, states, *_ = load_states(figure_graph, QUERY)
        tp1, tp2, _ = states
        friend = next(iter(set(tp1.variables()) & set(tp2.variables())))
        semi_join(friend, slave=tp2, master=tp1,
                  num_shared=store.num_shared)
        # slave loses non-friend actors; master unchanged
        assert tp2.count() == 5
        assert tp1.count() == 2

    def test_clustered_semi_join_ripple(self, figure_graph):
        store, gosn, states, *_ = load_states(figure_graph, QUERY)
        _, tp2, tp3 = states
        sitcom = next(iter(set(tp2.variables()) & set(tp3.variables())))
        clustered_semi_join(sitcom, [tp2, tp3], store.num_shared)
        # only sitcoms with a NYC location survive in tp2
        assert tp2.count() == 1
        assert tp3.count() == 1

    def test_master_never_pruned_by_slave(self, figure_graph):
        store, gosn, states, obu, otd = load_states(figure_graph, QUERY)
        prune_triples(obu, otd, gosn, states, store.num_shared)
        assert states[0].count() == 2  # both friends kept despite Larry
        # having no NYC sitcom


class TestMinimalityLemma33:
    """After pruning an acyclic WD query, every surviving triple
    contributes to some final result (Definition 3.2)."""

    CASES = [
        QUERY,
        f"""PREFIX ex: <{EX}>
        SELECT * WHERE {{
          ?friend ex:actedIn ?sitcom .
          OPTIONAL {{ ?sitcom ex:location ?where . }}
        }}""",
        f"""PREFIX ex: <{EX}>
        SELECT * WHERE {{
          ex:Jerry ex:hasFriend ?friend .
          OPTIONAL {{ ?friend ex:actedIn ?sitcom .
                      OPTIONAL {{ ?sitcom ex:location ?where . }} }}
        }}""",
    ]

    @pytest.mark.parametrize("query", CASES)
    def test_surviving_triples_appear_in_results(self, figure_graph, query):
        store, gosn, states, obu, otd = load_states(figure_graph, query)
        prune_triples(obu, otd, gosn, states, store.num_shared)
        results = NaiveEngine(figure_graph).execute(query)
        rows = list(results.bindings())
        for state in states:
            tp = state.pattern
            for bindings in state.enumerate({}):
                decoded = {var: _decode(store, binding)
                           for var, binding in bindings.items()}
                assert any(all(row.get(var) == value
                               for var, value in decoded.items())
                           for row in rows), (
                    f"triple {decoded} of {tp} survived pruning but "
                    f"matches no result")


def _decode(store, binding):
    space, value = binding
    if space == "s":
        return store.dictionary.subject_term(value)
    if space == "o":
        return store.dictionary.object_term(value)
    return store.dictionary.predicate_term(value)


class TestPruningSoundness:
    """Pruning must never change query answers (vs unpruned engine)."""

    QUERIES = [
        QUERY,
        f"""PREFIX ex: <{EX}>
        SELECT * WHERE {{
          ?a ex:hasFriend ?b .
          OPTIONAL {{ ?b ex:actedIn ?c . }}
          OPTIONAL {{ ?b ex:location ?d . }}
        }}""",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_prune_on_off_same_results(self, figure_graph, query):
        store = BitMatStore.build(figure_graph)
        with_prune = LBREngine(store, enable_prune=True).execute(query)
        without = LBREngine(store, enable_prune=False).execute(query)
        assert with_prune.as_multiset() == without.as_multiset()

    @pytest.mark.parametrize("query", QUERIES)
    def test_active_prune_on_off_same_results(self, figure_graph, query):
        store = BitMatStore.build(figure_graph)
        on = LBREngine(store, enable_active_prune=True).execute(query)
        off = LBREngine(store, enable_active_prune=False).execute(query)
        assert on.as_multiset() == off.as_multiset()


class TestAbortCheck:
    def test_abort_fires_on_empty_absolute_master(self):
        graph = Graph(triples(("a", "knows", "b"), ("x", "likes", "y")))
        query = f"""PREFIX ex: <{EX}>
        SELECT * WHERE {{
          ?a ex:knows ?b . ?b ex:knows ?c .
          OPTIONAL {{ ?c ex:likes ?d . }}
        }}"""
        store = BitMatStore.build(graph)
        engine = LBREngine(store)
        result = engine.execute(query)
        assert len(result) == 0
        assert engine.last_stats.aborted_empty
