"""Crash-at-every-point recovery property for the live store.

The flagship robustness gate: one update scenario (open, a stream of
batches, a compaction in the middle) is first run un-faulted against a
counting filesystem to learn how many filesystem operations it issues,
then re-run once per operation index with a simulated crash injected
at exactly that op — in both survivor modes (``durable``: only
explicitly fsynced bytes survive, the strict model; ``all``: the page
cache also survives).  After every crash, recovery must yield exactly
one of the two legal states — all acknowledged batches applied, plus
optionally the single in-flight batch — never a torn or merged state.

``CRASH_SEED`` selects the scenario (graph + batch stream); CI runs a
small seed matrix so the covered schedules grow without the suite
slowing down.
"""

import os
import random

from repro import Graph
from repro.fuzz.graphgen import (GraphSpec, generate_graph,
                                 generate_update_batches)
from repro.update import (FaultPlan, FaultyFS, LiveConfig, LiveGraphStore,
                          MemFS, SimulatedCrash)

SEED = int(os.environ.get("CRASH_SEED", "0"))

LIVE_DIR = "/live"

CONFIG = LiveConfig(compact_threshold=None, background=False)


def build_scenario(seed: int):
    """Deterministic (initial graph, batch stream) for one seed."""
    rng = random.Random(seed)
    graph, _vocab = generate_graph(
        GraphSpec(shape=rng.choice(("uniform", "star", "clustered")),
                  triples=20, num_entities=8, num_predicates=3),
        rng.getrandbits(32))
    batches = generate_update_batches(tuple(graph), rng,
                                      max_batches=3, batch_size=5)
    return graph, batches


def expected_states(graph: Graph, batches) -> list:
    """Visible triple set after 0..n committed batches."""
    states = [frozenset(graph)]
    for adds, deletes in batches:
        states.append(frozenset((states[-1] - set(deletes))
                                | set(adds)))
    return states


def run_scenario(fs, graph: Graph, batches, compact_after: int):
    """Run the whole scenario; returns #batches acknowledged."""
    acked = 0
    live = LiveGraphStore.open(LIVE_DIR, fs=fs, initial=graph,
                               config=CONFIG)
    try:
        for index, (adds, deletes) in enumerate(batches):
            live.apply_batch(adds, deletes)
            acked = index + 1
            if index + 1 == compact_after:
                live.compact()
        live.compact()
    finally:
        try:
            live.close()
        except Exception:
            pass
    return acked


def triple_set(store) -> frozenset:
    return frozenset(store.iter_triples())


class TestCrashAtEveryPoint:
    def test_every_crash_point_recovers_to_a_committed_state(self):
        graph, batches = build_scenario(SEED)
        assert batches, "scenario generated no batches"
        states = expected_states(graph, batches)
        compact_after = max(1, len(batches) // 2)

        # learn the op schedule from one clean run
        probe = FaultyFS(MemFS(), FaultPlan())
        run_scenario(probe, graph, batches, compact_after)
        total_ops = probe.op_count
        assert total_ops > 20

        checked = 0
        for mode in ("durable", "all"):
            for crash_at in range(1, total_ops + 1):
                memfs = MemFS()
                faulty = FaultyFS(memfs, FaultPlan(crash_at=crash_at))
                try:
                    run_scenario(faulty, graph, batches, compact_after)
                except SimulatedCrash as crash:
                    assert crash.op_index == crash_at
                else:
                    continue  # crash point past the scenario's end
                survivor = memfs.after_crash(mode)
                recovered = LiveGraphStore.open(LIVE_DIR, fs=survivor,
                                                initial=graph,
                                                config=CONFIG)
                got = triple_set(recovered.current_store())
                recovered.close()
                legal = set(states)
                assert got in legal, (
                    f"seed={SEED} mode={mode} crash_at={crash_at}: "
                    f"recovered {len(got)} triples matching no "
                    f"committed state")
                checked += 1
        assert checked > 0

    def test_acknowledged_batches_survive_durable_crashes(self):
        """Durability direction: an acked batch is never rolled back."""
        graph, batches = build_scenario(SEED)
        states = expected_states(graph, batches)
        probe = FaultyFS(MemFS(), FaultPlan())
        run_scenario(probe, graph, batches, len(batches) + 1)
        total_ops = probe.op_count

        for crash_at in range(1, total_ops + 1):
            memfs = MemFS()
            faulty = FaultyFS(memfs, FaultPlan(crash_at=crash_at))
            acked = [0]

            def run(fs, tally=acked):
                live = LiveGraphStore.open(LIVE_DIR, fs=fs,
                                           initial=graph, config=CONFIG)
                for index, (adds, deletes) in enumerate(batches):
                    live.apply_batch(adds, deletes)
                    tally[0] = index + 1
                live.compact()
                live.close()

            try:
                run(faulty)
            except SimulatedCrash:
                pass
            else:
                continue
            survivor = memfs.after_crash("durable")
            recovered = LiveGraphStore.open(LIVE_DIR, fs=survivor,
                                            initial=graph, config=CONFIG)
            got = triple_set(recovered.current_store())
            recovered.close()
            # every acknowledged batch must be present: the state must
            # be one committed at-or-after the last acked batch
            legal = set(states[acked[0]:acked[0] + 2])
            assert got in legal, (
                f"seed={SEED} crash_at={crash_at}: acked={acked[0]} "
                "but recovery lost or invented a batch")
