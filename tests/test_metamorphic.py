"""Metamorphic guards over the full example-query suites.

Two properties every Appendix E template query must satisfy on its
generated dataset, regardless of engine internals:

* **plan-cache warm ≡ cold** — a repeated execution served from the
  compiled-plan cache must return the *same rows in the same order* as
  a cold engine (the §5 invariant of DESIGN.md; guards the
  ``PhysicalPlan`` reuse under the structural-hash cache keys);
* **pruning ablation invariance** — ``enable_prune=True`` and
  ``False`` (and disabled active pruning) must agree bag-exactly:
  Algorithm 3.2 is an optimization, never a semantics change.

These complement the per-case checks the fuzz harness runs on random
queries: here the queries are the paper's 19 templates over the three
generated datasets.
"""

from __future__ import annotations

import pytest

from repro import BitMatStore, LBREngine
from repro.datasets import (ALL_SUITES, generate_dbpedia, generate_lubm,
                            generate_uniprot)

_GENERATORS = {
    "LUBM": generate_lubm,
    "UniProt": generate_uniprot,
    "DBPedia": generate_dbpedia,
}

_CASES = [(dataset, name, query)
          for dataset, suite in ALL_SUITES.items()
          for name, query in suite.items()]


@pytest.fixture(scope="module")
def stores():
    """One BitMat store per dataset, shared by every query of a suite."""
    return {dataset: BitMatStore.build(generate())
            for dataset, generate in _GENERATORS.items()}


@pytest.fixture(scope="module")
def warm_engines(stores):
    """One long-lived engine per dataset whose plan cache fills up."""
    return {dataset: LBREngine(store)
            for dataset, store in stores.items()}


@pytest.mark.parametrize("dataset,name,query", _CASES,
                         ids=[f"{d}-{n}" for d, n, _ in _CASES])
def test_plan_cache_warm_equals_cold(dataset, name, query, stores,
                                     warm_engines):
    store = stores[dataset]
    cold = LBREngine(store).execute(query)
    engine = warm_engines[dataset]
    engine.execute(query)  # populate the plan cache
    warm = engine.execute(query)  # plan-cache hit
    assert engine.plan_cache_stats()["hits"] >= 1
    assert warm.variables == cold.variables
    assert warm.rows == cold.rows, (
        f"{dataset} {name}: warm plan-cache run diverged from cold")


@pytest.mark.parametrize("dataset,name,query", _CASES,
                         ids=[f"{d}-{n}" for d, n, _ in _CASES])
def test_prune_ablations_agree(dataset, name, query, stores):
    store = stores[dataset]
    pruned = LBREngine(store, enable_prune=True).execute(query)
    unpruned = LBREngine(store, enable_prune=False).execute(query)
    raw = LBREngine(store, enable_prune=False,
                    enable_active_prune=False).execute(query)
    assert pruned.as_multiset() == unpruned.as_multiset(), (
        f"{dataset} {name}: Algorithm 3.2 ablation changed results")
    assert pruned.as_multiset() == raw.as_multiset(), (
        f"{dataset} {name}: active-pruning ablation changed results")
