"""Static-analysis framework tests (``lbr lint`` / repro.analysis).

Four layers:

* **Rule honesty** — every planted-violation fixture is caught and its
  clean twin stays silent (the selfcheck corpus, parametrized so a
  failing rule names itself).
* **Framework mechanics** — suppression handling (justified silences,
  unjustified is itself a finding), scoping, JSON report schema, CLI
  exit codes, and ``--changed-only`` failing loudly outside git.
* **The repo gate** — the whole tree lints clean: zero unsuppressed
  findings, and the mypy-strict modules carry no untyped defs (the
  container has no mypy; this AST guard keeps the pyproject gate
  honest locally).
* **Pinning tests** — the true findings this checker surfaced stay
  fixed: the atomic-write handle closes on the exception edge, the
  soak compaction storm records failures by name, background
  compaction failures are counted, and an unexpected engine exception
  reaches the client typed as an ``InternalError``.
"""

from __future__ import annotations

import ast
import glob
import json
import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro.analysis import (Finding, LintConfig, Module, all_rules,
                            apply_suppressions, check_source, main,
                            run_lint)
from repro.analysis.framework import RULE_ALLOW_JUSTIFICATION
from repro.analysis.runner import changed_files, load_config
from repro.analysis.selfcheck import FIXTURES, run_selfcheck
from repro.exceptions import InternalError, ReproError, internal_error
from repro.fsio import atomic_write
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Triple, URI
from repro.server import QueryService, ServiceConfig
from repro.server.soak import _compaction_storm
from repro.update import LiveConfig, LiveGraphStore, MemFS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _rules_hit(sources: dict[str, str]) -> set[str]:
    modules = [Module.from_source(path, text)
               for path, text in sources.items()]
    from repro.analysis.runner import collect_findings
    return {finding.rule for finding in collect_findings(modules)}


# ----------------------------------------------------------------------
# rule honesty: the planted-violation corpus
# ----------------------------------------------------------------------

class TestSelfCheckCorpus:
    @pytest.mark.parametrize(
        "fixture", FIXTURES,
        ids=[f"{f.rule}-{f.name.replace(' ', '-')}" for f in FIXTURES])
    def test_bad_caught_clean_silent(self, fixture):
        assert fixture.rule in _rules_hit(fixture.bad), \
            f"{fixture.rule} missed its planted violation ({fixture.name})"
        assert fixture.rule not in _rules_hit(fixture.clean), \
            f"{fixture.rule} false-positive on the clean twin " \
            f"({fixture.name})"

    def test_every_rule_has_a_fixture(self):
        covered = {fixture.rule for fixture in FIXTURES}
        assert covered == set(all_rules()), \
            f"rules without fixtures: {set(all_rules()) - covered}"

    def test_run_selfcheck_clean(self):
        assert run_selfcheck() == []


# ----------------------------------------------------------------------
# framework mechanics
# ----------------------------------------------------------------------

BARE_EXCEPT = textwrap.dedent("""
    def run(task):
        try:
            task()
        except:
            pass
""").lstrip()


class TestSuppressions:
    def test_justified_suppression_silences(self):
        source = BARE_EXCEPT.replace(
            "except:",
            "except:  # lbr: allow[exc-bare-except]: test harness")
        module = Module.from_source("mod.py", source)
        from repro.analysis.runner import collect_findings
        kept, used = apply_suppressions(
            collect_findings([module]), [module])
        assert kept == []
        assert len(used) == 1
        assert used[0].justification == "test harness"

    def test_unjustified_suppression_is_a_finding(self):
        source = BARE_EXCEPT.replace(
            "except:", "except:  # lbr: allow[exc-bare-except]")
        module = Module.from_source("mod.py", source)
        from repro.analysis.runner import collect_findings
        kept, _used = apply_suppressions(
            collect_findings([module]), [module])
        rules = {finding.rule for finding in kept}
        # the original finding survives AND the naked allow is flagged
        assert "exc-bare-except" in rules
        assert RULE_ALLOW_JUSTIFICATION in rules

    def test_suppression_covers_line_above(self):
        source = BARE_EXCEPT.replace(
            "    except:",
            "    # lbr: allow[exc-bare-except]: test harness\n"
            "    except:")
        module = Module.from_source("mod.py", source)
        from repro.analysis.runner import collect_findings
        kept, used = apply_suppressions(
            collect_findings([module]), [module])
        assert kept == [] and len(used) == 1

    def test_suppression_does_not_leak_to_other_rules(self):
        source = BARE_EXCEPT.replace(
            "except:",
            "except:  # lbr: allow[det-unsorted-iteration]: wrong rule")
        module = Module.from_source("mod.py", source)
        from repro.analysis.runner import collect_findings
        kept, used = apply_suppressions(
            collect_findings([module]), [module])
        assert {finding.rule for finding in kept} == {"exc-bare-except"}
        assert used == []


class TestScoping:
    CONFIG = LintConfig.from_pyproject(textwrap.dedent("""
        [tool.lbr.lint]
        paths = ["src"]
        [tool.lbr.lint.scopes]
        "det-unsorted-iteration" = ["src/plan/*.py"]
    """))

    def test_scoped_rule_binds_to_glob(self):
        assert self.CONFIG.rule_applies(
            "det-unsorted-iteration", "src/plan/passes.py")
        assert not self.CONFIG.rule_applies(
            "det-unsorted-iteration", "src/server/net.py")

    def test_unscoped_rule_applies_everywhere(self):
        assert self.CONFIG.rule_applies("exc-bare-except",
                                        "src/server/net.py")


class TestReportAndCli:
    def _tree(self, tmp_path, source: str) -> str:
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(source)
        (tmp_path / "pyproject.toml").write_text(
            "[tool.lbr.lint]\npaths = [\"pkg\"]\n")
        return str(tmp_path)

    def test_json_schema(self, tmp_path):
        root = self._tree(tmp_path, BARE_EXCEPT)
        report = run_lint(root)
        payload = report.to_json()
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["counts_by_rule"] == {"exc-bare-except": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "rule", "message",
                                "checker"}
        assert finding["path"] == "pkg/mod.py"
        assert isinstance(finding["line"], int)
        assert payload["suppressions_used"] == []
        json.dumps(payload)  # must be serializable as-is

    def test_cli_exit_codes_and_out_file(self, tmp_path):
        root = self._tree(tmp_path, BARE_EXCEPT)
        lines: list[str] = []
        out = str(tmp_path / "report.json")
        code = main(["--root", root, "--format", "json", "--out", out],
                    stdout=lines.append)
        assert code == 1
        payload = json.loads(lines[0])
        assert payload["ok"] is False
        with open(out, encoding="utf-8") as handle:
            assert json.load(handle) == payload
        # a clean tree exits 0
        (tmp_path / "pkg" / "mod.py").write_text("VALUE = 1\n")
        assert main(["--root", root], stdout=lambda _line: None) == 0

    def test_parse_error_is_a_finding(self, tmp_path):
        root = self._tree(tmp_path, "def broken(:\n")
        report = run_lint(root)
        assert [finding.rule for finding in report.findings] \
            == ["parse-error"]

    def test_changed_only_outside_git_exits_2(self, tmp_path):
        root = self._tree(tmp_path, BARE_EXCEPT)
        with pytest.raises(RuntimeError):
            changed_files(root)
        code = main(["--root", root, "--changed-only"],
                    stdout=lambda _line: None)
        assert code == 2

    def test_changed_only_scopes_to_touched_files(self, tmp_path):
        root = self._tree(tmp_path, BARE_EXCEPT)
        (tmp_path / "pkg" / "other.py").write_text(BARE_EXCEPT)
        env = {**os.environ,
               "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}
        for argv in (["git", "init", "-q"],
                     ["git", "add", "-A"],
                     ["git", "commit", "-qm", "seed"]):
            subprocess.run(argv, cwd=root, env=env, check=True,
                           capture_output=True)
        # nothing changed yet -> nothing linted, exit 0
        report = run_lint(root, changed_only=True)
        assert report.files_checked == 0 and report.ok
        # touch one of the two offending files -> only it is linted
        (tmp_path / "pkg" / "mod.py").write_text(BARE_EXCEPT + "\n")
        report = run_lint(root, changed_only=True)
        assert report.files_checked == 1
        assert {finding.path for finding in report.findings} \
            == {"pkg/mod.py"}

    def test_rule_filter(self, tmp_path):
        root = self._tree(tmp_path, BARE_EXCEPT)
        report = run_lint(root, rules=["det-unsorted-iteration"])
        assert report.ok  # the bare except is filtered out

    def test_module_entrypoint_runs(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")})
        assert completed.returncode == 0
        assert "exc-bare-except" in completed.stdout


# ----------------------------------------------------------------------
# the repo gate
# ----------------------------------------------------------------------

class TestRepoGate:
    def test_repo_lints_clean(self):
        """Zero unsuppressed findings over the whole source tree."""
        report = run_lint(REPO_ROOT)
        rendered = "\n".join(finding.render()
                             for finding in report.findings)
        assert report.ok, f"unsuppressed findings:\n{rendered}"

    def test_every_used_suppression_is_justified(self):
        report = run_lint(REPO_ROOT)
        for suppression in report.suppressions_used:
            assert suppression.justification, \
                f"{suppression.path}:{suppression.line} lacks a reason"

    def test_mypy_strict_modules_have_no_untyped_defs(self):
        """Local stand-in for the CI mypy gate (container has no mypy):
        every def in the pyproject strict modules is fully annotated."""
        targets = ["src/repro/bitmat/backend.py", "src/repro/sync.py",
                   "src/repro/lru.py"]
        targets += sorted(glob.glob(
            os.path.join(REPO_ROOT, "src/repro/plan/*.py")))
        missing: list[str] = []
        for target in targets:
            path = (target if os.path.isabs(target)
                    else os.path.join(REPO_ROOT, target))
            tree = ast.parse(open(path, encoding="utf-8").read())
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                args = node.args
                unannotated = [
                    arg.arg for arg in (args.posonlyargs + args.args
                                        + args.kwonlyargs)
                    if arg.arg not in ("self", "cls")
                    and arg.annotation is None]
                unannotated += [
                    "*" + arg.arg for arg in (args.vararg, args.kwarg)
                    if arg is not None and arg.annotation is None]
                if node.returns is None:
                    unannotated.append("return")
                if unannotated:
                    missing.append(f"{os.path.relpath(path, REPO_ROOT)}"
                                   f":{node.lineno} {node.name}: "
                                   f"{unannotated}")
        assert not missing, "untyped defs in mypy-strict modules:\n" \
            + "\n".join(missing)

    def test_pyproject_scopes_name_real_rules(self):
        config = load_config(REPO_ROOT)
        known = set(all_rules())
        unknown = set(config.scopes) - known
        assert not unknown, f"scoped rules that do not exist: {unknown}"


# ----------------------------------------------------------------------
# pinning tests for the findings this checker surfaced
# ----------------------------------------------------------------------

class _ExplodingHandle:
    def __init__(self):
        self.closed = False

    def write(self, data: bytes) -> int:
        raise OSError("disk full")

    def flush(self) -> None:  # pragma: no cover - not reached
        pass

    def fsync(self) -> None:  # pragma: no cover - not reached
        pass

    def close(self) -> None:
        self.closed = True


class _ExplodingFS:
    def __init__(self):
        self.handle = _ExplodingHandle()

    def open_write(self, path: str):
        return self.handle

    def replace(self, src: str, dst: str) -> None:  # pragma: no cover
        raise AssertionError("replace after failed write")

    def fsync_dir(self, path: str) -> None:  # pragma: no cover
        raise AssertionError("fsync_dir after failed write")


class TestPinnedFixes:
    def test_atomic_write_closes_handle_on_write_failure(self):
        """fsio.py finding: the temp handle leaked if write() raised."""
        fs = _ExplodingFS()
        with pytest.raises(OSError):
            atomic_write(fs, "/x/file.bin", b"payload")
        assert fs.handle.closed

    def test_internal_error_wraps_and_chains(self):
        original = ValueError("boom")
        wrapped = internal_error(original)
        assert isinstance(wrapped, InternalError)
        assert isinstance(wrapped, ReproError)
        assert wrapped.original_type == "ValueError"
        assert wrapped.__cause__ is original
        assert "ValueError" in str(wrapped) and "boom" in str(wrapped)
        # idempotent: wrapping a wrap never buries the original type
        assert internal_error(wrapped) is wrapped

    def test_compaction_storm_records_failure(self):
        """soak.py finding: a failed storm merge exited silently."""
        class _FailingLive:
            def compact(self):
                raise RuntimeError("merge exploded")

        errors: list[str] = []
        _compaction_storm(_FailingLive(), interval=0.0,
                          stop_at=time.monotonic() + 30.0,
                          errors=errors)
        assert len(errors) == 1
        assert "RuntimeError" in errors[0]
        assert "merge exploded" in errors[0]

    def test_background_compaction_failure_is_counted(self):
        """live.py finding: the compactor thread swallowed errors."""
        graph = Graph()
        for index in range(4):
            graph.add(Triple(URI(f"http://x/s{index}"),
                             URI("http://x/p"), Literal(str(index))))
        live = LiveGraphStore.open(
            "/live", fs=MemFS(), initial=graph,
            config=LiveConfig(compact_threshold=None, background=True))
        try:
            live.apply_batch(
                [Triple(URI("http://x/new"), URI("http://x/p"),
                        Literal("v"))], [])

            def explode(base, delta):
                raise RuntimeError("rebuild exploded")

            live._materialize = explode
            live.request_compaction()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if live.stats()["compaction_failures"]:
                    break
                time.sleep(0.01)
            stats = live.stats()
            assert stats["compaction_failures"] >= 1
            assert "RuntimeError" in stats["last_compaction_error"]
        finally:
            live.close()

    def test_unexpected_engine_error_reaches_client_typed(self):
        """scheduler.py finding: broad except now routes through the
        taxonomy — the client sees InternalError + the original type,
        and the soak gate sees worker_errors move."""
        graph = Graph()
        graph.add(Triple(URI("http://x/a"), URI("http://x/knows"),
                         URI("http://x/b")))
        with QueryService.from_graph(
                graph, ServiceConfig(workers=1)) as service:
            snapshot = service.scheduler.snapshots.current()

            class _ExplodingSession:
                last_stats = None

                def execute(self, query_text):
                    raise RuntimeError("engine bug")

            real_session = snapshot.engine.session
            snapshot.engine.session = \
                lambda **kwargs: _ExplodingSession()
            try:
                outcome = service.execute(
                    "SELECT * WHERE { ?s <http://x/knows> ?o }")
            finally:
                snapshot.engine.session = real_session
            assert not outcome.ok
            assert outcome.error_type == "internal"
            assert "InternalError" in outcome.error
            assert "RuntimeError" in outcome.error
            assert service.scheduler.stats()["worker_errors"] == 1
            # the worker thread survived the routed error
            live_outcome = service.execute(
                "SELECT * WHERE { ?s <http://x/knows> ?o }")
            assert live_outcome.ok


# ----------------------------------------------------------------------
# determinism of the lint pass itself
# ----------------------------------------------------------------------

def test_findings_are_ordered_and_deduplicated():
    source = BARE_EXCEPT + "\n" + BARE_EXCEPT.replace("run", "run2")
    first = check_source(source, "mod.py")
    second = check_source(source, "mod.py")
    assert first == second
    assert [finding.line for finding in first] \
        == sorted(finding.line for finding in first)
    assert all(isinstance(finding, Finding) for finding in first)
