"""Benchmark harness and reporting tests."""

import math

import pytest

from repro.bench import (BenchmarkHarness, QueryReport, SuiteReport,
                         format_characteristics_table, format_geomean_table,
                         format_query_table, format_verification,
                         geometric_mean)
from repro.rdf.graph import Graph

from .conftest import EX, triples


@pytest.fixture(scope="module")
def harness():
    graph = Graph(triples(
        ("a", "p", "b"), ("b", "p", "c"), ("a", "q", "x"), ("c", "q", "y"),
    ))
    return BenchmarkHarness("Tiny", graph, runs=1)


QUERY = f"PREFIX ex: <{EX}>\nSELECT * WHERE {{ ?s ex:p ?o OPTIONAL {{ ?o ex:q ?x }} }}"


class TestHarness:
    def test_run_query_collects_metrics(self, harness):
        report = harness.run_query("Q1", QUERY)
        assert report.dataset == "Tiny"
        assert report.num_results == 2
        assert report.t_lbr > 0
        assert report.t_naive is not None and report.t_naive > 0
        assert report.t_columnstore is not None
        assert report.initial_triples == 4
        assert report.verified is True

    def test_run_suite(self, harness):
        suite = harness.run_suite({"Q1": QUERY, "Q2": QUERY})
        assert [r.query for r in suite.queries] == ["Q1", "Q2"]
        assert suite.characteristics["triples"] == 4

    def test_geometric_means(self, harness):
        suite = harness.run_suite({"Q1": QUERY})
        means = suite.geometric_means()
        assert set(means) == {"lbr", "naive", "columnstore"}
        assert all(value > 0 for value in means.values())

    def test_engines_can_be_disabled(self):
        graph = Graph(triples(("a", "p", "b")))
        harness = BenchmarkHarness("T", graph, runs=1, with_naive=False,
                                   with_columnstore=False, verify=False)
        report = harness.run_query("Q", f"PREFIX ex: <{EX}>\n"
                                        f"SELECT * WHERE {{ ?s ex:p ?o }}")
        assert report.t_naive is None
        assert report.t_columnstore is None
        assert report.verified is None


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_zero_guard(self):
        assert geometric_mean([0.0, 1.0]) > 0

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)


class TestReporting:
    def _suite(self):
        report = QueryReport(dataset="Tiny", query="Q1", t_init=0.001,
                             t_prune=0.002, t_lbr=0.01, t_naive=0.5,
                             t_columnstore=0.03, initial_triples=1000,
                             triples_after_pruning=10, num_results=5,
                             results_with_nulls=2,
                             best_match_required=True, verified=True)
        return SuiteReport(dataset="Tiny",
                           characteristics={"triples": 4, "subjects": 3,
                                            "predicates": 2, "objects": 4},
                           queries=[report])

    def test_query_table_contains_all_columns(self):
        text = format_query_table(self._suite())
        for token in ("Q1", "Tinit", "Tprune", "1,000", "Yes"):
            assert token in text
        # the fastest engine is starred
        assert "*" in text

    def test_characteristics_table(self):
        text = format_characteristics_table([self._suite()])
        assert "Tiny" in text and "#triples" in text

    def test_geomean_table(self):
        text = format_geomean_table([self._suite()])
        assert "Tiny" in text and "Geometric" in text

    def test_verification_lines(self):
        text = format_verification(self._suite().queries)
        assert "Tiny Q1: OK" in text
