"""Benchmark harness and reporting tests."""

import math

import pytest

from repro.bench import (BenchmarkHarness, QueryReport, SuiteReport,
                         format_characteristics_table, format_geomean_table,
                         format_query_table, format_verification,
                         geometric_mean)
from repro.rdf.graph import Graph

from .conftest import EX, triples


@pytest.fixture(scope="module")
def harness():
    graph = Graph(triples(
        ("a", "p", "b"), ("b", "p", "c"), ("a", "q", "x"), ("c", "q", "y"),
    ))
    return BenchmarkHarness("Tiny", graph, runs=1)


QUERY = f"PREFIX ex: <{EX}>\nSELECT * WHERE {{ ?s ex:p ?o OPTIONAL {{ ?o ex:q ?x }} }}"


class TestHarness:
    def test_run_query_collects_metrics(self, harness):
        report = harness.run_query("Q1", QUERY)
        assert report.dataset == "Tiny"
        assert report.num_results == 2
        assert report.t_lbr > 0
        assert report.t_naive is not None and report.t_naive > 0
        assert report.t_columnstore is not None
        assert report.initial_triples == 4
        assert report.verified is True

    def test_run_suite(self, harness):
        suite = harness.run_suite({"Q1": QUERY, "Q2": QUERY})
        assert [r.query for r in suite.queries] == ["Q1", "Q2"]
        assert suite.characteristics["triples"] == 4

    def test_geometric_means(self, harness):
        suite = harness.run_suite({"Q1": QUERY})
        means = suite.geometric_means()
        assert set(means) == {"lbr", "naive", "columnstore"}
        assert all(value > 0 for value in means.values())

    def test_engines_can_be_disabled(self):
        graph = Graph(triples(("a", "p", "b")))
        harness = BenchmarkHarness("T", graph, runs=1, with_naive=False,
                                   with_columnstore=False, verify=False)
        report = harness.run_query("Q", f"PREFIX ex: <{EX}>\n"
                                        f"SELECT * WHERE {{ ?s ex:p ?o }}")
        assert report.t_naive is None
        assert report.t_columnstore is None
        assert report.verified is None


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_zero_guard(self):
        assert geometric_mean([0.0, 1.0]) > 0

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)


class TestReporting:
    def _suite(self):
        report = QueryReport(dataset="Tiny", query="Q1", t_init=0.001,
                             t_prune=0.002, t_lbr=0.01, t_naive=0.5,
                             t_columnstore=0.03, initial_triples=1000,
                             triples_after_pruning=10, num_results=5,
                             results_with_nulls=2,
                             best_match_required=True, verified=True)
        return SuiteReport(dataset="Tiny",
                           characteristics={"triples": 4, "subjects": 3,
                                            "predicates": 2, "objects": 4},
                           queries=[report])

    def test_query_table_contains_all_columns(self):
        text = format_query_table(self._suite())
        for token in ("Q1", "Tinit", "Tprune", "1,000", "Yes"):
            assert token in text
        # the fastest engine is starred
        assert "*" in text

    def test_characteristics_table(self):
        text = format_characteristics_table([self._suite()])
        assert "Tiny" in text and "#triples" in text

    def test_geomean_table(self):
        text = format_geomean_table([self._suite()])
        assert "Tiny" in text and "Geometric" in text

    def test_verification_lines(self):
        text = format_verification(self._suite().queries)
        assert "Tiny Q1: OK" in text


class TestCompareGate:
    """repro.bench.compare: relative, absolute, and min-ratio floors."""

    @staticmethod
    def report(value: float) -> dict:
        return {"workload": {"geomean_speedup": value}}

    def test_within_regression_budget_passes(self):
        from repro.bench.compare import compare
        result = compare(self.report(5.0), self.report(4.0),
                         max_regression=0.25)
        assert not result["regressed"]

    def test_regression_past_budget_fails(self):
        from repro.bench.compare import compare
        result = compare(self.report(5.0), self.report(3.0),
                         max_regression=0.25)
        assert result["regressed"]

    def test_min_ratio_demands_improvement(self):
        from repro.bench.compare import compare
        # matching the baseline is no longer enough with min_ratio>1
        same = compare(self.report(5.0), self.report(5.0),
                       min_ratio=1.3)
        assert same["regressed"]
        assert same["floor"] == pytest.approx(6.5)
        improved = compare(self.report(5.0), self.report(6.6),
                           min_ratio=1.3)
        assert not improved["regressed"]

    def test_floors_compose_strictest_wins(self):
        from repro.bench.compare import compare
        result = compare(self.report(5.0), self.report(7.0),
                         max_regression=0.25, absolute_floor=8.0,
                         min_ratio=1.3)
        assert result["floor"] == pytest.approx(8.0)
        assert result["regressed"]

    def test_min_ratio_shown_in_table(self):
        from repro.bench.compare import compare, format_table
        result = compare(self.report(5.0), self.report(7.0),
                         min_ratio=1.3)
        assert "1.3x base" in format_table(result)

    def test_cli_min_ratio(self, tmp_path):
        import json

        from repro.bench.compare import main
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(self.report(5.0)))
        cur.write_text(json.dumps(self.report(5.5)))
        assert main([str(base), str(cur), "--min-ratio", "1.3"]) == 1
        assert main([str(base), str(cur), "--min-ratio", "1.05"]) == 0
