"""Shared fixtures: the paper's running example, tiny datasets, oracles."""

from __future__ import annotations

import pytest

from repro import (BitMatStore, ColumnStoreEngine, Graph, LBREngine,
                   NaiveEngine, Triple, URI)

EX = "http://example.org/"


def uri(name: str) -> URI:
    """Shorthand for example.org URIs in tests."""
    return URI(EX + name)


def triples(*rows: tuple[str, str, str]) -> list[Triple]:
    """Build example.org triples from short names."""
    return [Triple(uri(s), uri(p), uri(o)) for s, p, o in rows]


#: The data of the paper's Figure 3.2 (the running example).
FIGURE_3_2 = [
    ("Julia", "actedIn", "Seinfeld"),
    ("Julia", "actedIn", "Veep"),
    ("Julia", "actedIn", "NewAdvOldChristine"),
    ("Julia", "actedIn", "CurbYourEnthu"),
    ("CurbYourEnthu", "location", "LosAngeles"),
    ("Larry", "actedIn", "CurbYourEnthu"),
    ("Jerry", "hasFriend", "Julia"),
    ("Jerry", "hasFriend", "Larry"),
    ("Seinfeld", "location", "NewYorkCity"),
    ("Veep", "location", "D.C."),
    ("NewAdvOldChristine", "location", "Jersey"),
]

#: The query of Figure 3.2 over that data (Q2 of the introduction).
FIGURE_3_2_QUERY = f"""
PREFIX ex: <{EX}>
SELECT ?friend ?sitcom WHERE {{
  ex:Jerry ex:hasFriend ?friend .
  OPTIONAL {{
    ?friend ex:actedIn ?sitcom .
    ?sitcom ex:location ex:NewYorkCity .
  }}
}}
"""


@pytest.fixture(scope="session")
def figure_graph() -> Graph:
    return Graph(triples(*FIGURE_3_2))


@pytest.fixture(scope="session")
def figure_store(figure_graph) -> BitMatStore:
    return BitMatStore.build(figure_graph)


@pytest.fixture()
def figure_engine(figure_store) -> LBREngine:
    return LBREngine(figure_store)


def engines_for(graph: Graph):
    """(LBR, naive, columnstore) engines over a graph."""
    store = BitMatStore.build(graph)
    return LBREngine(store), NaiveEngine(graph), ColumnStoreEngine(graph)


def assert_engines_agree(graph: Graph, query: str,
                         compare: str = "bag") -> None:
    """Assert LBR, naive, and columnstore agree on a query."""
    lbr, naive, columnstore = engines_for(graph)
    result_lbr = lbr.execute(query)
    result_naive = naive.execute(query)
    result_col = columnstore.execute(query)
    if compare == "bag":
        assert result_lbr.as_multiset() == result_naive.as_multiset(), (
            f"LBR vs naive mismatch on:\n{query}")
        assert result_col.as_multiset() == result_naive.as_multiset(), (
            f"columnstore vs naive mismatch on:\n{query}")
    else:
        assert result_lbr.as_set() == result_naive.as_set()
        assert result_col.as_set() == result_naive.as_set()


def lbr_matches_oracle(graph: Graph, query: str) -> bool:
    """True when LBR's bag of rows equals the naive oracle's."""
    store = BitMatStore.build(graph)
    lbr = LBREngine(store).execute(query)
    naive = NaiveEngine(graph).execute(query)
    return lbr.as_multiset() == naive.as_multiset()
