"""The memory-mapped frozen store: format, laziness, lifecycle, wiring."""

from __future__ import annotations

import pytest

from repro import BitMatStore, Graph, LBREngine
from repro.bitmat import mmapstore
from repro.bitmat.backend import (StoreBackend, is_store_image, open_store,
                                  open_store_bytes)
from repro.bitmat.mmapstore import MmapStore, dump_mmap_bytes, save_mmap_store
from repro.bitmat.persist import dump_store_bytes
from repro.exceptions import StorageError

from .conftest import FIGURE_3_2_QUERY, triples, uri


def many_predicate_graph(num_predicates: int = 10,
                         rows_per: int = 6) -> Graph:
    """A graph where each predicate owns its own disjoint triples."""
    graph = Graph()
    for p in range(num_predicates):
        for i in range(rows_per):
            graph.add((uri(f"s{p}_{i}"), uri(f"p{p}"), uri(f"o{p}_{i}")))
    return graph


@pytest.fixture()
def figure_mmap(figure_store) -> MmapStore:
    store = MmapStore.from_bytes(dump_mmap_bytes(figure_store))
    yield store
    store.close()


class TestRoundTrip:
    def test_from_bytes_preserves_everything(self, figure_store,
                                             figure_mmap):
        assert figure_mmap.num_triples == figure_store.num_triples
        assert figure_mmap.num_subjects == figure_store.num_subjects
        assert figure_mmap.num_objects == figure_store.num_objects
        assert figure_mmap.num_predicates == figure_store.num_predicates
        assert figure_mmap.num_shared == figure_store.num_shared
        assert (sorted(figure_mmap.iter_triples())
                == sorted(figure_store.iter_triples()))

    def test_open_maps_a_real_file(self, figure_store, tmp_path):
        path = str(tmp_path / "figure.lbrm")
        written = save_mmap_store(figure_store, path)
        assert written > 0
        store = MmapStore.open(path)
        assert store.materializations == 0
        assert (sorted(store.iter_triples())
                == sorted(figure_store.iter_triples()))
        store.close()

    def test_query_results_identical_across_formats(self, figure_graph,
                                                    figure_store,
                                                    figure_mmap):
        eager = LBREngine(figure_store).execute(FIGURE_3_2_QUERY)
        lazy = LBREngine(figure_mmap).execute(FIGURE_3_2_QUERY)
        assert lazy.as_multiset() == eager.as_multiset()

    def test_empty_store_round_trips(self):
        empty = BitMatStore.build(Graph())
        store = MmapStore.from_bytes(dump_mmap_bytes(empty))
        assert store.num_triples == 0
        assert list(store.iter_triples()) == []
        store.close()

    def test_extents_are_page_aligned(self, figure_store):
        payload = dump_mmap_bytes(figure_store, page_shift=9)
        store = MmapStore.from_bytes(payload)
        for extent in store._pairs._extents.values():
            assert extent[0] % 512 == 0
        store.close()


class TestLaziness:
    def test_open_decodes_nothing(self, figure_mmap):
        assert figure_mmap.materializations == 0

    def test_first_query_skips_untouched_predicates(self):
        """The acceptance bar: answering a query must not decode
        predicates it never names."""
        graph = many_predicate_graph(num_predicates=10)
        base = BitMatStore.build(graph)
        store = MmapStore.from_bytes(dump_mmap_bytes(base))
        engine = LBREngine(store)
        result = engine.execute(
            f"SELECT ?s ?o WHERE {{ ?s <{uri('p3')}> ?o . }}")
        assert len(result) == 6
        assert store.materializations == 1
        store.close()

    def test_statistics_answered_from_index(self, figure_mmap,
                                            figure_store):
        for pid in range(1, figure_mmap.num_predicates + 1):
            assert (figure_mmap.predicate_count(pid)
                    == figure_store.predicate_count(pid))
            assert (figure_mmap.count_matching(None, pid, None)
                    == figure_store.count_matching(None, pid, None))
        assert figure_mmap.materializations == 0

    def test_eviction_redecodes_transparently(self, monkeypatch):
        monkeypatch.setattr(mmapstore, "EXTENT_CACHE_SIZE", 2)
        graph = many_predicate_graph(num_predicates=8)
        base = BitMatStore.build(graph)
        store = MmapStore.from_bytes(dump_mmap_bytes(base))
        first = {pid: list(store._so_by_p[pid]) for pid in store._so_by_p}
        decodes_after_sweep = store.materializations
        assert decodes_after_sweep == 8
        # sweeping again re-decodes evicted extents — same data back
        again = {pid: list(store._so_by_p[pid]) for pid in store._so_by_p}
        assert again == first
        assert store.materializations > decodes_after_sweep
        store.close()

    def test_cache_stats_report_extent_section(self, figure_mmap):
        figure_mmap.load_so(1)
        report = figure_mmap.cache_stats()
        assert report["extents"]["materializations"] == 1
        assert report["extents"]["extents"] == figure_mmap.num_predicates
        assert "os_pairs" in report


class TestLifecycle:
    def test_refcounted_close(self, figure_mmap):
        figure_mmap.retain()
        figure_mmap.close()
        assert not figure_mmap.closed
        figure_mmap.close()
        assert figure_mmap.closed
        figure_mmap.close()  # idempotent at zero
        assert figure_mmap.closed

    def test_retain_after_close_raises(self, figure_store):
        store = MmapStore.from_bytes(dump_mmap_bytes(figure_store))
        store.close()
        with pytest.raises(StorageError):
            store.retain()

    def test_decode_after_close_raises(self, figure_store):
        store = MmapStore.from_bytes(dump_mmap_bytes(figure_store))
        store.close()
        with pytest.raises(StorageError):
            store.load_so(1)

    def test_open_file_handle_released_on_close(self, figure_store,
                                                tmp_path):
        path = str(tmp_path / "figure.lbrm")
        save_mmap_store(figure_store, path)
        store = MmapStore.open(path)
        store.load_so(1)
        store.close()
        assert store._mapping.closed
        assert store._file.closed

    def test_plain_store_lifecycle_is_noop(self, figure_store):
        # the protocol the rest of the system relies on: retaining and
        # closing an eager in-memory store never invalidates it
        assert figure_store.retain() is figure_store
        figure_store.close()
        assert not figure_store.closed
        assert figure_store.num_triples == 11


class TestBackendProtocol:
    def test_all_three_stores_satisfy_the_protocol(self, figure_store,
                                                   figure_mmap):
        from repro.update.overlay import OverlayStore, TripleDelta

        delta = TripleDelta.empty().apply_batch(
            triples(("Jerry", "hasFriend", "Elaine")), (),
            lambda triple: False)
        overlay = OverlayStore.build(figure_store, delta)
        assert isinstance(figure_store, StoreBackend)
        assert isinstance(figure_mmap, StoreBackend)
        assert isinstance(overlay, StoreBackend)
        overlay.close()

    def test_open_store_sniffs_every_format(self, figure_store, tmp_path):
        lbr = str(tmp_path / "figure.lbr")
        lbrm = str(tmp_path / "figure.lbrm")
        figure_store.save(lbr)
        save_mmap_store(figure_store, lbrm)
        eager = open_store(lbr)
        lazy = open_store(lbrm)
        assert type(eager) is BitMatStore
        assert isinstance(lazy, MmapStore)
        assert (sorted(eager.iter_triples())
                == sorted(lazy.iter_triples()))
        lazy.close()
        assert is_store_image(lbr) and is_store_image(lbrm)
        assert not is_store_image(str(tmp_path))

    def test_store_load_dispatches_by_magic(self, figure_store, tmp_path):
        path = str(tmp_path / "figure.lbrm")
        save_mmap_store(figure_store, path)
        store = BitMatStore.load(path)
        assert isinstance(store, MmapStore)
        store.close()

    def test_open_store_bytes_rejects_garbage(self):
        with pytest.raises(StorageError):
            open_store_bytes(b"definitely not a store image")
        with pytest.raises(StorageError):
            open_store(__file__)

    def test_both_byte_formats_open(self, figure_store):
        for payload in (dump_store_bytes(figure_store),
                        dump_mmap_bytes(figure_store)):
            store = open_store_bytes(payload)
            assert store.num_triples == figure_store.num_triples
            store.close()


class TestOverlayOverMmap:
    def test_overlay_merges_and_base_stays_lazy(self, figure_store):
        from repro.update.overlay import OverlayStore, TripleDelta

        base = MmapStore.from_bytes(dump_mmap_bytes(figure_store))
        delta = TripleDelta.empty().apply_batch(
            triples(("Elaine", "actedIn", "Seinfeld")),
            triples(("Julia", "actedIn", "Veep")),
            lambda triple: any(t == triple for t in base.iter_triples()))
        base_decodes = base.materializations
        overlay = OverlayStore.build(base, delta)
        assert base.materializations == base_decodes  # build is lazy too
        rows = LBREngine(overlay).execute(
            f"SELECT ?s WHERE {{ ?s <{uri('actedIn')}> "
            f"<{uri('Seinfeld')}> . }}")
        names = {row[0] for row in rows}
        assert names == {uri("Julia"), uri("Elaine")}
        overlay.close()
        base.close()

    def test_overlay_keeps_base_mapped_until_released(self, figure_store):
        from repro.update.overlay import OverlayStore, TripleDelta

        base = MmapStore.from_bytes(dump_mmap_bytes(figure_store))
        delta = TripleDelta.empty().apply_batch(
            triples(("Jerry", "hasFriend", "Elaine")), (),
            lambda triple: False)
        overlay = OverlayStore.build(base, delta)
        base.close()  # drop the creator's reference
        assert not base.closed  # the overlay still holds one
        base.load_so(1)
        overlay.close()
        assert base.closed
        assert overlay.closed


class TestSnapshotRetirement:
    def figure_mmap_store(self, figure_store) -> MmapStore:
        return MmapStore.from_bytes(dump_mmap_bytes(figure_store))

    def test_swap_closes_the_retired_store(self, figure_store):
        from repro.server.snapshot import SnapshotManager

        manager = SnapshotManager()
        first = self.figure_mmap_store(figure_store)
        manager.publish_store(first)  # publish adopts the reference
        second = self.figure_mmap_store(figure_store)
        manager.publish_store(second)
        assert first.closed
        assert not second.closed
        manager.close()
        assert second.closed

    def test_inflight_reader_defers_the_close(self, figure_store):
        from repro.server.snapshot import SnapshotManager

        manager = SnapshotManager()
        first = self.figure_mmap_store(figure_store)
        snapshot = manager.publish_store(first)
        assert snapshot.refs.try_acquire()  # a query pins the snapshot
        manager.publish_store(self.figure_mmap_store(figure_store))
        assert not first.closed  # retired but still read by the query
        snapshot.refs.release()
        assert first.closed
        assert not snapshot.refs.try_acquire()  # retirement is final
        manager.close()

    def test_query_service_serves_and_closes_mmap_store(self,
                                                        figure_store):
        from repro.server import QueryService, ServiceConfig

        store = self.figure_mmap_store(figure_store)
        service = QueryService.from_store(store,
                                          ServiceConfig(workers=2))
        outcome = service.execute(FIGURE_3_2_QUERY)
        assert outcome.ok and len(outcome.rows) == 2
        report = service.stats()
        extents = report["store_caches"]["extents"]
        assert 0 < extents["materializations"] <= store.num_predicates
        service.close()
        assert store.closed

    def test_reload_churn_leaks_no_handles(self, figure_store, tmp_path):
        from repro.server import QueryService, ServiceConfig

        path = str(tmp_path / "figure.lbrm")
        save_mmap_store(figure_store, path)
        service = QueryService(ServiceConfig(workers=2))
        generations = [MmapStore.open(path) for _ in range(5)]
        for store in generations:
            service.load_store(store)
            assert service.execute(FIGURE_3_2_QUERY).ok
        service.close()
        assert all(store.closed for store in generations)


class TestLiveStoreMmapImages:
    def base_image_names(self, directory) -> list[str]:
        import os
        return sorted(name for name in os.listdir(directory)
                      if name.startswith("base-"))

    def test_checkpoint_writes_and_reopens_mmap_image(self, figure_graph,
                                                      tmp_path):
        from repro.update import LiveConfig, LiveGraphStore

        directory = str(tmp_path / "live")
        live = LiveGraphStore.open(
            directory, config=LiveConfig(background=False),
            initial=figure_graph)
        assert isinstance(live._base, MmapStore)
        assert self.base_image_names(directory) == ["base-00000000.lbrm"]
        live.apply_batch(triples(("Jerry", "hasFriend", "Elaine")), ())
        assert live.compact()
        assert isinstance(live._base, MmapStore)
        assert self.base_image_names(directory) == ["base-00000001.lbrm"]
        visible = sorted(live.current_store().iter_triples())
        live.close()
        assert live._base.closed

        # recovery from the mmap image sees the identical dataset
        recovered = LiveGraphStore.open(
            directory, config=LiveConfig(background=False))
        assert isinstance(recovered._base, MmapStore)
        assert sorted(recovered.current_store().iter_triples()) == visible
        recovered.close()

    def test_store_image_format_still_supported(self, figure_graph,
                                                tmp_path):
        from repro.update import LiveConfig, LiveGraphStore

        directory = str(tmp_path / "live")
        config = LiveConfig(background=False, image_format="store")
        live = LiveGraphStore.open(directory, config=config,
                                   initial=figure_graph)
        assert type(live._base) is BitMatStore
        assert self.base_image_names(directory) == ["base-00000000.lbr"]
        live.apply_batch(triples(("Jerry", "hasFriend", "Elaine")), ())
        visible = sorted(live.current_store().iter_triples())
        live.close()

        # ...and a directory written by one format recovers under the
        # other config: the image magic decides, not the config
        recovered = LiveGraphStore.open(
            directory, config=LiveConfig(background=False))
        assert sorted(recovered.current_store().iter_triples()) == visible
        # "Elaine" (so far object-only) becomes a subject: the overlay
        # cannot represent that, so the batch checkpoints synchronously
        # — and the rebuilt base comes back in the configured format
        summary = recovered.apply_batch(
            triples(("Elaine", "actedIn", "Veep")), ())
        assert summary["checkpointed"]
        assert isinstance(recovered._base, MmapStore)
        recovered.close()

    def test_unknown_image_format_raises(self, figure_graph, tmp_path):
        from repro.update import LiveConfig, LiveGraphStore

        config = LiveConfig(background=False, image_format="parquet")
        with pytest.raises(StorageError):
            LiveGraphStore.open(str(tmp_path / "live"), config=config,
                                initial=figure_graph)

    def test_live_service_update_and_compact_over_mmap(self, figure_graph,
                                                       tmp_path):
        from repro.server import QueryService, ServiceConfig
        from repro.update import LiveConfig, LiveGraphStore

        directory = str(tmp_path / "live")
        live = LiveGraphStore.open(
            directory, config=LiveConfig(background=False),
            initial=figure_graph)
        service = QueryService(ServiceConfig(workers=2))
        service.attach_live_store(live)
        summary = service.update_batch(
            triples(("Elaine", "actedIn", "Seinfeld")), ())
        assert summary["seq"] == 1
        outcome = service.execute(
            f"SELECT ?s WHERE {{ ?s <{uri('actedIn')}> "
            f"<{uri('Seinfeld')}> . }}")
        assert outcome.ok
        assert {row[0] for row in outcome.rows} == {uri("Julia"),
                                                    uri("Elaine")}
        assert live.compact()  # swaps in a reopened mmap base
        outcome = service.execute(
            f"SELECT ?s WHERE {{ ?s <{uri('actedIn')}> "
            f"<{uri('Seinfeld')}> . }}")
        assert outcome.ok and len(outcome.rows) == 2
        service.close()
        assert live._base.closed
