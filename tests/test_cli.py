"""CLI tests via the in-process entry point."""

import os

import pytest

from repro.cli import main
from repro.rdf import ntriples


@pytest.fixture(scope="module")
def data_file(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "data.nt")
    text = """
<http://ex/jerry> <http://ex/hasFriend> <http://ex/julia> .
<http://ex/jerry> <http://ex/hasFriend> <http://ex/larry> .
<http://ex/julia> <http://ex/actedIn> <http://ex/seinfeld> .
"""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.strip() + "\n")
    return path


QUERY = ("SELECT * WHERE { <http://ex/jerry> <http://ex/hasFriend> ?f "
         "OPTIONAL { ?f <http://ex/actedIn> ?s } }")


class TestInfo:
    def test_info_prints_characteristics(self, data_file, capsys):
        assert main(["info", data_file]) == 0
        out = capsys.readouterr().out
        assert "triples=3" in out


class TestIndexAndQuery:
    def test_index_then_query_store(self, data_file, tmp_path, capsys):
        store_path = str(tmp_path / "data.lbr")
        assert main(["index", data_file, "--out", store_path]) == 0
        capsys.readouterr()
        assert main(["query", "--store", store_path, "--query", QUERY,
                     "--stats"]) == 0
        captured = capsys.readouterr()
        assert "julia" in captured.out
        assert "NULL" in captured.out  # larry has no sitcom
        assert "2 rows" in captured.err
        assert "best-match" in captured.err

    def test_query_data_with_each_engine(self, data_file, capsys):
        for engine in ("lbr", "naive", "columnstore"):
            assert main(["query", "--data", data_file, "--query", QUERY,
                         "--engine", engine]) == 0
            out = capsys.readouterr().out
            assert "seinfeld" in out, engine

    def test_query_limit(self, data_file, capsys):
        assert main(["query", "--data", data_file, "--query", QUERY,
                     "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "more rows" in out

    def test_explain(self, data_file, capsys):
        assert main(["query", "--data", data_file, "--query", QUERY,
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "branch 1/1" in out
        assert "(P1 OPT P2)" in out

    def test_query_requires_text(self, data_file, capsys):
        assert main(["query", "--data", data_file]) == 2

    def test_baseline_needs_data_not_store(self, data_file, tmp_path,
                                           capsys):
        store_path = str(tmp_path / "data2.lbr")
        main(["index", data_file, "--out", store_path])
        capsys.readouterr()
        assert main(["query", "--store", store_path, "--query", QUERY,
                     "--engine", "naive"]) == 2

    def test_query_file(self, data_file, tmp_path, capsys):
        query_path = str(tmp_path / "q.rq")
        with open(query_path, "w", encoding="utf-8") as handle:
            handle.write(QUERY)
        assert main(["query", "--data", data_file,
                     "--query-file", query_path]) == 0
        assert "julia" in capsys.readouterr().out


class TestFreeze:
    def test_freeze_from_ntriples(self, data_file, tmp_path, capsys):
        from repro.bitmat import MmapStore

        out = str(tmp_path / "data.lbrm")
        assert main(["freeze", data_file, "--out", out]) == 0
        message = capsys.readouterr().out
        assert "froze 3 triples" in message
        assert "4096-byte aligned" in message
        store = MmapStore.open(out)
        assert store.num_triples == 3
        assert store.materializations == 0
        store.close()

    def test_freeze_from_store_image(self, data_file, tmp_path, capsys):
        store_path = str(tmp_path / "data.lbr")
        frozen_path = str(tmp_path / "data.lbrm")
        assert main(["index", data_file, "--out", store_path]) == 0
        assert main(["freeze", store_path, "--out", frozen_path]) == 0
        capsys.readouterr()
        # the frozen image answers queries identically to the source
        assert main(["query", "--store", frozen_path,
                     "--query", QUERY]) == 0
        out = capsys.readouterr().out
        assert "julia" in out
        assert "NULL" in out

    def test_info_reads_frozen_image(self, data_file, tmp_path, capsys):
        out = str(tmp_path / "data.lbrm")
        main(["freeze", data_file, "--out", out])
        capsys.readouterr()
        assert main(["info", out]) == 0
        assert "triples=3" in capsys.readouterr().out


class TestServe:
    def test_serve_speaks_ndjson_and_shuts_down(self, data_file,
                                                tmp_path, capsys):
        import threading
        import time

        from repro.server import ServerClient

        port_file = str(tmp_path / "port")
        exit_codes: list[int] = []

        def run_server() -> None:
            exit_codes.append(main(
                ["serve", "--data", data_file, "--port", "0",
                 "--port-file", port_file, "--workers", "2",
                 "--queue-limit", "8"]))

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        while not os.path.exists(port_file):
            assert time.monotonic() < deadline, "server never bound"
            time.sleep(0.01)
        with open(port_file, encoding="utf-8") as handle:
            port = int(handle.read().strip())

        with ServerClient("127.0.0.1", port) as client:
            assert client.ping()["pong"]
            response = client.query(QUERY)
            assert response["ok"]
            wire_rows = {tuple(row) for row in response["rows"]}
            assert ("<http://ex/julia>",
                    "<http://ex/seinfeld>") in wire_rows
            assert any(row[1] is None for row in response["rows"])
            stats = client.stats()["stats"]
            assert stats["scheduler"]["completed"] >= 1
            assert client.shutdown()["stopping"]
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert exit_codes == [0]
        out = capsys.readouterr().out
        assert "listening on 127.0.0.1:" in out

    def test_serve_mmap_store_lazily(self, data_file, tmp_path, capsys):
        import threading
        import time

        from repro.server import ServerClient

        frozen_path = str(tmp_path / "data.lbrm")
        main(["freeze", data_file, "--out", frozen_path])
        port_file = str(tmp_path / "port")
        exit_codes: list[int] = []

        def run_server() -> None:
            exit_codes.append(main(
                ["serve", "--store", frozen_path, "--mmap", "--port", "0",
                 "--port-file", port_file, "--workers", "1"]))

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        while not os.path.exists(port_file):
            assert time.monotonic() < deadline, "server never bound"
            time.sleep(0.01)
        with open(port_file, encoding="utf-8") as handle:
            port = int(handle.read().strip())

        with ServerClient("127.0.0.1", port) as client:
            response = client.query(
                "SELECT * WHERE { ?a <http://ex/actedIn> ?s }")
            assert response["ok"]
            assert response["rows"] == [
                ["<http://ex/julia>", "<http://ex/seinfeld>"]]
            extents = client.stats()["stats"]["store_caches"]["extents"]
            # only the predicate the query touched was decoded
            assert extents["materializations"] == 1
            assert extents["extents"] == 2
            assert client.shutdown()["stopping"]
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert exit_codes == [0]
        assert ", mmap" in capsys.readouterr().out

    def test_serve_rejects_missing_source(self, capsys):
        # --live-dir is a third valid source, so the check moved from
        # argparse into _serve: a plain error exit, not a usage crash
        assert main(["serve"]) == 2
        assert "provide --data, --store, or --live-dir" \
            in capsys.readouterr().err


class TestGenerate:
    def test_generate_lubm(self, tmp_path, capsys):
        out_path = str(tmp_path / "lubm.nt")
        assert main(["generate", "lubm", "--out", out_path,
                     "--scale", "1.0"]) == 0
        graph = ntriples.load(out_path)
        assert len(graph) > 10_000

    def test_generate_with_seed_is_deterministic(self, tmp_path, capsys):
        first = str(tmp_path / "a.nt")
        second = str(tmp_path / "b.nt")
        main(["generate", "uniprot", "--out", first, "--seed", "3",
              "--scale", "0.05"])
        main(["generate", "uniprot", "--out", second, "--seed", "3",
              "--scale", "0.05"])
        with open(first) as handle_a, open(second) as handle_b:
            assert handle_a.read() == handle_b.read()
