"""Filesystem seam shared by persistence and the update subsystem.

Every durability-critical file operation in the repo (store image
writes, WAL appends, manifest renames, mmap-image publication) goes
through a :class:`FileSystem`.  Production uses :class:`RealFS`, a thin
wrapper over ``os``/``io``; the crash-recovery suite swaps in the
fault-injecting filesystems from :mod:`repro.update.faultfs`, which
implement the same protocol.

This module is a dependency leaf — it must import nothing from
:mod:`repro.bitmat` or :mod:`repro.update` so both can build on it
without cycles.

:func:`atomic_write` is the one blessed way to publish a file: write to
a temp name, fsync the content, rename over the destination, fsync the
directory.  A crash at any point leaves either the old file or the new
one at the final path, never a torn hybrid.
"""

from __future__ import annotations

import io
import os
from typing import Protocol


class FileHandle(Protocol):
    """Writable (or readable) handle returned by a FileSystem."""

    def write(self, data: bytes) -> int: ...
    def read(self, size: int = -1) -> bytes: ...
    def flush(self) -> None: ...
    def fsync(self) -> None: ...
    def close(self) -> None: ...
    def tell(self) -> int: ...


class FileSystem(Protocol):
    """The file operations durability-critical code is allowed to use."""

    def exists(self, path: str) -> bool: ...
    def listdir(self, path: str) -> list[str]: ...
    def makedirs(self, path: str) -> None: ...
    def read_bytes(self, path: str) -> bytes: ...
    def file_size(self, path: str) -> int: ...
    def open_append(self, path: str) -> FileHandle: ...
    def open_write(self, path: str) -> FileHandle: ...
    def truncate(self, path: str, size: int) -> None: ...
    def replace(self, src: str, dst: str) -> None: ...
    def remove(self, path: str) -> None: ...
    def fsync_dir(self, path: str) -> None: ...


class _RealHandle:
    __slots__ = ("_file",)

    def __init__(self, file: io.BufferedIOBase) -> None:
        self._file = file

    def write(self, data: bytes) -> int:
        return self._file.write(data)

    def read(self, size: int = -1) -> bytes:
        return self._file.read(size)

    def flush(self) -> None:
        self._file.flush()

    def fsync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def tell(self) -> int:
        return self._file.tell()


class RealFS:
    """Production filesystem: ``os``/``io`` with real fsync."""

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as file:
            return file.read()

    def file_size(self, path: str) -> int:
        return os.path.getsize(path)

    def open_append(self, path: str) -> _RealHandle:
        return _RealHandle(open(path, "ab"))

    def open_write(self, path: str) -> _RealHandle:
        return _RealHandle(open(path, "wb"))

    def truncate(self, path: str, size: int) -> None:
        with open(path, "r+b") as file:
            file.truncate(size)
            file.flush()
            os.fsync(file.fileno())

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def fsync_dir(self, path: str) -> None:
        # Directory fsync makes renames/creates/unlinks in it durable.
        # Not supported on some platforms (e.g. Windows); best-effort.
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def join_path(directory: str, name: str) -> str:
    """Join a directory and a file name with forward slashes.

    Kept ``/``-based (not ``os.path.join``) so fault-injection
    filesystems see stable, platform-independent paths.
    """
    return f"{directory.rstrip('/')}/{name}"


def atomic_write(fs: FileSystem, path: str, payload: bytes) -> int:
    """Durably publish *payload* at *path*; returns bytes written.

    temp file → fsync → rename over *path* → fsync of the containing
    directory.  A crash at any point leaves the old content (or no
    file) at *path*; the temp name may survive as an orphan for the
    caller's recovery sweep to remove.
    """
    temp = path + ".tmp"
    handle = fs.open_write(temp)
    try:
        handle.write(payload)
        handle.flush()
        handle.fsync()
    finally:
        handle.close()
    fs.replace(temp, path)
    fs.fsync_dir(os.path.dirname(path) or ".")
    return len(payload)
