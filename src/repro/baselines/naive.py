"""Naive bottom-up SPARQL algebra evaluation — oracle and comparator.

Implements the textbook semantics directly over the triple store:

    Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 \\ Ω2)

Solution mappings are partial functions (absent variable = unbound), so
compatibility follows pure SPARQL semantics — the behaviour of engines
like Jena/ARQ described in Appendix C.  With ``null_intolerant=True``
joins instead reject rows whose shared *schema* variables are unbound,
which is the SQL behaviour of relational RDF stores (Virtuoso,
MonetDB); the two modes differ only for non-well-designed queries.

Queries enter through the shared compiler frontend
(:func:`repro.plan.compiler.compile_logical`) and evaluation
*interprets the logical IR* bottom-up — the same IR the LBR engine
compiles to a physical plan, with no pass pipeline applied: the naive
evaluator models pure SPARQL semantics, independent of the engine's
rewrites.

This engine doubles as the paper's MonetDB comparator in the benchmark
suite: inner joins are reordered by estimated selectivity, but
left-outer joins are always evaluated bottom-up in the original nesting
order — the restriction LBR's pruning sidesteps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..exceptions import BudgetExceededError
from ..plan.compiler import compile_logical
from ..plan.logical import (LBGP, LFilter, LJoin, LLeftJoin, LogicalNode,
                            LUnion, LUnionAll, from_ast)
from ..rdf.graph import Graph
from ..rdf.terms import NULL, Term, Variable, is_variable
from ..sparql.ast import Pattern, Query, TriplePattern
from ..sparql.expressions import passes
from ..core.results import ResultSet, apply_solution_modifiers

Row = dict[Variable, Term]


@dataclass
class NaiveStats:
    """Timing breakdown of one naive execution."""

    t_total: float = 0.0
    intermediate_rows: int = 0


class NaiveEngine:
    """Bottom-up evaluator over a :class:`~repro.rdf.graph.Graph`."""

    def __init__(self, graph: Graph, null_intolerant: bool = False,
                 max_intermediate_rows: int | None = None) -> None:
        self.graph = graph
        self.null_intolerant = null_intolerant
        #: optional work budget: evaluation raises
        #: :class:`~repro.exceptions.BudgetExceededError` once the total
        #: intermediate row count passes this bound (fuzz-harness guard
        #: against combinatorial blowups on adversarial cases)
        self.max_intermediate_rows = max_intermediate_rows
        self.last_stats = NaiveStats()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, query: Query | str) -> ResultSet:
        started = time.perf_counter()
        query, logical = compile_logical(query)
        stats = NaiveStats()
        rows = self._eval(logical.root, stats)
        all_variables = tuple(sorted(logical.root.possible))
        tuples = [tuple(row.get(var, NULL) for var in all_variables)
                  for row in rows]
        result = apply_solution_modifiers(
            ResultSet(all_variables, tuples), query)
        stats.t_total = time.perf_counter() - started
        self.last_stats = stats
        return result

    def eval_logical(self, node: LogicalNode) -> list[Row]:
        """Interpret a logical IR node to solution-mapping rows.

        The building block the differential fuzz oracle uses to
        evaluate individual UNION-normal-form branches (possibly after
        the Appendix B reference rewrite) without solution modifiers.
        """
        return self._eval(node, NaiveStats())

    def eval_pattern(self, pattern: Pattern) -> list[Row]:
        """Evaluate a bare AST pattern (lowered through the shared IR)."""
        return self._eval(from_ast(pattern), NaiveStats())

    # ------------------------------------------------------------------
    # evaluation (a direct interpreter over the logical IR)
    # ------------------------------------------------------------------

    def _eval(self, node: LogicalNode, stats: NaiveStats) -> list[Row]:
        if isinstance(node, LBGP):
            rows = self._eval_bgp(node, stats)
        elif isinstance(node, LJoin):
            rows = self._join(self._eval(node.left, stats),
                              self._eval(node.right, stats),
                              set(node.left.possible),
                              set(node.right.possible))
        elif isinstance(node, LLeftJoin):
            rows = self._left_join(self._eval(node.left, stats),
                                   self._eval(node.right, stats),
                                   set(node.left.possible),
                                   set(node.right.possible))
        elif isinstance(node, LUnion):
            rows = (self._eval(node.left, stats)
                    + self._eval(node.right, stats))
        elif isinstance(node, LUnionAll):
            rows = []
            for branch in node.branches:
                rows.extend(self._eval(branch, stats))
        elif isinstance(node, LFilter):
            rows = [row for row in self._eval(node.child, stats)
                    if passes(node.expr, row)]
        else:
            raise TypeError(f"unknown logical node {node!r}")
        stats.intermediate_rows += len(rows)
        if (self.max_intermediate_rows is not None
                and stats.intermediate_rows > self.max_intermediate_rows):
            raise BudgetExceededError(
                f"naive evaluation exceeded "
                f"{self.max_intermediate_rows:,} intermediate rows")
        return rows

    def _eval_bgp(self, bgp: LBGP, stats: NaiveStats) -> list[Row]:
        rows: list[Row] = [{}]
        remaining = list(bgp.patterns)
        bound: set[Variable] = set()
        while remaining:
            tp = self._pick_next(remaining, bound)
            remaining.remove(tp)
            bound |= tp.variables()
            extended: list[Row] = []
            for row in rows:
                extended.extend(self._match(tp, row))
                self._guard_output(extended)
            rows = extended
            if not rows:
                return []
        return rows

    def _pick_next(self, remaining: Sequence[TriplePattern],
                   bound: set[Variable]) -> TriplePattern:
        """Selectivity-and-connectivity TP ordering (inner joins only)."""

        def cost(tp: TriplePattern) -> tuple[int, int]:
            connected = bool(tp.variables() & bound) or not bound
            estimate = self.graph.count(
                None if is_variable(tp.s) else tp.s,
                None if is_variable(tp.p) else tp.p,
                None if is_variable(tp.o) else tp.o)
            return (0 if connected else 1, estimate)

        return min(remaining, key=cost)

    def _match(self, tp: TriplePattern, row: Row) -> Iterator[Row]:
        s = row.get(tp.s) if is_variable(tp.s) else tp.s
        p = row.get(tp.p) if is_variable(tp.p) else tp.p
        o = row.get(tp.o) if is_variable(tp.o) else tp.o
        for triple in self.graph.match(s, p, o):
            bindings = dict(row)
            consistent = True
            for var, value in zip(tp, triple):
                if is_variable(var):
                    if var in bindings and bindings[var] != value:
                        consistent = False
                        break
                    bindings[var] = value
            if consistent:
                yield bindings

    # ------------------------------------------------------------------
    # join operators
    # ------------------------------------------------------------------

    def _compatible(self, left: Row, right: Row,
                    shared_schema: set[Variable]) -> bool:
        if self.null_intolerant:
            for var in shared_schema:
                if var not in left or var not in right:
                    return False
                if left[var] != right[var]:
                    return False
            return True
        for var in left.keys() & right.keys():
            if left[var] != right[var]:
                return False
        return True

    def _guard_pairs(self, left_count: int, right_count: int) -> None:
        """Bound nested-loop join work (inputs can each sit under the
        row budget while their product is combinatorial)."""
        if self.max_intermediate_rows is None:
            return
        if left_count * right_count > 8 * self.max_intermediate_rows:
            raise BudgetExceededError(
                f"naive nested-loop join over {left_count:,}x"
                f"{right_count:,} rows exceeds the work budget")

    def _guard_output(self, out: list[Row]) -> None:
        if (self.max_intermediate_rows is not None
                and len(out) > self.max_intermediate_rows):
            raise BudgetExceededError(
                f"naive join output exceeded "
                f"{self.max_intermediate_rows:,} rows")

    def _join(self, left_rows: list[Row], right_rows: list[Row],
              left_schema: set[Variable],
              right_schema: set[Variable]) -> list[Row]:
        shared = left_schema & right_schema
        out: list[Row] = []
        for left, right in self._pairs(left_rows, right_rows, shared):
            out.append({**left, **right})
            self._guard_output(out)
        return out

    def _left_join(self, left_rows: list[Row], right_rows: list[Row],
                   left_schema: set[Variable],
                   right_schema: set[Variable]) -> list[Row]:
        shared = left_schema & right_schema
        matched: dict[int, list[Row]] = {}
        for li, left in enumerate(left_rows):
            matched[li] = []
        if self._hashable(left_rows, right_rows, shared):
            index = self._build_index(right_rows, shared)
            for li, left in enumerate(left_rows):
                key = tuple(left[var] for var in sorted(shared))
                matched[li] = index.get(key, [])
        else:
            self._guard_pairs(len(left_rows), len(right_rows))
            for li, left in enumerate(left_rows):
                matched[li] = [right for right in right_rows
                               if self._compatible(left, right, shared)]
        out: list[Row] = []
        for li, left in enumerate(left_rows):
            if matched[li]:
                for right in matched[li]:
                    out.append({**left, **right})
                self._guard_output(out)
            else:
                out.append(dict(left))
        return out

    def _pairs(self, left_rows: list[Row], right_rows: list[Row],
               shared: set[Variable]) -> Iterator[tuple[Row, Row]]:
        if self._hashable(left_rows, right_rows, shared):
            index = self._build_index(right_rows, shared)
            for left in left_rows:
                key = tuple(left[var] for var in sorted(shared))
                for right in index.get(key, ()):
                    yield left, right
            return
        self._guard_pairs(len(left_rows), len(right_rows))
        for left in left_rows:
            for right in right_rows:
                if self._compatible(left, right, shared):
                    yield left, right

    def _hashable(self, left_rows: list[Row], right_rows: list[Row],
                  shared: set[Variable]) -> bool:
        """Hash joins apply when every row binds every shared variable."""
        if not shared:
            return False
        return (all(shared <= row.keys() for row in left_rows)
                and all(shared <= row.keys() for row in right_rows))

    @staticmethod
    def _build_index(rows: list[Row],
                     shared: set[Variable]) -> dict[tuple, list[Row]]:
        ordered = sorted(shared)
        index: dict[tuple, list[Row]] = {}
        for row in rows:
            key = tuple(row[var] for var in ordered)
            index.setdefault(key, []).append(row)
        return index
