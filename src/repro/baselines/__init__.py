"""Comparator engines: the naive oracle and the columnstore baseline."""

from .columnstore import ColumnStoreEngine, ColumnStoreStats
from .naive import NaiveEngine, NaiveStats

__all__ = ["ColumnStoreEngine", "ColumnStoreStats", "NaiveEngine",
           "NaiveStats"]
