"""Columnstore baseline — the Virtuoso comparator of §6.

Mirrors the execution model the paper benchmarks against:

* triples live in **per-predicate tables** ordered on (S, O) with an
  additional (O, S) projection — the MonetDB/Virtuoso setup of §6.1 —
  over a single global integer id space (the paper loads integer-valued
  triples into both systems);
* **inner joins** are hash joins reordered by estimated cardinality;
* **left-outer joins** are evaluated in the original nesting order, but
  when the master side is highly selective its join-key bindings are
  pushed into the slave block as a semi-join filter — the "combination
  of hash and bloom filters" the paper observed in Virtuoso's plans for
  LUBM Q4–Q6.

Join semantics are SQL null-intolerant, as in any relational RDF store.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence

from ..rdf.graph import Graph
from ..rdf.terms import NULL, Term, Variable, is_variable
from ..sparql.ast import (BGP, Filter, Join, LeftJoin, Pattern, Query,
                          TriplePattern, Union)
from ..sparql.expressions import passes
from ..sparql.parser import parse_query
from ..core.results import ResultSet, apply_solution_modifiers

#: master-side cardinality below which bindings are pushed into a slave
PUSHDOWN_THRESHOLD = 4096

Row = dict[Variable, int]


@dataclass
class ColumnStoreStats:
    """Timing and cardinality metrics of one execution."""

    t_total: float = 0.0
    intermediate_rows: int = 0
    pushdowns: int = 0


class ColumnStoreEngine:
    """Predicate-table columnstore with reordered hash joins."""

    def __init__(self, graph: Graph,
                 pushdown_threshold: int = PUSHDOWN_THRESHOLD) -> None:
        self.pushdown_threshold = pushdown_threshold
        self.last_stats = ColumnStoreStats()
        # single global id space, as when loading integer triples
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []
        so_tables: dict[int, list[tuple[int, int]]] = {}
        for s, p, o in graph:
            sid = self._intern(s)
            pid = self._intern(p)
            oid = self._intern(o)
            so_tables.setdefault(pid, []).append((sid, oid))
        for table in so_tables.values():
            table.sort()
        self._so = so_tables
        self._os = {pid: sorted((oid, sid) for sid, oid in table)
                    for pid, table in so_tables.items()}

    def _intern(self, term: Term) -> int:
        existing = self._ids.get(term)
        if existing is not None:
            return existing
        new_id = len(self._terms)
        self._ids[term] = new_id
        self._terms.append(term)
        return new_id

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, query: Query | str) -> ResultSet:
        started = time.perf_counter()
        if isinstance(query, str):
            query = parse_query(query)
        stats = ColumnStoreStats()
        rows = self._eval(query.pattern, stats, {})
        all_variables = tuple(sorted(query.pattern.variables()))
        tuples = []
        for row in rows:
            tuples.append(tuple(
                self._terms[row[var]] if var in row else NULL
                for var in all_variables))
        result = apply_solution_modifiers(
            ResultSet(all_variables, tuples), query)
        stats.t_total = time.perf_counter() - started
        self.last_stats = stats
        return result

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _eval(self, node: Pattern, stats: ColumnStoreStats,
              pushed: dict[Variable, set[int]]) -> list[Row]:
        if isinstance(node, BGP):
            rows = self._eval_bgp(node, stats, pushed)
        elif isinstance(node, Join):
            rows = self._hash_join(self._eval(node.left, stats, pushed),
                                   self._eval(node.right, stats, pushed),
                                   node.left.variables(),
                                   node.right.variables())
        elif isinstance(node, LeftJoin):
            rows = self._left_join(node, stats, pushed)
        elif isinstance(node, Union):
            rows = (self._eval(node.left, stats, pushed)
                    + self._eval(node.right, stats, pushed))
        elif isinstance(node, Filter):
            rows = [row for row in self._eval(node.pattern, stats, pushed)
                    if passes(node.expr, self._decode_row(row))]
        else:
            raise TypeError(f"unknown pattern node {node!r}")
        stats.intermediate_rows += len(rows)
        return rows

    def _decode_row(self, row: Row) -> dict[Variable, Term]:
        return {var: self._terms[value] for var, value in row.items()}

    def _left_join(self, node: LeftJoin, stats: ColumnStoreStats,
                   pushed: dict[Variable, set[int]]) -> list[Row]:
        left_rows = self._eval(node.left, stats, pushed)
        shared = node.left.variables() & node.right.variables()
        inner_pushed = dict(pushed)
        if (shared and left_rows
                and len(left_rows) <= self.pushdown_threshold):
            stats.pushdowns += 1
            for var in shared:
                values = {row[var] for row in left_rows if var in row}
                if var in inner_pushed:
                    values = values & inner_pushed[var]
                inner_pushed[var] = values
        right_rows = self._eval(node.right, stats, inner_pushed)
        return self._hash_left_join(left_rows, right_rows, shared)

    # ------------------------------------------------------------------
    # BGP access paths
    # ------------------------------------------------------------------

    def _eval_bgp(self, bgp: BGP, stats: ColumnStoreStats,
                  pushed: dict[Variable, set[int]]) -> list[Row]:
        rows: list[Row] = [{}]
        remaining = list(bgp.patterns)
        bound: set[Variable] = set()
        while remaining:
            tp = min(remaining, key=lambda t: (
                0 if (t.variables() & bound or not bound) else 1,
                self._estimate(t)))
            remaining.remove(tp)
            bound |= tp.variables()
            extended: list[Row] = []
            for row in rows:
                extended.extend(self._scan(tp, row, pushed))
            rows = extended
            if not rows:
                return []
        return rows

    def _estimate(self, tp: TriplePattern) -> int:
        if is_variable(tp.p):
            return sum(len(table) for table in self._so.values())
        pid = self._ids.get(tp.p)
        if pid is None or pid not in self._so:
            return 0
        table = self._so[pid]
        if not is_variable(tp.s):
            sid = self._ids.get(tp.s)
            return 0 if sid is None else _range_count(table, sid)
        if not is_variable(tp.o):
            oid = self._ids.get(tp.o)
            return (0 if oid is None
                    else _range_count(self._os[pid], oid))
        return len(table)

    def _scan(self, tp: TriplePattern, row: Row,
              pushed: dict[Variable, set[int]]) -> list[Row]:
        """Index scan of one TP under the current row's bindings."""
        if is_variable(tp.p):
            pids = list(self._so)
            if tp.p in row:
                pids = [row[tp.p]] if row[tp.p] in self._so else []
        else:
            pid = self._ids.get(tp.p)
            pids = [pid] if pid is not None and pid in self._so else []

        out: list[Row] = []
        for pid in pids:
            for sid, oid in self._scan_table(pid, tp, row):
                bindings = dict(row)
                ok = True
                for var, value in zip(tp, (sid, pid, oid)):
                    if not is_variable(var):
                        continue
                    if var in bindings and bindings[var] != value:
                        ok = False
                        break
                    allowed = pushed.get(var)
                    if allowed is not None and value not in allowed:
                        ok = False
                        break
                    bindings[var] = value
                if ok:
                    out.append(bindings)
        return out

    def _scan_table(self, pid: int, tp: TriplePattern,
                    row: Row) -> Sequence[tuple[int, int]]:
        sid = None
        oid = None
        if is_variable(tp.s):
            sid = row.get(tp.s)
        else:
            sid = self._ids.get(tp.s)
            if sid is None:
                return []
        if is_variable(tp.o):
            oid = row.get(tp.o)
        else:
            oid = self._ids.get(tp.o)
            if oid is None:
                return []
        table = self._so[pid]
        if sid is not None:
            rows = _range(table, sid)
            if oid is not None:
                return [(s, o) for s, o in rows if o == oid]
            return rows
        if oid is not None:
            return [(s, o) for o, s in _range(self._os[pid], oid)]
        return table

    # ------------------------------------------------------------------
    # SQL-style joins (null-intolerant)
    # ------------------------------------------------------------------

    @staticmethod
    def _hash_join(left_rows: list[Row], right_rows: list[Row],
                   left_schema: set[Variable],
                   right_schema: set[Variable]) -> list[Row]:
        shared = sorted(left_schema & right_schema)
        if not shared:
            return [{**l, **r} for l in left_rows for r in right_rows]
        index: dict[tuple, list[Row]] = {}
        for right in right_rows:
            if any(var not in right for var in shared):
                continue  # SQL: NULL join keys never match
            key = tuple(right[var] for var in shared)
            index.setdefault(key, []).append(right)
        out: list[Row] = []
        for left in left_rows:
            if any(var not in left for var in shared):
                continue
            key = tuple(left[var] for var in shared)
            for right in index.get(key, ()):
                out.append({**left, **right})
        return out

    @staticmethod
    def _hash_left_join(left_rows: list[Row], right_rows: list[Row],
                        shared: set[Variable]) -> list[Row]:
        ordered = sorted(shared)
        index: dict[tuple, list[Row]] = {}
        for right in right_rows:
            if any(var not in right for var in ordered):
                continue
            key = tuple(right[var] for var in ordered)
            index.setdefault(key, []).append(right)
        out: list[Row] = []
        for left in left_rows:
            matches: list[Row]
            if any(var not in left for var in ordered):
                matches = []  # SQL: NULL keys match nothing
            else:
                key = tuple(left[var] for var in ordered)
                matches = index.get(key, []) if ordered else right_rows
            if matches:
                for right in matches:
                    out.append({**left, **right})
            else:
                out.append(dict(left))
        return out


def _range(table: list[tuple[int, int]],
           key: int) -> list[tuple[int, int]]:
    lo = bisect_left(table, (key, -1))
    hi = bisect_left(table, (key + 1, -1))
    return table[lo:hi]


def _range_count(table: list[tuple[int, int]], key: int) -> int:
    return len(_range(table, key))
