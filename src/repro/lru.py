"""A small bounded LRU cache used by the hot-path caching layers.

Every cache the engine keeps — per-predicate BitMats, P-S/P-O rows,
decoded terms, compiled query plans — is an :class:`LRUCache`, so
memory stays bounded no matter how diverse the workload is, while a
repeated-template workload (the shape production traffic has) keeps its
working set resident.  The implementation rides on the insertion order
of ``dict``: a hit re-inserts the key, a miss on a full cache evicts
the oldest entry.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")

#: Returned by :meth:`LRUCache.get` on a miss (None is a valid value).
_MISSING = object()


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    A ``capacity`` of 0 disables caching entirely (every ``get`` misses,
    ``put`` is a no-op), which keeps ablation switches trivial.
    """

    __slots__ = ("capacity", "_data", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("LRU capacity must be non-negative")
        self.capacity = capacity
        self._data: dict[K, V] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K, default: object = None) -> object:
        """Value for *key* (marking it recently used), or *default*."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        # re-insertion moves the key to the most-recent end
        del self._data[key]
        self._data[key] = value
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh *key*, evicting the oldest entry when full."""
        if self.capacity == 0:
            return
        if key in self._data:
            del self._data[key]
        elif len(self._data) >= self.capacity:
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.evictions += 1
        self._data[key] = value

    def __contains__(self, key: K) -> bool:
        """Membership test; does not affect recency."""
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size and capacity."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._data),
                "capacity": self.capacity}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LRUCache({len(self._data)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")
