"""Bounded LRU caches used by the hot-path caching layers.

Every cache the engine keeps — per-predicate BitMats, P-S/P-O rows,
decoded terms, compiled query plans — is an :class:`LRUCache`, so
memory stays bounded no matter how diverse the workload is, while a
repeated-template workload (the shape production traffic has) keeps its
working set resident.  The implementation rides on the insertion order
of ``dict``: a hit re-inserts the key, a miss on a full cache evicts
the oldest entry.

:class:`LRUCache` is deliberately lock-free and belongs to exactly one
thread (a ``get`` mutates recency order).  The concurrent query service
publishes *shared* caches — the plan cache, the store's BitMat caches,
the decode memo — as :class:`StripedLRUCache`: the same interface, with
keys hashed across independently locked stripes so concurrent hits on
different stripes never contend on one lock.
"""

from __future__ import annotations

import threading
from typing import Generic, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")

#: Returned by :meth:`LRUCache.get` on a miss (None is a valid value).
_MISSING = object()


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    A ``capacity`` of 0 disables caching entirely (every ``get`` misses,
    ``put`` is a no-op), which keeps ablation switches trivial.
    """

    __slots__ = ("capacity", "_data", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("LRU capacity must be non-negative")
        self.capacity = capacity
        self._data: dict[K, V] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K, default: object = None) -> object:
        """Value for *key* (marking it recently used), or *default*."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        # re-insertion moves the key to the most-recent end
        del self._data[key]
        self._data[key] = value
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh *key*, evicting the oldest entry when full."""
        if self.capacity == 0:
            return
        if key in self._data:
            del self._data[key]
        elif len(self._data) >= self.capacity:
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.evictions += 1
        self._data[key] = value

    def __contains__(self, key: K) -> bool:
        """Membership test; does not affect recency."""
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size and capacity."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._data),
                "capacity": self.capacity}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LRUCache({len(self._data)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")


class StripedLRUCache(Generic[K, V]):
    """Thread-safe LRU cache built from independently locked stripes.

    A key hashes to one stripe; each stripe is a plain :class:`LRUCache`
    guarded by its own lock, so two threads touching different stripes
    never serialize.  Capacity is divided across the stripes (rounded
    up), and eviction is per-stripe — close enough to global LRU for
    cache-sized workloads while keeping the critical sections tiny.

    A ``capacity`` of 0 disables caching entirely, matching
    :class:`LRUCache` semantics.
    """

    __slots__ = ("capacity", "num_stripes", "_stripes", "_locks")

    def __init__(self, capacity: int, num_stripes: int = 8) -> None:
        if capacity < 0:
            raise ValueError("LRU capacity must be non-negative")
        if num_stripes < 1:
            raise ValueError("at least one stripe required")
        # never spread a tiny capacity so thin that stripes round to
        # capacity-1 entries each being the whole cache
        num_stripes = max(1, min(num_stripes, capacity or 1))
        per_stripe = -(-capacity // num_stripes) if capacity else 0
        self.capacity = per_stripe * num_stripes
        self.num_stripes = num_stripes
        self._stripes: list[LRUCache[K, V]] = [
            LRUCache(per_stripe) for _ in range(num_stripes)]
        self._locks = [threading.Lock() for _ in range(num_stripes)]

    def _index(self, key: K) -> int:
        return hash(key) % self.num_stripes

    def get(self, key: K, default: object = None) -> object:
        """Value for *key* (marking it recently used), or *default*."""
        index = self._index(key)
        with self._locks[index]:
            return self._stripes[index].get(key, default)

    def put(self, key: K, value: V) -> None:
        """Insert/refresh *key*, evicting within its stripe when full."""
        index = self._index(key)
        with self._locks[index]:
            self._stripes[index].put(key, value)

    def __contains__(self, key: K) -> bool:
        index = self._index(key)
        with self._locks[index]:
            return key in self._stripes[index]

    def __len__(self) -> int:
        return sum(len(stripe) for stripe in self._stripes)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        for index, stripe in enumerate(self._stripes):
            with self._locks[index]:
                stripe.clear()

    def stats(self) -> dict[str, int]:
        """Aggregated hit/miss/eviction counters across all stripes."""
        totals = {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
        for index, stripe in enumerate(self._stripes):
            with self._locks[index]:
                for field, value in stripe.stats().items():
                    if field != "capacity":
                        totals[field] += value
        totals["capacity"] = self.capacity
        totals["stripes"] = self.num_stripes
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StripedLRUCache({len(self)}/{self.capacity}, "
                f"stripes={self.num_stripes})")
