"""RDF substrate: terms, dictionary encoding, triple store, N-Triples I/O."""

from .dictionary import Dictionary, IdTriple
from .graph import Graph
from .namespace import (DEFAULT_PREFIXES, FOAF, GEO, GEORSS, OWL, RDF, RDFS,
                        SKOS, XSD, Namespace)
from .terms import (NULL, BNode, Literal, PatternTerm, Term, Triple, URI,
                    Variable, is_ground, is_variable)
from . import ntriples

__all__ = [
    "BNode", "DEFAULT_PREFIXES", "Dictionary", "FOAF", "GEO", "GEORSS",
    "Graph", "IdTriple", "Literal", "NULL", "Namespace", "OWL",
    "PatternTerm", "RDF", "RDFS", "SKOS", "Term", "Triple", "URI",
    "Variable", "XSD", "is_ground", "is_variable", "ntriples",
]
