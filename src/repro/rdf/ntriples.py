"""N-Triples reader/writer (W3C RDF 1.1 N-Triples, reference [8] of the paper).

Supports the full term syntax needed by the datasets in this repository:
IRIs, blank nodes, and literals with escapes, language tags, and datatype
IRIs.  Comments (``# ...``) and blank lines are skipped.
"""

from __future__ import annotations

import io
import re
from typing import Iterable, Iterator, TextIO

from ..exceptions import ParseError
from .graph import Graph
from .terms import BNode, Literal, Term, Triple, URI

_IRI = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_BNODE = r"_:([A-Za-z0-9][A-Za-z0-9_.-]*)"
_STRING = r'"((?:[^"\\\n\r]|\\.)*)"'
_LANG = r"@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)"

_SUBJECT = re.compile(rf"\s*(?:{_IRI}|{_BNODE})")
_PREDICATE = re.compile(rf"\s*{_IRI}")
_OBJECT = re.compile(
    rf"\s*(?:{_IRI}|{_BNODE}|{_STRING}(?:{_LANG}|\^\^{_IRI})?)")
_END = re.compile(r"\s*\.\s*(?:#.*)?$")

_UNESCAPES = {
    "t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f",
    '"': '"', "'": "'", "\\": "\\",
}


def _unescape(value: str) -> str:
    """Resolve ``\\uXXXX``/``\\UXXXXXXXX`` and single-char escapes."""
    if "\\" not in value:
        return value
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        code = value[i + 1]
        if code == "u":
            out.append(chr(int(value[i + 2:i + 6], 16)))
            i += 6
        elif code == "U":
            out.append(chr(int(value[i + 2:i + 10], 16)))
            i += 10
        elif code in _UNESCAPES:
            out.append(_UNESCAPES[code])
            i += 2
        else:
            raise ParseError(f"invalid escape '\\{code}' in literal")
    return "".join(out)


def parse_line(line: str, lineno: int | None = None) -> Triple | None:
    """Parse one N-Triples line; returns None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None

    match = _SUBJECT.match(line)
    if not match:
        raise ParseError("expected IRI or blank node subject", lineno)
    subject: Term = (URI(_unescape(match.group(1)))
                     if match.group(1) is not None
                     else BNode(match.group(2)))
    pos = match.end()

    match = _PREDICATE.match(line, pos)
    if not match:
        raise ParseError("expected IRI predicate", lineno)
    predicate = URI(_unescape(match.group(1)))
    pos = match.end()

    match = _OBJECT.match(line, pos)
    if not match:
        raise ParseError("expected IRI, blank node, or literal object",
                         lineno)
    iri, bnode, string, lang, datatype = match.groups()
    obj: Term
    if iri is not None:
        obj = URI(_unescape(iri))
    elif bnode is not None:
        obj = BNode(bnode)
    else:
        obj = Literal(_unescape(string),
                      datatype=_unescape(datatype) if datatype else None,
                      language=lang)
    pos = match.end()

    if not _END.match(line, pos):
        raise ParseError("expected '.' terminating the triple", lineno)
    return Triple(subject, predicate, obj)


def parse(source: str | TextIO) -> Iterator[Triple]:
    """Yield triples from an N-Triples string or text stream."""
    stream: TextIO = io.StringIO(source) if isinstance(source, str) else source
    for lineno, line in enumerate(stream, start=1):
        triple = parse_line(line, lineno)
        if triple is not None:
            yield triple


def load(path: str, graph: Graph | None = None) -> Graph:
    """Load an N-Triples file into *graph* (a new one by default)."""
    graph = graph if graph is not None else Graph()
    with open(path, encoding="utf-8") as handle:
        graph.add_all(parse(handle))
    return graph


def serialize(triples: Iterable[Triple]) -> str:
    """Serialize triples to N-Triples text (one triple per line)."""
    return "".join(triple.n3 + "\n" for triple in triples)


def dump(triples: Iterable[Triple], path: str) -> int:
    """Write triples to *path*; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(triple.n3 + "\n")
            count += 1
    return count
