"""Namespace helpers and well-known RDF vocabularies.

A :class:`Namespace` builds :class:`~repro.rdf.terms.URI` terms by
attribute or item access::

    UB = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")
    UB.takesCourse        # URI(".../univ-bench.owl#takesCourse")
    UB["GraduateStudent"] # same idea for names that are not identifiers
"""

from __future__ import annotations

from .terms import URI


class Namespace(str):
    """A URI prefix that mints full URIs on attribute/item access."""

    __slots__ = ()

    def __getattr__(self, name: str) -> URI:
        if name.startswith("__"):  # keep pickling & friends working
            raise AttributeError(name)
        return URI(str(self) + name)

    def __getitem__(self, name) -> URI:
        return URI(str(self) + str(name))

    def term(self, name: str) -> URI:
        """Explicit spelling of attribute access."""
        return URI(str(self) + name)


#: Core W3C vocabularies used by the paper's queries (Appendix E).
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")
GEO = Namespace("http://www.w3.org/2003/01/geo/wgs84_pos#")
GEORSS = Namespace("http://www.georss.org/georss/")

#: Prefixes preloaded by the SPARQL parser; queries may override them.
DEFAULT_PREFIXES: dict[str, str] = {
    "rdf": str(RDF),
    "rdfs": str(RDFS),
    "xsd": str(XSD),
    "owl": str(OWL),
    "foaf": str(FOAF),
    "skos": str(SKOS),
    "geo": str(GEO),
    "georss": str(GEORSS),
}
