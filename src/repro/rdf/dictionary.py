"""Dictionary encoding of RDF terms with shared subject/object ids.

Implements the mapping of Appendix D of the paper: if ``Vs``, ``Vp``,
``Vo`` are the distinct subject, predicate, and object values of a
dataset and ``Vso = Vs ∩ Vo``, then

* ``Vso``       → ids ``1 .. |Vso|``          (same id on both dimensions),
* ``Vs − Vso``  → ids ``|Vso|+1 .. |Vs|``     (subject dimension),
* ``Vo − Vso``  → ids ``|Vso|+1 .. |Vo|``     (object dimension),
* ``Vp``        → ids ``1 .. |Vp|``           (predicate dimension).

The common assignment of ``Vso`` is what makes S-O joins a plain integer
equality between a subject id and an object id.  Ids are 1-based as in
the paper; id ``0`` is never assigned.

The dictionary is deterministic: terms are assigned ids in sorted order,
so the same dataset always produces the same encoding (important for
reproducible benchmarks and for on-disk index compatibility).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..exceptions import DictionaryError
from ..lru import LRUCache, StripedLRUCache
from .terms import Literal, Term, Triple

#: Encoded triple: (subject id, predicate id, object id).
IdTriple = tuple[int, int, int]

#: Bound on the memoized (space, id) → Term decode cache.
DECODE_CACHE_SIZE = 65536


def _sort_key(term: Term) -> tuple[int, str, str, str]:
    """Stable total order over heterogeneous terms.

    Groups by type first so URIs, blank nodes, and literals never compare
    by string content across types, then orders literals by value,
    datatype, and language.
    """
    datatype = getattr(term, "datatype", None) or ""
    language = getattr(term, "language", None) or ""
    type_rank = 0 if not isinstance(term, Literal) else 1
    return (type_rank, str(term), datatype, language)


class Dictionary:
    """Bidirectional term ↔ integer-id mapping with shared S/O ids."""

    def __init__(self) -> None:
        self._s_ids: dict[Term, int] = {}
        self._o_ids: dict[Term, int] = {}
        self._p_ids: dict[Term, int] = {}
        self._s_terms: list[Term | None] = [None]  # index 0 unused
        self._o_terms: list[Term | None] = [None]
        self._p_terms: list[Term | None] = [None]
        self._num_so = 0  # |Vso|
        #: memoized (space, id) → Term decode results, for the result
        #: emission hot path (repeated queries re-decode the same ids)
        self._decode_cache: LRUCache[tuple[str, int], Term] = (
            LRUCache(DECODE_CACHE_SIZE))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "Dictionary":
        """Build a dictionary covering every term of *triples*."""
        subjects: set[Term] = set()
        predicates: set[Term] = set()
        objects: set[Term] = set()
        for s, p, o in triples:
            subjects.add(s)
            predicates.add(p)
            objects.add(o)
        return cls.from_term_sets(subjects, predicates, objects)

    @classmethod
    def from_term_sets(cls, subjects: set[Term], predicates: set[Term],
                       objects: set[Term]) -> "Dictionary":
        """Build a dictionary from explicit S/P/O term sets."""
        dictionary = cls()
        shared = subjects & objects
        for term in sorted(shared, key=_sort_key):
            dictionary._add_shared(term)
        for term in sorted(subjects - shared, key=_sort_key):
            dictionary._add_subject_only(term)
        for term in sorted(objects - shared, key=_sort_key):
            dictionary._add_object_only(term)
        for term in sorted(predicates, key=_sort_key):
            dictionary._add_predicate(term)
        return dictionary

    def _add_shared(self, term: Term) -> None:
        next_id = len(self._s_terms)
        if next_id != len(self._o_terms):
            raise DictionaryError("shared terms must be added first")
        self._s_ids[term] = next_id
        self._o_ids[term] = next_id
        self._s_terms.append(term)
        self._o_terms.append(term)
        self._num_so = next_id

    def _add_subject_only(self, term: Term) -> None:
        self._s_ids[term] = len(self._s_terms)
        self._s_terms.append(term)

    def _add_object_only(self, term: Term) -> None:
        self._o_ids[term] = len(self._o_terms)
        self._o_terms.append(term)

    def _add_predicate(self, term: Term) -> None:
        self._p_ids[term] = len(self._p_terms)
        self._p_terms.append(term)

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------

    @property
    def num_subjects(self) -> int:
        """|Vs| — highest subject id."""
        return len(self._s_terms) - 1

    @property
    def num_objects(self) -> int:
        """|Vo| — highest object id."""
        return len(self._o_terms) - 1

    @property
    def num_predicates(self) -> int:
        """|Vp| — highest predicate id."""
        return len(self._p_terms) - 1

    @property
    def num_shared(self) -> int:
        """|Vso| — ids ``1..num_shared`` mean the same term on S and O."""
        return self._num_so

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def subject_id(self, term: Term) -> int | None:
        """Subject-dimension id of *term*, or None if it never appears as S."""
        return self._s_ids.get(term)

    def object_id(self, term: Term) -> int | None:
        """Object-dimension id of *term*, or None if it never appears as O."""
        return self._o_ids.get(term)

    def predicate_id(self, term: Term) -> int | None:
        """Predicate-dimension id of *term*, or None."""
        return self._p_ids.get(term)

    def encode_triple(self, triple: Triple) -> IdTriple:
        """Encode a ground triple; raises if any term is unknown."""
        sid = self._s_ids.get(triple.s)
        pid = self._p_ids.get(triple.p)
        oid = self._o_ids.get(triple.o)
        if sid is None or pid is None or oid is None:
            raise DictionaryError(f"triple contains unknown terms: {triple}")
        return (sid, pid, oid)

    def encode_triples(self, triples: Iterable[Triple]) -> Iterator[IdTriple]:
        """Encode many triples (see :meth:`encode_triple`)."""
        for triple in triples:
            yield self.encode_triple(triple)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def subject_term(self, sid: int) -> Term:
        """Term for a subject-dimension id."""
        try:
            term = self._s_terms[sid]
        except IndexError:
            term = None
        if sid <= 0 or term is None:
            raise DictionaryError(f"unknown subject id {sid}")
        return term

    def object_term(self, oid: int) -> Term:
        """Term for an object-dimension id."""
        try:
            term = self._o_terms[oid]
        except IndexError:
            term = None
        if oid <= 0 or term is None:
            raise DictionaryError(f"unknown object id {oid}")
        return term

    def predicate_term(self, pid: int) -> Term:
        """Term for a predicate-dimension id."""
        try:
            term = self._p_terms[pid]
        except IndexError:
            term = None
        if pid <= 0 or term is None:
            raise DictionaryError(f"unknown predicate id {pid}")
        return term

    def term_table(self, space: str) -> list:
        """The raw id → term list for *space* (index 0 unused).

        The columnar result decoder indexes this directly — one C-level
        list index per distinct id instead of a memo-cache round trip
        per id.  Entries are ``None`` only for ids no store can emit.
        """
        if space == "s":
            return self._s_terms
        if space == "o":
            return self._o_terms
        if space == "p":
            return self._p_terms
        raise DictionaryError(f"unknown id space {space!r}")

    def decode(self, space: str, value: int) -> Term:
        """Memoized term lookup for a ``(space, id)`` binding.

        Ids in the shared ``V_so`` region decode to the *same* term
        whether asked via ``'s'`` or ``'o'`` (Appendix D); the cache
        keys on the space so both entries stay correct independently.
        """
        key = (space, value)
        term = self._decode_cache.get(key)
        if term is None:
            if space == "s":
                term = self.subject_term(value)
            elif space == "o":
                term = self.object_term(value)
            elif space == "p":
                term = self.predicate_term(value)
            else:
                raise DictionaryError(f"unknown id space {space!r}")
            self._decode_cache.put(key, term)
        return term

    def decode_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the decode cache."""
        return self._decode_cache.stats()

    def freeze(self) -> None:
        """Swap the decode memo for a lock-striped cache.

        Called by :meth:`repro.bitmat.store.BitMatStore.freeze` at
        snapshot publication: the term tables themselves are already
        immutable after construction, so the memo is the dictionary's
        only concurrently mutated state.
        """
        if not isinstance(self._decode_cache, StripedLRUCache):
            self._decode_cache = StripedLRUCache(DECODE_CACHE_SIZE)

    def decode_triple(self, id_triple: IdTriple) -> Triple:
        """Inverse of :meth:`encode_triple`."""
        sid, pid, oid = id_triple
        return Triple(self.subject_term(sid), self.predicate_term(pid),
                      self.object_term(oid))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def is_shared_id(self, term_id: int) -> bool:
        """True when *term_id* denotes the same term on S and O dims."""
        return 1 <= term_id <= self._num_so

    def __len__(self) -> int:
        """Number of distinct terms across all three dimensions."""
        distinct_so = (self.num_subjects + self.num_objects - self.num_shared)
        return distinct_so + self.num_predicates

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Dictionary(|Vs|={self.num_subjects}, |Vp|="
                f"{self.num_predicates}, |Vo|={self.num_objects}, "
                f"|Vso|={self.num_shared})")
