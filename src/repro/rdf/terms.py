"""RDF term model: URIs, literals, blank nodes, variables, and triples.

RDF data is a directed edge-labeled multigraph whose edges are
``(subject, predicate, object)`` triples (paper §1).  Terms are immutable
and hashable so they can serve as dictionary keys throughout the engine.

Unlike relational tables, RDF graphs contain no NULLs (paper §2.2); the
:data:`NULL` sentinel below exists only in *query results*, where a
left-outer-join may fail to bind variables of an OPTIONAL pattern.
"""

from __future__ import annotations

from typing import NamedTuple, Union


class URI(str):
    """An IRI reference, e.g. ``URI("http://example.org/actedIn")``.

    Subclasses :class:`str` so URIs are cheap, hashable, and sortable.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{str(self)}>"

    @property
    def n3(self) -> str:
        """N-Triples serialization of this term."""
        return f"<{str(self)}>"


class BNode(str):
    """A blank node identifier, e.g. ``BNode("b0")``.

    Blank nodes identify entities without distinct URIs; in queries they
    behave like URIs (paper §2.2), which is why they share the plain-string
    representation.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_:{str(self)}"

    @property
    def n3(self) -> str:
        return f"_:{str(self)}"


class Literal(str):
    """An RDF literal.

    The lexical form is the string value itself; an optional datatype URI
    or language tag is carried alongside.  Two literals are equal when
    their lexical form, datatype, and language all match.
    """

    __slots__ = ("datatype", "language")

    def __new__(cls, value: str, datatype: str | None = None,
                language: str | None = None):
        obj = super().__new__(cls, value)
        obj.datatype = datatype
        obj.language = language
        return obj

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Literal):
            return (str(self) == str(other)
                    and self.datatype == other.datatype
                    and self.language == other.language)
        if isinstance(other, str) and not isinstance(other, (URI, BNode)):
            return str(self) == other and not self.datatype and not self.language
        return False

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((str(self), self.datatype, self.language))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.n3

    @property
    def n3(self) -> str:
        escaped = (str(self).replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\r", "\\r")
                   .replace("\t", "\\t"))
        base = f'"{escaped}"'
        if self.language:
            return f"{base}@{self.language}"
        if self.datatype:
            return f"{base}^^<{self.datatype}>"
        return base


class Variable(str):
    """A SPARQL variable, stored without the leading ``?``/``$``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"?{str(self)}"

    @property
    def n3(self) -> str:
        return f"?{str(self)}"


#: Terms that may appear in RDF data (not in queries).
Term = Union[URI, BNode, Literal]

#: Terms that may appear in a triple pattern.
PatternTerm = Union[URI, BNode, Literal, Variable]


class _Null:
    """Singleton marker for an unbound variable in a query result row.

    Produced only by left-outer-joins; compares unequal to every term and
    to itself being falsy makes ``if binding:`` read naturally.
    """

    _instance: "_Null | None" = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):  # keep singleton identity across pickling
        return (_Null, ())


#: The unique NULL sentinel used in result rows.
NULL = _Null()


class Triple(NamedTuple):
    """An RDF triple ``(s, p, o)``."""

    s: Term
    p: Term
    o: Term

    @property
    def n3(self) -> str:
        return f"{_term_n3(self.s)} {_term_n3(self.p)} {_term_n3(self.o)} ."


def _term_n3(term: Term) -> str:
    """N-Triples form of a term, tolerating plain strings in tests."""
    if isinstance(term, (URI, BNode, Literal)):
        return term.n3
    return Literal(str(term)).n3


def is_variable(term: object) -> bool:
    """True when *term* is a SPARQL variable."""
    return isinstance(term, Variable)


def is_ground(term: object) -> bool:
    """True when *term* is a concrete RDF term (URI, blank node, literal)."""
    return isinstance(term, (URI, BNode, Literal)) and not isinstance(term, Variable)
