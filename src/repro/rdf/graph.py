"""In-memory RDF triple store with pattern-matching indexes.

:class:`Graph` is the substrate every engine in this repository reads
from: the naive oracle and the columnstore baseline query it directly,
and :class:`~repro.bitmat.store.BitMatStore` builds its compressed
indexes from it.

The store keeps three permutation indexes (SPO, POS, OSP as nested
dictionaries) so that any triple pattern with at least one ground term
is answered without a full scan — the textbook design the paper's
comparators (Virtuoso/MonetDB predicate tables) share.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .terms import Term, Triple


class Graph:
    """A set of RDF triples with S/P/O lookup indexes."""

    def __init__(self, triples: Iterable[Triple] | None = None) -> None:
        self._triples: set[Triple] = set()
        # index[s][p] -> set of o, and the two rotations
        self._spo: dict[Term, dict[Term, set[Term]]] = {}
        self._pos: dict[Term, dict[Term, set[Term]]] = {}
        self._osp: dict[Term, dict[Term, set[Term]]] = {}
        if triples is not None:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple | tuple[Term, Term, Term]) -> bool:
        """Add a triple; returns False when it was already present."""
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        if triple in self._triples:
            return False
        self._triples.add(triple)
        s, p, o = triple
        self._spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        return True

    def add_all(self, triples: Iterable[Triple | tuple]) -> int:
        """Add many triples; returns how many were new."""
        return sum(1 for triple in triples if self.add(triple))

    def discard(self, triple: Triple | tuple[Term, Term, Term]) -> bool:
        """Remove a triple if present; returns True when removed."""
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        s, p, o = triple
        self._prune_index(self._spo, s, p, o)
        self._prune_index(self._pos, p, o, s)
        self._prune_index(self._osp, o, s, p)
        return True

    @staticmethod
    def _prune_index(index: dict, a: Term, b: Term, c: Term) -> None:
        level = index[a]
        level[b].discard(c)
        if not level[b]:
            del level[b]
        if not level:
            del index[a]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def __contains__(self, triple: Triple | tuple) -> bool:
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def match(self, s: Term | None = None, p: Term | None = None,
              o: Term | None = None) -> Iterator[Triple]:
        """Yield triples matching the pattern; ``None`` is a wildcard."""
        if s is not None and p is not None and o is not None:
            if Triple(s, p, o) in self._triples:
                yield Triple(s, p, o)
            return
        if s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield Triple(s, p, obj)
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield Triple(subj, p, o)
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield Triple(s, pred, o)
            return
        if s is not None:
            for pred, objects in self._spo.get(s, {}).items():
                for obj in objects:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            for subj, predicates in self._osp.get(o, {}).items():
                for pred in predicates:
                    yield Triple(subj, pred, o)
            return
        yield from self._triples

    def count(self, s: Term | None = None, p: Term | None = None,
              o: Term | None = None) -> int:
        """Number of triples matching the pattern (cheap for common cases)."""
        if s is None and p is None and o is None:
            return len(self._triples)
        if s is None and o is None and p is not None:
            return sum(len(subs) for subs in self._pos.get(p, {}).values())
        if p is None and o is None and s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if s is None and p is None and o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return sum(1 for _ in self.match(s, p, o))

    # ------------------------------------------------------------------
    # dimension statistics (Table 6.1 metrics)
    # ------------------------------------------------------------------

    def subjects(self) -> set[Term]:
        """Distinct subject terms."""
        return set(self._spo)

    def predicates(self) -> set[Term]:
        """Distinct predicate terms."""
        return set(self._pos)

    def objects(self) -> set[Term]:
        """Distinct object terms."""
        return set(self._osp)

    def predicate_counts(self) -> dict[Term, int]:
        """Triples per predicate — the selectivity statistic engines use."""
        return {p: sum(len(subs) for subs in by_o.values())
                for p, by_o in self._pos.items()}

    def characteristics(self) -> dict[str, int]:
        """The four Table 6.1 columns for this graph."""
        return {
            "triples": len(self),
            "subjects": len(self._spo),
            "predicates": len(self._pos),
            "objects": len(self._osp),
        }
