"""Render benchmark reports in the layout of the paper's tables."""

from __future__ import annotations

from typing import Sequence

from .harness import QueryReport, SuiteReport


def _fmt_time(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 0.01:
        return f"{value * 1000:.2f}ms"
    return f"{value:.3f}"


def format_characteristics_table(
        suites: Sequence[SuiteReport]) -> str:
    """Table 6.1: dataset characteristics."""
    header = (f"{'Dataset':<10} {'#triples':>12} {'#S':>10} {'#P':>8} "
              f"{'#O':>10}")
    lines = [header, "-" * len(header)]
    for suite in suites:
        chars = suite.characteristics
        lines.append(f"{suite.dataset:<10} {chars['triples']:>12,} "
                     f"{chars['subjects']:>10,} {chars['predicates']:>8,} "
                     f"{chars['objects']:>10,}")
    return "\n".join(lines)


def format_query_table(suite: SuiteReport) -> str:
    """One of Tables 6.2–6.4 (best total time per row starred)."""
    header = (f"{'':<4} {'Tplan':>8} {'Tinit':>8} {'Tprune':>8} "
              f"{'Ttotal':>9} "
              f"{'Tnaive':>9} {'Tcol':>9} {'#initial':>10} {'#pruned':>10} "
              f"{'#results':>9} {'#nulls':>8} {'best-match':>10}")
    lines = [f"{suite.dataset} — query processing times (seconds, "
             f"warm cache, averaged)",
             header, "-" * len(header)]
    for report in suite.queries:
        times = {"lbr": report.t_lbr, "naive": report.t_naive,
                 "col": report.t_columnstore}
        valid = {k: v for k, v in times.items() if v is not None}
        best = min(valid, key=valid.get) if valid else ""

        def cell(engine: str, value: float | None) -> str:
            text = _fmt_time(value)
            return f"{text}*" if engine == best else text

        lines.append(
            f"{report.query:<4} {_fmt_time(report.t_plan):>8} "
            f"{_fmt_time(report.t_init):>8} "
            f"{_fmt_time(report.t_prune):>8} "
            f"{cell('lbr', report.t_lbr):>9} "
            f"{cell('naive', report.t_naive):>9} "
            f"{cell('col', report.t_columnstore):>9} "
            f"{report.initial_triples:>10,} "
            f"{report.triples_after_pruning:>10,} "
            f"{report.num_results:>9,} {report.results_with_nulls:>8,} "
            f"{'Yes' if report.best_match_required else 'No':>10}")
    return "\n".join(lines)


def format_geomean_table(suites: Sequence[SuiteReport]) -> str:
    """The §6.2 per-dataset geometric means."""
    header = (f"{'Dataset':<10} {'LBR':>10} {'Naive':>10} "
              f"{'Columnstore':>12}")
    lines = ["Geometric means of query times (seconds)", header,
             "-" * len(header)]
    for suite in suites:
        means = suite.geometric_means()
        lines.append(
            f"{suite.dataset:<10} {_fmt_time(means.get('lbr')):>10} "
            f"{_fmt_time(means.get('naive')):>10} "
            f"{_fmt_time(means.get('columnstore')):>12}")
    return "\n".join(lines)


def format_verification(reports: Sequence[QueryReport]) -> str:
    """One line per query: did LBR match the oracle bag-exactly?"""
    lines = []
    for report in reports:
        status = {True: "OK", False: "MISMATCH", None: "unchecked"}
        lines.append(f"{report.dataset} {report.query}: "
                     f"{status[report.verified]}")
    return "\n".join(lines)
