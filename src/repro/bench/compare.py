"""Benchmark regression gate: current hot-path run vs. the baseline.

``python -m repro.bench.compare BASELINE CURRENT`` compares two
``BENCH_hot_path.json`` reports and fails (exit 1) when the warm
**geomean speedup** — the workload-level warm-over-cold ratio, which is
a machine-independent measure unlike raw milliseconds — regresses by
more than ``--max-regression`` (default 25%).  The committed baseline
lives at ``benchmarks/baselines/BENCH_hot_path.baseline.json``.

A one-line markdown table is printed and, when running under GitHub
Actions (``GITHUB_STEP_SUMMARY`` set), appended to the job summary so
the regression check is legible from the checks list.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: the gated metric: warm-over-cold geometric-mean speedup
GATED_METRIC = "geomean_speedup"
#: reported alongside the gate, not gated (machine-dependent or
#: informational)
REPORT_METRICS = ("wall_clock_speedup", "plan_cache_hit_rate",
                  "total_repeat_ms")


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if "workload" not in report:
        raise ValueError(f"{path}: not a BENCH_hot_path report "
                         "(no 'workload' section)")
    return report


def compare(baseline: dict, current: dict,
            max_regression: float = 0.25) -> dict:
    """Gate verdict plus the numbers behind it."""
    base_value = float(baseline["workload"][GATED_METRIC])
    current_value = float(current["workload"][GATED_METRIC])
    floor = base_value * (1.0 - max_regression)
    ratio = current_value / base_value if base_value else float("inf")
    result = {
        "metric": GATED_METRIC,
        "baseline": base_value,
        "current": current_value,
        "floor": floor,
        "ratio": ratio,
        "max_regression": max_regression,
        "regressed": current_value < floor,
        "report": {},
    }
    for metric in REPORT_METRICS:
        result["report"][metric] = {
            "baseline": baseline["workload"].get(metric),
            "current": current["workload"].get(metric),
        }
    return result


def format_table(result: dict) -> str:
    """The one-line markdown verdict table for the job summary."""
    verdict = ("REGRESSED" if result["regressed"] else "ok")
    header = ("| gate | baseline | current | floor (-"
              f"{result['max_regression']:.0%}) | ratio | verdict |")
    rule = "|---|---|---|---|---|---|"
    row = (f"| warm {result['metric']} | {result['baseline']:.2f}x "
           f"| {result['current']:.2f}x | {result['floor']:.2f}x "
           f"| {result['ratio']:.2f} | **{verdict}** |")
    return "\n".join([header, rule, row])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="fail when the warm geomean speedup regressed "
                    "past the threshold")
    parser.add_argument("baseline",
                        help="committed BENCH_hot_path.baseline.json")
    parser.add_argument("current",
                        help="freshly produced BENCH_hot_path.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional regression of the "
                             "warm geomean (default 0.25)")
    args = parser.parse_args(argv)

    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
    except (OSError, ValueError, KeyError) as exc:
        print(f"bench-compare: cannot load reports: {exc}",
              file=sys.stderr)
        return 2

    result = compare(baseline, current, args.max_regression)
    table = format_table(result)
    print(table)
    for metric, values in result["report"].items():
        print(f"  {metric}: baseline={values['baseline']} "
              f"current={values['current']}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write("### Hot-path benchmark gate\n\n"
                         + table + "\n")

    if result["regressed"]:
        print(f"bench-compare: FAIL — warm {GATED_METRIC} "
              f"{result['current']:.2f}x is below the floor "
              f"{result['floor']:.2f}x "
              f"(baseline {result['baseline']:.2f}x)",
              file=sys.stderr)
        return 1
    print(f"bench-compare: ok — warm {GATED_METRIC} "
          f"{result['current']:.2f}x vs baseline "
          f"{result['baseline']:.2f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
