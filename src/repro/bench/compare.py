"""Benchmark regression gate: current run vs. the committed baseline.

``python -m repro.bench.compare BASELINE CURRENT`` compares two
benchmark reports and fails (exit 1) when the gated metric regresses by
more than ``--max-regression`` (default 25%).  By default it gates the
warm **geomean speedup** of the ``workload`` section — the hot-path
report's workload-level warm-over-cold ratio, which is a
machine-independent measure unlike raw milliseconds.  ``--section`` and
``--metric`` point the gate at a different report section (e.g.
``--section cold_start --metric mmap_speedup_vs_rebuild`` for the
cold-start report), ``--floor`` adds an *absolute* minimum the
current value must clear regardless of what the baseline achieved,
and ``--min-ratio`` requires current ≥ baseline × ratio — with a
ratio above 1 the gate demands a *measured improvement* over the
committed baseline instead of mere non-regression.
Committed baselines live in ``benchmarks/baselines/``.

A one-line markdown table is printed and, when running under GitHub
Actions (``GITHUB_STEP_SUMMARY`` set), appended to the job summary so
the regression check is legible from the checks list.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: the default gated metric: warm-over-cold geometric-mean speedup
GATED_METRIC = "geomean_speedup"
#: the default report section holding the gated metric
GATED_SECTION = "workload"
#: reported alongside the default gate, not gated (machine-dependent
#: or informational); sections other than ``workload`` report every
#: scalar they contain instead
REPORT_METRICS = ("wall_clock_speedup", "plan_cache_hit_rate",
                  "total_repeat_ms")


def load_report(path: str, section: str = GATED_SECTION) -> dict:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if section not in report:
        raise ValueError(f"{path}: no '{section}' section in report")
    return report


def _report_metrics(section: str, baseline: dict, current: dict,
                    metric: str) -> dict:
    if section == GATED_SECTION:
        names = REPORT_METRICS
    else:
        names = tuple(name for name, value in sorted(current.items())
                      if name != metric
                      and isinstance(value, (int, float)))
    return {name: {"baseline": baseline.get(name),
                   "current": current.get(name)}
            for name in names}


def compare(baseline: dict, current: dict,
            max_regression: float = 0.25,
            section: str = GATED_SECTION,
            metric: str = GATED_METRIC,
            absolute_floor: float | None = None,
            min_ratio: float | None = None) -> dict:
    """Gate verdict plus the numbers behind it.

    The floor is the *strictest* of baseline×(1−max_regression), the
    optional absolute floor, and the optional baseline×min_ratio — a
    fast baseline machine cannot loosen an acceptance criterion, a
    slow one cannot hide a regression, and ``min_ratio > 1`` turns the
    gate from "no regression" into "demonstrated improvement over the
    committed baseline".
    """
    base_value = float(baseline[section][metric])
    current_value = float(current[section][metric])
    floor = base_value * (1.0 - max_regression)
    if absolute_floor is not None:
        floor = max(floor, absolute_floor)
    if min_ratio is not None:
        floor = max(floor, base_value * min_ratio)
    ratio = current_value / base_value if base_value else float("inf")
    result = {
        "metric": metric,
        "section": section,
        "baseline": base_value,
        "current": current_value,
        "floor": floor,
        "ratio": ratio,
        "max_regression": max_regression,
        "absolute_floor": absolute_floor,
        "min_ratio": min_ratio,
        "regressed": current_value < floor,
        "report": _report_metrics(section, baseline[section],
                                  current[section], metric),
    }
    return result


def format_table(result: dict) -> str:
    """The one-line markdown verdict table for the job summary."""
    verdict = ("REGRESSED" if result["regressed"] else "ok")
    if result.get("min_ratio"):
        floor_label = f"floor (≥{result['min_ratio']:g}x base)"
    else:
        floor_label = f"floor (-{result['max_regression']:.0%})"
    header = (f"| gate | baseline | current | {floor_label} "
              "| ratio | verdict |")
    rule = "|---|---|---|---|---|---|"
    row = (f"| {result['metric']} | {result['baseline']:.2f}x "
           f"| {result['current']:.2f}x | {result['floor']:.2f}x "
           f"| {result['ratio']:.2f} | **{verdict}** |")
    return "\n".join([header, rule, row])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="fail when the gated benchmark metric regressed "
                    "past the threshold")
    parser.add_argument("baseline",
                        help="committed *.baseline.json report")
    parser.add_argument("current",
                        help="freshly produced benchmark report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional regression vs the "
                             "baseline (default 0.25)")
    parser.add_argument("--section", default=GATED_SECTION,
                        help="report section holding the gated metric "
                             f"(default {GATED_SECTION!r})")
    parser.add_argument("--metric", default=GATED_METRIC,
                        help="metric to gate within the section "
                             f"(default {GATED_METRIC!r})")
    parser.add_argument("--floor", type=float, default=None,
                        help="absolute minimum the current value must "
                             "clear, in addition to the relative gate")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="require current ≥ baseline × RATIO — a "
                             "value > 1 demands a measured improvement "
                             "over the committed baseline, not just "
                             "the absence of a regression")
    args = parser.parse_args(argv)

    try:
        baseline = load_report(args.baseline, args.section)
        current = load_report(args.current, args.section)
        result = compare(baseline, current, args.max_regression,
                         args.section, args.metric, args.floor,
                         args.min_ratio)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"bench-compare: cannot load reports: {exc!r}",
              file=sys.stderr)
        return 2

    table = format_table(result)
    print(table)
    for metric, values in result["report"].items():
        print(f"  {metric}: baseline={values['baseline']} "
              f"current={values['current']}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(f"### Benchmark gate — {result['section']}."
                         f"{result['metric']}\n\n" + table + "\n")

    if result["regressed"]:
        print(f"bench-compare: FAIL — {result['metric']} "
              f"{result['current']:.2f}x is below the floor "
              f"{result['floor']:.2f}x "
              f"(baseline {result['baseline']:.2f}x)",
              file=sys.stderr)
        return 1
    print(f"bench-compare: ok — {result['metric']} "
          f"{result['current']:.2f}x vs baseline "
          f"{result['baseline']:.2f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
