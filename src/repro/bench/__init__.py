"""Benchmark harness and table rendering for the §6 reproduction."""

from .harness import (BenchmarkHarness, QueryReport, SuiteReport,
                      geometric_mean)
from .reporting import (format_characteristics_table, format_geomean_table,
                        format_query_table, format_verification)

__all__ = [
    "BenchmarkHarness", "QueryReport", "SuiteReport",
    "format_characteristics_table", "format_geomean_table",
    "format_query_table", "format_verification", "geometric_mean",
]
