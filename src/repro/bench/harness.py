"""Benchmark harness reproducing the paper's §6 measurement discipline.

Each query runs once to warm caches (discarded), then *runs* times; the
reported time is the average, matching "we ran each query 6 times by
discarding the first runtime to warm up the caches".  Per query the
harness records every column of Tables 6.2–6.4: Tinit, Tprune, Ttotal
for LBR, total times for the two comparator engines, initial triples,
triples after pruning, result count, NULL-carrying result count, and
whether best-match was required.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..baselines.columnstore import ColumnStoreEngine
from ..baselines.naive import NaiveEngine
from ..bitmat.store import BitMatStore
from ..core.engine import LBREngine
from ..rdf.graph import Graph


@dataclass
class QueryReport:
    """One row of a Table 6.2/6.3/6.4 reproduction."""

    dataset: str
    query: str
    t_plan: float = 0.0
    t_init: float = 0.0
    t_prune: float = 0.0
    t_lbr: float = 0.0
    t_naive: float | None = None
    t_columnstore: float | None = None
    initial_triples: int = 0
    triples_after_pruning: int = 0
    num_results: int = 0
    results_with_nulls: int = 0
    best_match_required: bool = False
    verified: bool | None = None


@dataclass
class SuiteReport:
    """All query rows of one dataset plus the §6.2 geometric means."""

    dataset: str
    characteristics: dict[str, int]
    queries: list[QueryReport] = field(default_factory=list)

    def geometric_means(self) -> dict[str, float]:
        """Per-engine geometric mean of total query times (§6.2)."""
        means: dict[str, float] = {}
        for engine, extract in (
                ("lbr", lambda r: r.t_lbr),
                ("naive", lambda r: r.t_naive),
                ("columnstore", lambda r: r.t_columnstore)):
            times = [extract(report) for report in self.queries
                     if extract(report)]
            if times:
                means[engine] = geometric_mean(times)
        return means


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, guarding against zero measurements."""
    safe = [max(value, 1e-9) for value in values]
    return math.exp(sum(math.log(value) for value in safe) / len(safe))


def _timed(callable_, runs: int) -> float:
    callable_()  # warm-up, discarded
    total = 0.0
    for _ in range(runs):
        started = time.perf_counter()
        callable_()
        total += time.perf_counter() - started
    return total / runs


class BenchmarkHarness:
    """Runs a query suite over the three engines of §6."""

    def __init__(self, dataset: str, graph: Graph, runs: int = 3,
                 store: BitMatStore | None = None,
                 with_naive: bool = True,
                 with_columnstore: bool = True,
                 verify: bool = True) -> None:
        self.dataset = dataset
        self.graph = graph
        self.runs = runs
        self.verify = verify
        self.store = store if store is not None else BitMatStore.build(graph)
        self.lbr = LBREngine(self.store)
        self.naive = NaiveEngine(graph) if with_naive else None
        self.columnstore = (ColumnStoreEngine(graph)
                            if with_columnstore else None)

    def run_query(self, name: str, query: str) -> QueryReport:
        """Measure one query on every configured engine."""
        report = QueryReport(dataset=self.dataset, query=name)

        report.t_lbr = _timed(lambda: self.lbr.execute(query), self.runs)
        stats = self.lbr.last_stats
        report.t_plan = stats.t_plan
        report.t_init = stats.t_init
        report.t_prune = stats.t_prune
        report.initial_triples = stats.initial_triples
        report.triples_after_pruning = stats.triples_after_pruning
        report.num_results = stats.num_results
        report.results_with_nulls = stats.results_with_nulls
        report.best_match_required = stats.best_match_required

        if self.naive is not None:
            report.t_naive = _timed(lambda: self.naive.execute(query),
                                    self.runs)
        if self.columnstore is not None:
            report.t_columnstore = _timed(
                lambda: self.columnstore.execute(query), self.runs)

        if self.verify and self.naive is not None:
            lbr_rows = self.lbr.execute(query).as_multiset()
            naive_rows = self.naive.execute(query).as_multiset()
            report.verified = lbr_rows == naive_rows
        return report

    def run_suite(self, queries: Mapping[str, str]) -> SuiteReport:
        """Measure every query of a suite, in order."""
        suite = SuiteReport(dataset=self.dataset,
                            characteristics=self.graph.characteristics())
        for name, query in queries.items():
            suite.queries.append(self.run_query(name, query))
        return suite
