"""Small concurrency primitives shared by the engine and the server.

Kept outside :mod:`repro.server` because the engine itself uses
:class:`SingleFlight` for batched compilation, and the server package
imports the engine — the dependency must point this way.
"""

from __future__ import annotations

import threading

#: Shared "argument not passed" sentinel, distinguishing omission from
#: an explicit ``None`` override (None often means "no limit").  One
#: object for the whole codebase so a sentinel can never leak across
#: modules and be mistaken for a real value.
UNSET = object()

#: The repo-wide lock acquisition order, outermost first.  Any thread
#: holding lock *i* may only acquire locks at index > *i*; the
#: ``lock-order`` rule of ``lbr lint`` statically rejects nestings that
#: contradict this table (and, cross-file, any lock pair acquired in
#: both orders anywhere in the tree).  Names are instance-attribute
#: names — the convention is one meaning per name, everywhere:
#:
#: * ``_admission_lock`` — scheduler admission gate (queue bound +
#:   draining flag); outermost because admission may publish work that
#:   touches everything below.
#: * ``_write_lock``     — single-writer mutexes (LiveGraphStore WAL
#:   batches, SnapshotManager publication).
#: * ``_lock``           — per-object state locks (scheduler counters,
#:   snapshot registry, server connection set, SingleFlight table).
#: * ``_refs_lock``      — store refcount latches (retain/close).
#: * ``_counter_lock``   — leaf statistics counters; must never wrap
#:   another acquisition.
#: * ``_locks``          — LRU stripe locks; innermost, and no two
#:   stripes may ever be held together (stripe index is a hash, so
#:   two-stripe sections self-deadlock under collision).
LOCK_ORDER: tuple[str, ...] = (
    "_admission_lock",
    "_write_lock",
    "_lock",
    "_refs_lock",
    "_counter_lock",
    "_locks",
)


class SingleFlight:
    """Per-key duplicate suppression for concurrent computations.

    When N threads need the same expensive value (here: compiling the
    physical plan for one structural query hash), exactly one of them —
    the *leader* — computes it; the others wait on an event and then
    re-read the now-populated cache.  This is what turns a thundering
    herd of structurally identical queries into one compile.

    Usage::

        leader, event = flight.begin(key)
        if leader:
            try:
                value = compute()
                cache.put(key, value)
            finally:
                flight.finish(key)
        else:
            event.wait()
            value = cache.get(key)   # may still miss if the leader
                                     # failed; callers retry begin()
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[object, threading.Event] = {}

    def begin(self, key: object) -> tuple[bool, threading.Event]:
        """Join the flight for *key*.

        Returns ``(True, event)`` for the leader — who MUST call
        :meth:`finish` when done, success or failure — and
        ``(False, event)`` for followers, who wait on the event.
        """
        with self._lock:
            event = self._inflight.get(key)
            if event is None:
                event = threading.Event()
                self._inflight[key] = event
                return True, event
            return False, event

    def finish(self, key: object) -> None:
        """Leader-only: close the flight and release every follower."""
        with self._lock:
            event = self._inflight.pop(key)
        event.set()

    def in_flight(self) -> int:
        """Number of keys currently being computed (monitoring)."""
        with self._lock:
            return len(self._inflight)
