"""Small concurrency primitives shared by the engine and the server.

Kept outside :mod:`repro.server` because the engine itself uses
:class:`SingleFlight` for batched compilation, and the server package
imports the engine — the dependency must point this way.
"""

from __future__ import annotations

import threading

#: Shared "argument not passed" sentinel, distinguishing omission from
#: an explicit ``None`` override (None often means "no limit").  One
#: object for the whole codebase so a sentinel can never leak across
#: modules and be mistaken for a real value.
UNSET = object()


class SingleFlight:
    """Per-key duplicate suppression for concurrent computations.

    When N threads need the same expensive value (here: compiling the
    physical plan for one structural query hash), exactly one of them —
    the *leader* — computes it; the others wait on an event and then
    re-read the now-populated cache.  This is what turns a thundering
    herd of structurally identical queries into one compile.

    Usage::

        leader, event = flight.begin(key)
        if leader:
            try:
                value = compute()
                cache.put(key, value)
            finally:
                flight.finish(key)
        else:
            event.wait()
            value = cache.get(key)   # may still miss if the leader
                                     # failed; callers retry begin()
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[object, threading.Event] = {}

    def begin(self, key: object) -> tuple[bool, threading.Event]:
        """Join the flight for *key*.

        Returns ``(True, event)`` for the leader — who MUST call
        :meth:`finish` when done, success or failure — and
        ``(False, event)`` for followers, who wait on the event.
        """
        with self._lock:
            event = self._inflight.get(key)
            if event is None:
                event = threading.Event()
                self._inflight[key] = event
                return True, event
            return False, event

    def finish(self, key: object) -> None:
        """Leader-only: close the flight and release every follower."""
        with self._lock:
            event = self._inflight.pop(key)
        event.set()

    def in_flight(self) -> int:
        """Number of keys currently being computed (monitoring)."""
        with self._lock:
            return len(self._inflight)
