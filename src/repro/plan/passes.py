"""The rewrite-pass manager — stage 2 of the compiler pipeline.

Algorithm 5.1's analysis half used to run as ad-hoc calls smeared over
the engine; here each rewrite is a named, individually-testable pass
over the logical IR:

* ``equality-filter-elimination`` — the §5.2 "cheap" optimization:
  drop top-level ``FILTER(?m = ?n)`` over certain variables by
  renaming, recording the rename map so result columns can be
  restored;
* ``union-normal-form``          — the §5.2 UNF rewrite: the root
  becomes an :class:`~repro.plan.logical.LUnionAll` of UNION-free
  branches, flagged when rule 3 may have introduced spurious rows;
* ``filter-scope-assignment``    — assign every FILTER its TP index
  range in GoSN numbering order (the engine's init-vs-FaN routing
  consumes these scopes);
* ``wd-analysis``                — per-branch well-designedness check
  plus the Appendix B transform: which unidirectional GoSN edges
  become bidirectional, and the equivalent tree-level rewrite
  (violating OPTIONALs to inner joins) any bottom-up evaluator can
  interpret as the reference semantics.

A :class:`PassManager` runs a pipeline, records a :class:`PassRecord`
per pass (what fired, what changed), and — with
``check_idempotence=True`` — asserts ``run(run(q)) == run(q)`` for
every pass, the property that makes the pipeline safe to re-enter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..rdf.terms import Variable
from ..sparql.ast import Pattern
from ..sparql.rewrite import eliminate_equality_filters, to_union_normal_form
from ..sparql.wd import Violation, find_violations
from .logical import (LBGP, LFilter, LJoin, LLeftJoin, LogicalNode,
                      LogicalQuery, LUnion, LUnionAll, from_ast, to_ast,
                      union_all)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bitmat.backend import StoreBackend
    from ..core.gosn import GoSN


class PassError(Exception):
    """A pass violated one of its contracts (e.g. idempotence)."""


@dataclass(frozen=True)
class PassRecord:
    """One pass manager trace entry."""

    name: str
    changed: bool
    detail: str = ""

    def __str__(self) -> str:
        marker = "*" if self.changed else " "
        text = f"{marker} {self.name}"
        return f"{text}: {self.detail}" if self.detail else text


@dataclass(frozen=True)
class ScopedFilter:
    """A FILTER with its TP index range (GoSN numbering order)."""

    expr: object
    tp_start: int
    tp_end: int


@dataclass(frozen=True)
class BranchAnalysis:
    """Per-branch output of the ``wd-analysis`` pass.

    ``converted_edges`` are the unidirectional GoSN edges Appendix B
    turns bidirectional; ``reference`` is the equivalent tree-level
    rewrite (those left-outer joins as inner joins) — the branch
    semantics under the null-intolerant join assumption, which the
    fuzz oracle evaluates bottom-up as the reference answer.
    """

    well_designed: bool
    violated_variables: tuple[Variable, ...] = ()
    converted_edges: frozenset[tuple[int, int]] = frozenset()
    reference: LogicalNode | None = None


@dataclass
class PassContext:
    """Cross-pass state accumulated while a pipeline runs."""

    #: dropped → kept variable map from equality-filter elimination
    renames: dict[Variable, Variable] = field(default_factory=dict)
    #: per-branch scoped filters (``filter-scope-assignment``)
    branch_filters: tuple[tuple[ScopedFilter, ...], ...] = ()
    #: per-branch well-designedness analysis (``wd-analysis``)
    branch_info: tuple[BranchAnalysis, ...] = ()
    #: store statistics published by ``cost-based-ordering`` — None
    #: routes physical planning through the static heuristic
    ordering_stats: object = None


class CompilerPass:
    """Base class: a named rewrite of a :class:`LogicalQuery`."""

    name = "compiler-pass"

    def run(self, query: LogicalQuery,
            ctx: PassContext) -> tuple[LogicalQuery, str]:
        """Return the rewritten query and a human-readable detail."""
        raise NotImplementedError


class EqualityFilterEliminationPass(CompilerPass):
    """Drop top-level ``FILTER(?m = ?n)`` over certain variables."""

    name = "equality-filter-elimination"

    def run(self, query: LogicalQuery,
            ctx: PassContext) -> tuple[LogicalQuery, str]:
        pattern = to_ast(query.root)
        local: dict[Variable, Variable] = {}
        rewritten = eliminate_equality_filters(pattern, local)
        if not local:
            return query, ""
        ctx.renames.update(local)
        detail = ", ".join(f"?{old}→?{new}"
                           for old, new in sorted(local.items()))
        root = from_ast(rewritten)
        return LogicalQuery(root=root, select=query.select,
                            distinct=query.distinct,
                            order_by=query.order_by, limit=query.limit,
                            offset=query.offset), f"renamed {detail}"


class UnionNormalFormPass(CompilerPass):
    """Rewrite the root into an n-ary union of UNION-free branches."""

    name = "union-normal-form"

    def run(self, query: LogicalQuery,
            ctx: PassContext) -> tuple[LogicalQuery, str]:
        was_spurious = (query.root.spurious_possible
                        if isinstance(query.root, LUnionAll) else False)
        normal_form = to_union_normal_form(to_ast(query.root))
        branches = tuple(from_ast(branch)
                         for branch in normal_form.branches)
        spurious = was_spurious or normal_form.spurious_possible
        root = union_all(branches, spurious)
        detail = f"{len(branches)} union-free branch(es)"
        if normal_form.spurious_possible:
            detail += "; rule 3 fired (minimum-union cleanup required)"
        return LogicalQuery(root=root, select=query.select,
                            distinct=query.distinct,
                            order_by=query.order_by, limit=query.limit,
                            offset=query.offset), detail


def collect_scoped_filters(branch: LogicalNode) -> tuple[ScopedFilter, ...]:
    """Filters of a UNION-free branch with their TP index ranges.

    TP indexes follow GoSN numbering (left-to-right over the branch),
    and nested filters are listed innermost-first — the order the
    engine's init-filter application historically used.
    """
    filters: list[ScopedFilter] = []
    counter = [0]

    def walk(node: LogicalNode) -> None:
        if isinstance(node, LFilter):
            start = counter[0]
            walk(node.child)
            filters.append(ScopedFilter(node.expr, start, counter[0]))
        elif isinstance(node, LBGP):
            counter[0] += len(node.patterns)
        elif isinstance(node, (LJoin, LLeftJoin)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, LUnion):  # pragma: no cover - UNF input
            raise PassError("UNION inside a UNION-free branch")

    walk(branch)
    return tuple(filters)


class FilterScopeAssignmentPass(CompilerPass):
    """Record every branch filter's TP index range in the context."""

    name = "filter-scope-assignment"

    def run(self, query: LogicalQuery,
            ctx: PassContext) -> tuple[LogicalQuery, str]:
        if not isinstance(query.root, LUnionAll):
            raise PassError(f"{self.name} requires union-normal-form "
                            f"to run first")
        ctx.branch_filters = tuple(collect_scoped_filters(branch)
                                   for branch in query.root.branches)
        total = sum(len(filters) for filters in ctx.branch_filters)
        return query, (f"{total} scoped filter(s)" if total
                       else "no filters")


# ----------------------------------------------------------------------
# Appendix B machinery (shared by the wd pass, the physical planner,
# and the public repro.core.nwd entry points)
# ----------------------------------------------------------------------

def node_tp_ranges(branch: Pattern) -> dict[int, tuple[int, int]]:
    """TP index range of every AST node, keyed by ``id(node)``."""
    from ..sparql.ast import BGP, Filter, Join, LeftJoin, Union

    ranges: dict[int, tuple[int, int]] = {}
    counter = [0]

    def walk(node: Pattern) -> None:
        start = counter[0]
        if isinstance(node, BGP):
            counter[0] += len(node.patterns)
        elif isinstance(node, Filter):
            walk(node.pattern)
        elif isinstance(node, (Join, LeftJoin, Union)):
            walk(node.left)
            walk(node.right)
        ranges[id(node)] = (start, counter[0])

    walk(branch)
    return ranges


def transform_nwd(gosn: "GoSN", branch: Pattern,
                  violations: Sequence[Violation]) -> "GoSN":
    """Appendix B: convert uni edges to bi along violation paths.

    For every violating sub-pattern ``Pk ⟕ Pl`` and variable ``?j``, a
    violation pair is formed between each supernode of ``Pl``
    containing ``?j`` and each supernode *outside* the sub-pattern
    containing ``?j``; all unidirectional edges on the unique
    undirected paths between the pairs become bidirectional.
    """
    ranges = node_tp_ranges(branch)
    total = len(gosn.patterns)
    converted: set[tuple[int, int]] = set()
    for violation in violations:
        subtree_range = ranges.get(id(violation.left_join))
        slave_range = ranges.get(id(violation.left_join.right))
        if subtree_range is None or slave_range is None:
            continue
        slave_sns = _sns_with_variable(gosn, slave_range,
                                       violation.variable)
        inside = set(range(*subtree_range))
        outside_sns = {
            gosn.sn_of_tp[index] for index in range(total)
            if index not in inside
            and violation.variable in gosn.patterns[index].variables()}
        # sorted: set order is hash-seed-dependent and the undirected
        # path walk mutates `converted` edge by edge — the plan must
        # not vary run to run
        for sn_a in sorted(slave_sns):
            for sn_b in sorted(outside_sns):
                path = gosn.undirected_path(sn_a, sn_b)
                for left, right in zip(path, path[1:]):
                    if (left, right) in gosn.uni_edges:
                        converted.add((left, right))
                    if (right, left) in gosn.uni_edges:
                        converted.add((right, left))
    if not converted:
        return gosn
    return gosn.with_bidirectional(converted)


def _sns_with_variable(gosn: "GoSN", tp_range: tuple[int, int],
                       variable: Variable) -> set[int]:
    found: set[int] = set()
    for index in range(*tp_range):
        if variable in gosn.patterns[index].variables():
            found.add(gosn.sn_of_tp[index])
    return found


def reference_rewrite(branch: Pattern,
                      converted: frozenset[tuple[int, int]]) -> Pattern:
    """Tree-level mirror of the GoSN transformation.

    Supernodes are numbered in :meth:`GoSN.from_pattern` build order,
    so each :class:`LeftJoin` maps onto its (leftmost-left,
    leftmost-right) unidirectional edge; the converted ones become
    inner joins.
    """
    from ..exceptions import UnsupportedQueryError
    from ..sparql.ast import BGP, Filter, Join, LeftJoin

    counter = [0]

    def rebuild(node: Pattern) -> tuple[Pattern, int]:
        if isinstance(node, Filter):
            inner, leftmost = rebuild(node.pattern)
            return Filter(node.expr, inner), leftmost
        if isinstance(node, BGP):
            index = counter[0]
            counter[0] += 1
            return node, index
        if isinstance(node, LeftJoin):
            left, left_sn = rebuild(node.left)
            right, right_sn = rebuild(node.right)
            if (left_sn, right_sn) in converted:
                return Join(left, right), left_sn
            return LeftJoin(left, right), left_sn
        if isinstance(node, Join):
            left, left_sn = rebuild(node.left)
            right, _right_sn = rebuild(node.right)
            return Join(left, right), left_sn
        raise UnsupportedQueryError(
            f"reference rewrite expects a union-free branch, found "
            f"{type(node).__name__}")

    rewritten, _ = rebuild(branch)
    return rewritten


def analyze_branch(branch: LogicalNode) -> BranchAnalysis:
    """Well-designedness analysis of one UNION-free branch."""
    from ..core.gosn import GoSN

    ast_branch = to_ast(branch)
    violations: list[Violation] = find_violations(ast_branch)
    if not violations:
        return BranchAnalysis(well_designed=True, reference=branch)
    gosn = GoSN.from_pattern(ast_branch)
    transformed = transform_nwd(gosn, ast_branch, violations)
    converted = frozenset(gosn.uni_edges - transformed.uni_edges)
    reference = branch
    if converted:
        reference = from_ast(reference_rewrite(ast_branch, converted))
    return BranchAnalysis(
        well_designed=False,
        violated_variables=tuple(sorted({v.variable
                                         for v in violations})),
        converted_edges=converted, reference=reference)


class WellDesignednessPass(CompilerPass):
    """Per-branch WD check plus the Appendix B transform decision."""

    name = "wd-analysis"

    def run(self, query: LogicalQuery,
            ctx: PassContext) -> tuple[LogicalQuery, str]:
        if not isinstance(query.root, LUnionAll):
            raise PassError(f"{self.name} requires union-normal-form "
                            f"to run first")
        ctx.branch_info = tuple(analyze_branch(branch)
                                for branch in query.root.branches)
        bad = [index for index, info in enumerate(ctx.branch_info)
               if not info.well_designed]
        if not bad:
            return query, "all branches well-designed"
        details = []
        for index in bad:
            info = ctx.branch_info[index]
            variables = " ".join(f"?{v}"
                                 for v in info.violated_variables)
            details.append(f"branch {index + 1} non-WD ({variables}; "
                           f"{len(info.converted_edges)} uni edge(s) "
                           f"→ bi)")
        return query, "; ".join(details)


class CostBasedOrderingPass(CompilerPass):
    """Publish the store's statistics to the ordering decisions.

    A pure annotation pass: the logical IR is never touched.  When the
    bound store carries per-predicate statistics (collected at freeze
    time, absent on unfrozen stores, pre-statistics images, and
    overlays) they land in the context and the physical planner ranks
    jvars and slave supernodes with the :mod:`repro.plan.cost` model;
    otherwise every branch falls back to the paper's static
    selectivity heuristic.  Either way the decision is recorded in the
    pass trace, which is what ``lbr explain`` renders.
    """

    name = "cost-based-ordering"

    def __init__(self, store: "StoreBackend | None" = None) -> None:
        self._store = store

    def run(self, query: LogicalQuery,
            ctx: PassContext) -> tuple[LogicalQuery, str]:
        stats = (self._store.stats() if self._store is not None
                 else None)
        ctx.ordering_stats = stats
        if stats is None:
            return query, ("no store statistics: static selectivity "
                           "heuristic")
        return query, (f"statistics for {len(stats.predicates)} "
                       f"predicate(s): cost-based jvar and supernode "
                       f"ordering")


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------

def default_passes(store: "StoreBackend | None" = None,
                   ) -> list[CompilerPass]:
    """The pipeline :class:`~repro.core.engine.LBREngine` compiles with.

    *store* feeds the cost-based ordering pass; without one (or
    without statistics on it) ordering stays on the static heuristic.
    """
    return [EqualityFilterEliminationPass(), UnionNormalFormPass(),
            FilterScopeAssignmentPass(), WellDesignednessPass(),
            CostBasedOrderingPass(store)]


def reference_passes() -> list[CompilerPass]:
    """The pipeline the differential-fuzzing reference consumes.

    No equality-filter elimination: the reference models pure SPARQL
    semantics and must not inherit the engine's optimizations.
    """
    return [UnionNormalFormPass(), FilterScopeAssignmentPass(),
            WellDesignednessPass()]


@dataclass
class PassResult:
    """Outcome of one pipeline run."""

    logical: LogicalQuery
    trace: tuple[PassRecord, ...]
    context: PassContext


class PassManager:
    """Runs a pass pipeline with tracing and idempotence checking."""

    def __init__(self, passes: list[CompilerPass] | None = None,
                 check_idempotence: bool = False) -> None:
        self.passes = list(passes) if passes is not None else default_passes()
        self.check_idempotence = check_idempotence

    def run(self, query: LogicalQuery) -> PassResult:
        ctx = PassContext()
        trace: list[PassRecord] = []
        for compiler_pass in self.passes:
            rewritten, detail = compiler_pass.run(query, ctx)
            if self.check_idempotence:
                again, _ = compiler_pass.run(rewritten, PassContext())
                if again != rewritten:
                    raise PassError(
                        f"pass {compiler_pass.name!r} is not idempotent")
            trace.append(PassRecord(name=compiler_pass.name,
                                    changed=rewritten != query,
                                    detail=detail))
            query = rewritten
        return PassResult(logical=query, trace=tuple(trace), context=ctx)
