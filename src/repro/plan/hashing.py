"""Structural hashing of the logical IR — the plan-cache key.

Two queries that differ only in variable names, whitespace, prefix
spellings, or clause formatting compile to alpha-equivalent logical
IRs.  :func:`canonicalize` rewrites an IR into its canonical form —
variables renamed to ``_c000, _c001, …`` in deterministic first-
occurrence order over a fixed structural traversal — and
:func:`structural_hash` digests the canonical serialization.  The
resulting key is what :class:`~repro.core.engine.LBREngine` keys its
physical-plan cache on: alpha-equivalent queries share one compiled
plan, while queries differing in any constant, operator, or solution
modifier never collide (the serialization covers them all).

Canonical names are zero-padded so their lexicographic order equals
their numeric order — ``sorted()`` over canonical variables is then
deterministic and alpha-stable, which the planner's tie-breaks rely
on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from ..rdf.terms import Variable, is_variable
from ..sparql.ast import _term_sparql
from ..sparql.expressions import (BooleanOp, Bound, Comparison, Not, Regex,
                                  SameTerm, VarRef, expression_sparql)
from .logical import (LBGP, LFilter, LJoin, LLeftJoin, LogicalNode,
                      LogicalQuery, LUnion, LUnionAll, rename_logical)

#: Prefix of canonical variable names.  Renaming is simultaneous and
#: total (every variable gets a fresh canonical name), so user
#: variables that happen to look canonical cannot be captured.
CANONICAL_PREFIX = "_c"


@dataclass(frozen=True)
class CanonicalForm:
    """A logical query in canonical variable space, plus the maps."""

    logical: LogicalQuery
    to_canonical: dict[Variable, Variable]
    from_canonical: dict[Variable, Variable]
    key: str


def _expression_variable_order(
        expr: object, visit: Callable[[Variable], None]) -> None:
    """Visit expression variables in deterministic structural order."""
    if isinstance(expr, VarRef):
        visit(expr.name)
    elif isinstance(expr, Bound):
        visit(expr.name)
    elif isinstance(expr, Not):
        _expression_variable_order(expr.operand, visit)
    elif isinstance(expr, (Comparison, BooleanOp, SameTerm)):
        _expression_variable_order(expr.left, visit)
        _expression_variable_order(expr.right, visit)
    elif isinstance(expr, Regex):
        _expression_variable_order(expr.operand, visit)


def _node_variable_order(node: LogicalNode,
                         visit: Callable[[Variable], None]) -> None:
    if isinstance(node, LBGP):
        for tp in node.patterns:
            for term in tp:
                if is_variable(term):
                    visit(term)
    elif isinstance(node, (LJoin, LLeftJoin, LUnion)):
        _node_variable_order(node.left, visit)
        _node_variable_order(node.right, visit)
    elif isinstance(node, LFilter):
        _node_variable_order(node.child, visit)
        _expression_variable_order(node.expr, visit)
    elif isinstance(node, LUnionAll):
        for branch in node.branches:
            _node_variable_order(branch, visit)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown logical node {node!r}")


def variable_order(query: LogicalQuery) -> list[Variable]:
    """Variables in canonical first-occurrence order.

    The traversal is purely structural (pattern tree first, then the
    projection list, then ORDER BY), so alpha-equivalent queries list
    their variables in corresponding positions.
    """
    seen: set[Variable] = set()
    ordered: list[Variable] = []

    def visit(var: Variable) -> None:
        if var not in seen:
            seen.add(var)
            ordered.append(var)

    _node_variable_order(query.root, visit)
    if query.select is not None:
        for var in query.select:
            visit(var)
    for var, _ascending in query.order_by:
        visit(var)
    return ordered


def canonicalize(query: LogicalQuery) -> CanonicalForm:
    """Rewrite *query* into canonical variable space."""
    ordered = variable_order(query)
    to_canonical = {
        var: Variable(f"{CANONICAL_PREFIX}{index:03d}")
        for index, var in enumerate(ordered)}
    from_canonical = {new: old for old, new in to_canonical.items()}
    canonical = rename_logical(query, to_canonical)
    return CanonicalForm(logical=canonical, to_canonical=to_canonical,
                         from_canonical=from_canonical,
                         key=structural_hash(canonical))


# ----------------------------------------------------------------------
# serialization + digest
# ----------------------------------------------------------------------

def serialize_node(node: LogicalNode) -> str:
    """A compact, unambiguous serialization of a logical subtree."""
    if isinstance(node, LBGP):
        body = ",".join(" ".join(_term_sparql(t) for t in tp)
                        for tp in node.patterns)
        return f"bgp({body})"
    if isinstance(node, LJoin):
        return (f"join({serialize_node(node.left)},"
                f"{serialize_node(node.right)})")
    if isinstance(node, LLeftJoin):
        return (f"leftjoin({serialize_node(node.left)},"
                f"{serialize_node(node.right)})")
    if isinstance(node, LUnion):
        return (f"union({serialize_node(node.left)},"
                f"{serialize_node(node.right)})")
    if isinstance(node, LFilter):
        return (f"filter({expression_sparql(node.expr)},"
                f"{serialize_node(node.child)})")
    if isinstance(node, LUnionAll):
        body = ",".join(serialize_node(b) for b in node.branches)
        flag = "spurious" if node.spurious_possible else "exact"
        return f"unionall[{flag}]({body})"
    raise TypeError(f"unknown logical node {node!r}")


def serialize_logical(query: LogicalQuery) -> str:
    """Serialize a whole logical query, modifiers included."""
    select = ("*" if query.select is None
              else " ".join(f"?{v}" for v in query.select))
    order = " ".join(f"{'+' if ascending else '-'}?{v}"
                     for v, ascending in query.order_by)
    return "|".join((
        serialize_node(query.root),
        f"select={select}",
        f"distinct={int(query.distinct)}",
        f"order={order}",
        f"limit={query.limit}",
        f"offset={query.offset}",
    ))


def structural_hash(query: LogicalQuery) -> str:
    """SHA-256 digest of the canonical serialization."""
    text = serialize_logical(query)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
