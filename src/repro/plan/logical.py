"""The logical algebra IR — stage 1 of the compiler pipeline.

A parsed query is lowered into a tree of immutable *logical* nodes
(:class:`LBGP`, :class:`LJoin`, :class:`LLeftJoin`, :class:`LUnion`,
:class:`LFilter`, and the n-ary :class:`LUnionAll` the UNION-normal-form
pass produces).  Unlike the surface AST (:mod:`repro.sparql.ast`),
every logical node carries the annotations the planner consumes:

* ``scope``    — the OPTIONAL/UNION scope the node evaluates in (scope
  0 is the top level; every ``OPTIONAL {…}`` body and every UNION arm
  opens a fresh scope);
* ``certain``  — variables bound in *every* solution of the subtree
  (the "mandatory part": OPTIONAL bodies contribute nothing, UNION
  arms contribute only their intersection);
* ``possible`` — variables that may be bound in some solution.

Nodes are frozen dataclasses: rewrites build new trees, annotations are
recomputed by the builders (:func:`from_ast` / :func:`build_logical`),
and structural equality (``==``) is exactly what the pass manager's
idempotence checks compare.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rdf.terms import Variable, is_variable
from ..sparql.ast import (BGP, Filter, Join, LeftJoin, Pattern, Query,
                          TriplePattern, Union, _term_sparql)
from ..sparql.expressions import (BooleanOp, Bound, Comparison, Constant,
                                  Not, Regex, SameTerm, VarRef,
                                  expression_sparql)

EMPTY: frozenset[Variable] = frozenset()


class LogicalNode:
    """Base class for logical algebra nodes (annotation carriers)."""

    __slots__ = ()


@dataclass(frozen=True)
class LBGP(LogicalNode):
    """An OPT-free basic graph pattern."""

    patterns: tuple[TriplePattern, ...]
    scope: int = 0
    certain: frozenset[Variable] = EMPTY
    possible: frozenset[Variable] = EMPTY


@dataclass(frozen=True)
class LJoin(LogicalNode):
    """Inner join (``⋈``)."""

    left: LogicalNode
    right: LogicalNode
    scope: int = 0
    certain: frozenset[Variable] = EMPTY
    possible: frozenset[Variable] = EMPTY


@dataclass(frozen=True)
class LLeftJoin(LogicalNode):
    """Left-outer join (``⟕``): ``left OPTIONAL { right }``."""

    left: LogicalNode
    right: LogicalNode
    scope: int = 0
    certain: frozenset[Variable] = EMPTY
    possible: frozenset[Variable] = EMPTY


@dataclass(frozen=True)
class LUnion(LogicalNode):
    """Binary SPARQL UNION under bag semantics."""

    left: LogicalNode
    right: LogicalNode
    scope: int = 0
    certain: frozenset[Variable] = EMPTY
    possible: frozenset[Variable] = EMPTY


@dataclass(frozen=True)
class LFilter(LogicalNode):
    """``child FILTER(expr)``; *expr* is an expression-tree node."""

    expr: object
    child: LogicalNode
    scope: int = 0
    certain: frozenset[Variable] = EMPTY
    possible: frozenset[Variable] = EMPTY


@dataclass(frozen=True)
class LUnionAll(LogicalNode):
    """The UNION normal form: an n-ary bag union of UNION-free branches.

    ``spurious_possible`` records that rewrite rule 3 fired while
    normalizing, in which case minimum-union cleanup must run over the
    combined branch results (paper §5.2).
    """

    branches: tuple[LogicalNode, ...]
    spurious_possible: bool = False
    scope: int = 0
    certain: frozenset[Variable] = EMPTY
    possible: frozenset[Variable] = EMPTY


@dataclass(frozen=True)
class LogicalQuery:
    """A whole query: the logical root plus solution modifiers."""

    root: LogicalNode
    select: tuple[Variable, ...] | None = None
    distinct: bool = False
    order_by: tuple[tuple[Variable, bool], ...] = ()
    limit: int | None = None
    offset: int = 0


# ----------------------------------------------------------------------
# construction from the surface AST
# ----------------------------------------------------------------------

class _ScopeCounter:
    __slots__ = ("next",)

    def __init__(self) -> None:
        self.next = 1


def from_ast(pattern: Pattern, scope: int = 0,
             _counter: _ScopeCounter | None = None) -> LogicalNode:
    """Lower an AST pattern into an annotated logical node."""
    counter = _counter or _ScopeCounter()
    if isinstance(pattern, BGP):
        variables = frozenset(v for tp in pattern.patterns
                              for v in tp.variables())
        return LBGP(pattern.patterns, scope, variables, variables)
    if isinstance(pattern, Join):
        left = from_ast(pattern.left, scope, counter)
        right = from_ast(pattern.right, scope, counter)
        return LJoin(left, right, scope, left.certain | right.certain,
                     left.possible | right.possible)
    if isinstance(pattern, LeftJoin):
        left = from_ast(pattern.left, scope, counter)
        inner = counter.next
        counter.next += 1
        right = from_ast(pattern.right, inner, counter)
        return LLeftJoin(left, right, scope, left.certain,
                         left.possible | right.possible)
    if isinstance(pattern, Union):
        arm_left = counter.next
        counter.next += 1
        left = from_ast(pattern.left, arm_left, counter)
        arm_right = counter.next
        counter.next += 1
        right = from_ast(pattern.right, arm_right, counter)
        return LUnion(left, right, scope, left.certain & right.certain,
                      left.possible | right.possible)
    if isinstance(pattern, Filter):
        child = from_ast(pattern.pattern, scope, counter)
        return LFilter(pattern.expr, child, scope, child.certain,
                       child.possible)
    raise TypeError(f"unknown pattern node {pattern!r}")


def union_all(branches: tuple[LogicalNode, ...],
              spurious_possible: bool) -> LUnionAll:
    """Build an annotated :class:`LUnionAll` from UNION-free branches."""
    certain = branches[0].certain if branches else EMPTY
    possible: frozenset[Variable] = EMPTY
    for branch in branches:
        certain &= branch.certain
        possible |= branch.possible
    return LUnionAll(branches, spurious_possible, 0, certain, possible)


def build_logical(query: Query) -> LogicalQuery:
    """Lower a parsed :class:`~repro.sparql.ast.Query` into the IR."""
    return LogicalQuery(root=from_ast(query.pattern),
                        select=query.select, distinct=query.distinct,
                        order_by=query.order_by, limit=query.limit,
                        offset=query.offset)


# ----------------------------------------------------------------------
# conversion back to the surface AST (for GoSN construction and the
# rewrite helpers that still operate on AST trees)
# ----------------------------------------------------------------------

def to_ast(node: LogicalNode) -> Pattern:
    """Convert a logical node back to the equivalent AST pattern."""
    if isinstance(node, LBGP):
        return BGP(node.patterns)
    if isinstance(node, LJoin):
        return Join(to_ast(node.left), to_ast(node.right))
    if isinstance(node, LLeftJoin):
        return LeftJoin(to_ast(node.left), to_ast(node.right))
    if isinstance(node, LUnion):
        return Union(to_ast(node.left), to_ast(node.right))
    if isinstance(node, LFilter):
        return Filter(node.expr, to_ast(node.child))
    if isinstance(node, LUnionAll):
        if not node.branches:
            return BGP(())
        result = to_ast(node.branches[0])
        for branch in node.branches[1:]:
            result = Union(result, to_ast(branch))
        return result
    raise TypeError(f"unknown logical node {node!r}")


# ----------------------------------------------------------------------
# simultaneous variable renaming (alpha conversion)
# ----------------------------------------------------------------------

def rename_expression(expr: object,
                      mapping: dict[Variable, Variable]) -> object:
    """Apply a *simultaneous* variable substitution to an expression.

    Unlike chained :func:`~repro.sparql.expressions.substitute_variable`
    calls, a simultaneous substitution cannot capture: renaming
    ``{a→b, b→a}`` swaps the two variables instead of merging them.
    """
    if isinstance(expr, VarRef):
        return VarRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, Bound):
        return Bound(mapping.get(expr.name, expr.name))
    if isinstance(expr, Not):
        return Not(rename_expression(expr.operand, mapping))
    if isinstance(expr, Comparison):
        return Comparison(expr.op, rename_expression(expr.left, mapping),
                          rename_expression(expr.right, mapping))
    if isinstance(expr, BooleanOp):
        return BooleanOp(expr.op, rename_expression(expr.left, mapping),
                         rename_expression(expr.right, mapping))
    if isinstance(expr, Regex):
        return Regex(rename_expression(expr.operand, mapping),
                     expr.pattern, expr.flags)
    if isinstance(expr, SameTerm):
        return SameTerm(rename_expression(expr.left, mapping),
                        rename_expression(expr.right, mapping))
    return expr


def _rename_vars(variables: frozenset[Variable],
                 mapping: dict[Variable, Variable]) -> frozenset[Variable]:
    return frozenset(mapping.get(v, v) for v in variables)


def rename_node(node: LogicalNode,
                mapping: dict[Variable, Variable]) -> LogicalNode:
    """Alpha-rename a logical subtree (annotations included)."""
    if isinstance(node, LBGP):
        patterns = tuple(
            TriplePattern(*(mapping.get(term, term)
                            if is_variable(term) else term
                            for term in tp))
            for tp in node.patterns)
        return LBGP(patterns, node.scope,
                    _rename_vars(node.certain, mapping),
                    _rename_vars(node.possible, mapping))
    if isinstance(node, (LJoin, LLeftJoin, LUnion)):
        return type(node)(rename_node(node.left, mapping),
                          rename_node(node.right, mapping), node.scope,
                          _rename_vars(node.certain, mapping),
                          _rename_vars(node.possible, mapping))
    if isinstance(node, LFilter):
        return LFilter(rename_expression(node.expr, mapping),
                       rename_node(node.child, mapping), node.scope,
                       _rename_vars(node.certain, mapping),
                       _rename_vars(node.possible, mapping))
    if isinstance(node, LUnionAll):
        return LUnionAll(tuple(rename_node(b, mapping)
                               for b in node.branches),
                         node.spurious_possible, node.scope,
                         _rename_vars(node.certain, mapping),
                         _rename_vars(node.possible, mapping))
    raise TypeError(f"unknown logical node {node!r}")


def rename_logical(query: LogicalQuery,
                   mapping: dict[Variable, Variable]) -> LogicalQuery:
    """Alpha-rename a whole logical query, modifiers included."""
    select = (None if query.select is None
              else tuple(mapping.get(v, v) for v in query.select))
    order_by = tuple((mapping.get(v, v), ascending)
                     for v, ascending in query.order_by)
    return LogicalQuery(root=rename_node(query.root, mapping),
                        select=select, distinct=query.distinct,
                        order_by=order_by, limit=query.limit,
                        offset=query.offset)


# ----------------------------------------------------------------------
# rendering (explain / plan explorer)
# ----------------------------------------------------------------------

def _vars_text(variables: frozenset[Variable]) -> str:
    if not variables:
        return "-"
    return " ".join(f"?{v}" for v in sorted(variables))


def render_node(node: LogicalNode, indent: int = 0) -> list[str]:
    """Human-readable indented rendering of a logical subtree."""
    pad = "  " * indent
    head = (f"[scope {node.scope}] certain={{{_vars_text(node.certain)}}} "
            f"possible={{{_vars_text(node.possible)}}}")
    lines: list[str] = []
    if isinstance(node, LBGP):
        lines.append(f"{pad}BGP({len(node.patterns)} tps) {head}")
        for tp in node.patterns:
            lines.append(f"{pad}  {' '.join(_term_sparql(t) for t in tp)} .")
    elif isinstance(node, (LJoin, LLeftJoin, LUnion)):
        name = {LJoin: "Join", LLeftJoin: "LeftJoin",
                LUnion: "Union"}[type(node)]
        lines.append(f"{pad}{name} {head}")
        lines.extend(render_node(node.left, indent + 1))
        lines.extend(render_node(node.right, indent + 1))
    elif isinstance(node, LFilter):
        lines.append(f"{pad}Filter({expression_sparql(node.expr)}) {head}")
        lines.extend(render_node(node.child, indent + 1))
    elif isinstance(node, LUnionAll):
        spurious = " [rule-3 spurious]" if node.spurious_possible else ""
        lines.append(f"{pad}UnionAll({len(node.branches)} "
                     f"branches){spurious} {head}")
        for index, branch in enumerate(node.branches, start=1):
            lines.append(f"{pad}  branch {index}:")
            lines.extend(render_node(branch, indent + 2))
    else:  # pragma: no cover - defensive
        lines.append(f"{pad}{node!r}")
    return lines


def render_logical(query: LogicalQuery) -> str:
    """Render a whole logical query (root tree plus modifiers)."""
    lines = render_node(query.root)
    modifiers: list[str] = []
    if query.select is not None:
        modifiers.append("SELECT " + " ".join(f"?{v}"
                                              for v in query.select))
    if query.distinct:
        modifiers.append("DISTINCT")
    if query.order_by:
        modifiers.append("ORDER BY " + " ".join(
            (f"?{v}" if ascending else f"DESC(?{v})")
            for v, ascending in query.order_by))
    if query.limit is not None:
        modifiers.append(f"LIMIT {query.limit}")
    if query.offset:
        modifiers.append(f"OFFSET {query.offset}")
    if modifiers:
        lines.append("modifiers: " + "  ".join(modifiers))
    return "\n".join(lines)
