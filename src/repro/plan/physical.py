"""Engine-independent physical plans — stage 3 of the compiler pipeline.

:func:`build_physical` lowers the post-pass logical IR into a
:class:`PhysicalPlan`: per UNION-free branch the GoSN (post Appendix B
transform) and GoJ, the Algorithm 3.1 jvar orders, the init-vs-FaN
filter routing, and the nullification/best-match decision — everything
binding-independent.  The plan never holds pruned state or bindings:

* :class:`~repro.core.engine.LBREngine` *compiles* it — init + prune +
  multi-way join over BitMats;
* :class:`~repro.baselines.naive.NaiveEngine` and the differential
  fuzz oracle *interpret* the same branch structure bottom-up over a
  plain triple store (each branch carries its logical node and, for
  non-well-designed branches, the Appendix B reference rewrite).

Because the plan is a pure function of the (canonical) logical IR and
the immutable store metadata, the engine caches it keyed on the IR's
structural hash (:mod:`repro.plan.hashing`): alpha-equivalent queries
— renamed variables, reformatted text — share one compiled plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..exceptions import UnsupportedQueryError
from ..rdf.terms import Variable, is_variable
from ..sparql.ast import TriplePattern
from ..sparql.expressions import expression_variables
from .logical import LogicalNode, LogicalQuery, LUnionAll, to_ast
from .passes import (BranchAnalysis, PassRecord, PassResult, ScopedFilter)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bitmat.backend import StoreBackend
    from ..bitmat.stats import StoreStats
    from ..core.goj import GoT
    from ..core.gosn import GoSN


@dataclass(frozen=True)
class InitFilter:
    """A single-certain-variable filter applied while loading one TP."""

    expr: object
    var: Variable
    tp_index: int


@dataclass
class BranchPhysicalPlan:
    """Binding-independent analysis of one UNION-free branch.

    Everything here is a pure function of the branch algebra (constants
    included) and the immutable store metadata, so a repeated query
    template reuses it wholesale; only init/prune/join — the parts that
    touch actual triples — run per execution.
    """

    logical: LogicalNode
    patterns: list[TriplePattern]
    gosn: object  # GoSN, post Appendix B transform
    goj: object   # GoJ
    scoped_filters: tuple[ScopedFilter, ...]
    #: init-time filter applications, keyed by TP index
    init_filters: dict[int, tuple[InitFilter, ...]]
    #: FaN filters (``repro.core.multiway.FanFilter``), scope groups
    #: pre-resolved against the GoSN peer-group numbering
    fan_filters: tuple
    ranker: object  # SelectivityRanker
    order_bu: list[Variable]
    order_td: list[Variable]
    row_first: dict[Variable, int]
    nul_required: bool
    well_designed: bool
    nwd_transformed: bool
    converted_edges: frozenset[tuple[int, int]]
    metadata_counts: tuple[int, ...]
    initial_triples: int
    #: variables bound by an absolute-master peer group TP — never
    #: NULL in any emitted row (decides init-vs-FaN filter routing)
    certain_vars: set[Variable] = field(default_factory=set)
    #: which ranker picked the orders: "cost" (statistics-fed model)
    #: or "heuristic" (the paper's static selectivity ranking)
    ordering_source: str = "heuristic"
    #: warm-execution memo filled in by the engine: the post-prune
    #: sorted TP states (plus the GroupPlan over them) of the first
    #: execution.  A plan bakes its constants and init filters in, and
    #: the engine's store snapshot is immutable, so the pruned states
    #: are a pure function of the plan; after pruning the join only
    #: ever *reads* them.  Lifetime is tied to the plan-cache entry.
    pruned_memo: object = field(default=None, compare=False, repr=False)


@dataclass
class PhysicalPlan:
    """The cached compilation of a whole query.

    Variable names are whatever space the input IR used — canonical
    (``_c…``) when compiled through the engine's structural-hash cache,
    source names when compiled directly (explain).
    """

    logical: LogicalQuery  # post-pass IR (root is an LUnionAll)
    branches: list[BranchPhysicalPlan]
    spurious_possible: bool
    all_variables: tuple[Variable, ...]
    renames: dict[Variable, Variable]
    trace: tuple[PassRecord, ...]
    structural_key: str = ""


def build_physical(result: PassResult, store: "StoreBackend",
                   enable_prune: bool = True,
                   structural_key: str = "") -> PhysicalPlan:
    """Lower a pass-pipeline result into a physical plan over *store*."""
    root = result.logical.root
    if not isinstance(root, LUnionAll):
        raise UnsupportedQueryError(
            "physical planning requires the union-normal-form pass")
    branch_filters = result.context.branch_filters
    branch_info = result.context.branch_info
    if len(branch_filters) != len(root.branches):
        raise UnsupportedQueryError(
            "physical planning requires the filter-scope-assignment "
            "pass")
    if len(branch_info) != len(root.branches):
        raise UnsupportedQueryError(
            "physical planning requires the wd-analysis pass")
    branches = [
        _plan_branch(branch, filters, info, store, enable_prune,
                     result.context.ordering_stats)
        for branch, filters, info
        in zip(root.branches, branch_filters, branch_info)]
    return PhysicalPlan(
        logical=result.logical, branches=branches,
        spurious_possible=root.spurious_possible,
        all_variables=tuple(sorted(root.possible)),
        renames=dict(result.context.renames), trace=result.trace,
        structural_key=structural_key)


def _plan_branch(branch: LogicalNode, scoped_filters: tuple[ScopedFilter, ...],
                 info: BranchAnalysis, store: "StoreBackend",
                 enable_prune: bool,
                 ordering_stats: "StoreStats | None" = None,
                 ) -> BranchPhysicalPlan:
    """Steps 1–3 of Alg 5.1: all binding-independent analysis."""
    from ..core.goj import GoJ, GoT
    from ..core.gosn import GoSN
    from ..core.jvar_order import (decide_best_match_required,
                                   get_jvar_order)
    from ..core.selectivity import SelectivityRanker
    from .cost import make_ranker

    gosn = GoSN.from_pattern(to_ast(branch))
    patterns = gosn.patterns
    validate_supported(patterns, scoped_filters)

    if not patterns:
        return BranchPhysicalPlan(
            logical=branch, patterns=[], gosn=gosn, goj=None,
            scoped_filters=scoped_filters, init_filters={},
            fan_filters=(), ranker=SelectivityRanker([], []),
            order_bu=[], order_td=[], row_first={}, nul_required=False,
            well_designed=info.well_designed, nwd_transformed=False,
            converted_edges=frozenset(), metadata_counts=(),
            initial_triples=0)

    nwd_transformed = not info.well_designed
    if info.converted_edges:
        gosn = gosn.with_bidirectional(set(info.converted_edges))

    got = GoT.build(patterns)
    if not _connected_ignoring_ground(got, patterns):
        raise UnsupportedQueryError(
            "query contains a Cartesian product between triple "
            "patterns; LBR does not evaluate Cartesian products")

    goj = GoJ.build(patterns)
    metadata_counts = tuple(metadata_count(store, tp) for tp in patterns)
    ranker = make_ranker(patterns, metadata_counts, ordering_stats, store)
    order_bu, order_td = get_jvar_order(gosn, goj, ranker)
    nul_required = (decide_best_match_required(gosn, goj)
                    or has_disconnected_slave_group(gosn))
    if not enable_prune:
        # without minimality guarantees, reordered evaluation needs
        # the nullification/best-match safety net whenever the query
        # has OPTIONALs at all
        nul_required = nul_required or bool(gosn.uni_edges)
    row_first: dict[Variable, int] = {}
    for rank, var in enumerate(order_bu):
        row_first.setdefault(var, rank)
    certain_vars = certain_variables(gosn)
    init_filters, fan_filters = _route_filters(
        scoped_filters, gosn, patterns, certain_vars)
    return BranchPhysicalPlan(
        logical=branch, patterns=patterns, gosn=gosn, goj=goj,
        scoped_filters=scoped_filters, init_filters=init_filters,
        fan_filters=fan_filters, ranker=ranker,
        order_bu=list(order_bu), order_td=list(order_td),
        row_first=row_first, nul_required=nul_required,
        well_designed=info.well_designed,
        nwd_transformed=nwd_transformed,
        converted_edges=info.converted_edges,
        metadata_counts=metadata_counts,
        initial_triples=sum(metadata_counts),
        certain_vars=certain_vars,
        ordering_source=ranker.source)


def _route_filters(scoped_filters: tuple[ScopedFilter, ...],
                   gosn: "GoSN",
                   patterns: list[TriplePattern],
                   certain_vars: set[Variable],
                   ) -> tuple[dict[int, tuple[InitFilter, ...]], tuple]:
    """Split filters into init-time applications and FaN filters (§5.2).

    Single-variable filters over a *certain* variable apply while
    loading each TP that binds the variable; everything else — filters
    over nullable or multiple variables, and constant filters — runs
    at result generation (FaN), its scope pre-resolved to GoSN
    peer-group ids.  Filters over a nullable variable must not touch
    init: pre-filtering the candidates would turn "filter drops the
    row" into "the OPTIONAL block fails", i.e. fabricate a
    NULL-extended row the filter then judges instead of the real
    binding.
    """
    from ..core.multiway import FanFilter

    # GoSN peer-group numbering — matches GroupPlan's enumeration
    group_of_sn: dict[int, int] = {}
    for group_index, group in enumerate(gosn.peer_groups()):
        for sn in group:
            group_of_sn[sn] = group_index

    init_by_tp: dict[int, list[InitFilter]] = {}
    fans: list = []
    for scoped in scoped_filters:
        expr_vars = expression_variables(scoped.expr)
        if len(expr_vars) == 1 and expr_vars <= certain_vars:
            (var,) = expr_vars
            for index in range(scoped.tp_start, scoped.tp_end):
                if var in patterns[index].variables():
                    init_by_tp.setdefault(index, []).append(
                        InitFilter(scoped.expr, var, index))
            continue
        # zero-variable (constant) filters go through FaN too: a
        # constant-false filter must drop/nullify its scope
        groups = frozenset(
            group_of_sn[gosn.sn_of_tp[i]]
            for i in range(scoped.tp_start, scoped.tp_end))
        fans.append(FanFilter(scoped.expr, groups))
    return ({index: tuple(filters)
             for index, filters in init_by_tp.items()}, tuple(fans))


# ----------------------------------------------------------------------
# supported-fragment validation and structural predicates
# ----------------------------------------------------------------------

def metadata_count(store: "StoreBackend", tp: TriplePattern) -> int:
    """Index-metadata cardinality of one TP (0 for absent constants)."""
    sid = (None if is_variable(tp.s)
           else store.encode_term(tp.s, "s"))
    pid = (None if is_variable(tp.p)
           else store.encode_term(tp.p, "p"))
    oid = (None if is_variable(tp.o)
           else store.encode_term(tp.o, "o"))
    if ((not is_variable(tp.s) and sid is None)
            or (not is_variable(tp.p) and pid is None)
            or (not is_variable(tp.o) and oid is None)):
        return 0
    return store.count_matching(sid, pid, oid)


def validate_supported(patterns: list[TriplePattern],
                       scoped_filters: tuple[ScopedFilter, ...]) -> None:
    """Reject queries outside the paper's supported fragment."""
    from ..core.goj import join_variables

    jvars = join_variables(patterns)
    spaces: dict[Variable, set[str]] = {}
    for tp in patterns:
        if (is_variable(tp.s) and is_variable(tp.p) and is_variable(tp.o)):
            raise UnsupportedQueryError(
                f"all-variable triple pattern not supported: {tp}")
        for position, term in zip("spo", tp):
            if is_variable(term) and term in jvars:
                spaces.setdefault(term, set()).add(position)
    for var, used in spaces.items():
        if "p" in used and used != {"p"}:
            raise UnsupportedQueryError(
                f"join variable ?{var} mixes the predicate position with "
                f"S/O positions; the paper's index supports S-S, S-O and "
                f"O-O joins only")
    # safe-filter validation (§5.2)
    by_range: dict[tuple[int, int], set[Variable]] = {}
    for scoped in scoped_filters:
        scope_vars = by_range.get((scoped.tp_start, scoped.tp_end))
        if scope_vars is None:
            scope_vars = set()
            for tp in patterns[scoped.tp_start:scoped.tp_end]:
                scope_vars |= tp.variables()
            by_range[(scoped.tp_start, scoped.tp_end)] = scope_vars
        if not expression_variables(scoped.expr) <= scope_vars:
            raise UnsupportedQueryError(
                "unsafe FILTER: its variables are not all bound by the "
                "filtered pattern (§5.2 assumes safe filters)")


def certain_variables(gosn: "GoSN") -> set[Variable]:
    """Variables bound by a TP of an absolute-master peer group.

    Those groups are never nullified and never NULL-extended, so their
    variables are bound in every emitted row — the condition under
    which a single-variable filter may be applied at init instead of
    per-row at FaN time.
    """
    absolute = gosn.absolute_masters()
    certain: set[Variable] = set()
    for index, tp in enumerate(gosn.patterns):
        if gosn.peers_of(gosn.sn_of_tp[index]) & absolute:
            certain |= tp.variables()
    return certain


def has_disconnected_slave_group(gosn: "GoSN") -> bool:
    """A slave peer group whose TPs do not form one variable-sharing
    component.

    Such a group's TPs touch each other only through their masters'
    bindings, so pruning cannot enforce the all-or-nothing OPTIONAL
    semantics (Lemma 3.3 relies on GoJ edges *within* the group): one
    TP can fail for a master row while the others matched, and only
    nullification turns that partial match into a failed block.
    """
    absolute = gosn.absolute_masters()
    for group in gosn.peer_groups():
        if group & absolute:
            continue
        with_vars = [
            index
            for sn in group for index in gosn.supernodes[sn].tp_indexes
            if gosn.patterns[index].variables()]
        if len(with_vars) <= 1:
            continue
        vars_of = {index: gosn.patterns[index].variables()
                   for index in with_vars}
        seen = {with_vars[0]}
        frontier = [with_vars[0]]
        while frontier:
            node = frontier.pop()
            for other in with_vars:
                if other not in seen and vars_of[node] & vars_of[other]:
                    seen.add(other)
                    frontier.append(other)
        if len(seen) < len(with_vars):
            return True
    return False


def _connected_ignoring_ground(got: "GoT",
                               patterns: list[TriplePattern]) -> bool:
    """GoT connectivity over TPs that have variables."""
    with_vars = [i for i, tp in enumerate(patterns) if tp.variables()]
    if len(with_vars) <= 1:
        return True
    seen = {with_vars[0]}
    frontier = [with_vars[0]]
    while frontier:
        node = frontier.pop()
        for neighbor in got.adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen >= set(with_vars)
