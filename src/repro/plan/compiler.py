"""The shared compiler frontend — every engine's single entry point.

No engine parses or rewrites SPARQL text on its own: the LBR engine,
the naive baseline, and the differential fuzz oracle all go through
this module.

* :func:`compile_logical` — parse (if needed) and lower to the
  annotated logical IR.  This is all the naive bottom-up evaluator
  consumes: it interprets the IR directly under pure SPARQL
  semantics.
* :func:`compile_frontend` — additionally canonicalize the IR
  (:mod:`repro.plan.hashing`) so the engine can key its physical-plan
  cache on the structural hash.
* :func:`run_pipeline` — run a rewrite-pass pipeline
  (:mod:`repro.plan.passes`) over a logical query.  The fuzz oracle
  uses this with the reference pipeline to obtain UNION-normal-form
  branches and Appendix B reference rewrites without duplicating any
  rewrite logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sparql.ast import Query
from ..sparql.parser import parse_query
from .hashing import CanonicalForm, canonicalize
from .logical import LogicalQuery, build_logical
from .passes import PassManager, PassResult


@dataclass
class FrontendResult:
    """Parse + lowering + canonicalization of one query."""

    query: Query
    #: the logical IR in source variable names
    logical: LogicalQuery
    #: the same IR in canonical variable space, plus the maps and the
    #: structural plan-cache key
    canonical: CanonicalForm


def compile_logical(query: Query | str) -> tuple[Query, LogicalQuery]:
    """Parse (when given text) and lower to the logical IR."""
    if isinstance(query, str):
        query = parse_query(query)
    return query, build_logical(query)


def compile_frontend(query: Query | str) -> FrontendResult:
    """Parse, lower, and canonicalize one query."""
    query, logical = compile_logical(query)
    return FrontendResult(query=query, logical=logical,
                          canonical=canonicalize(logical))


def run_pipeline(logical: LogicalQuery,
                 manager: PassManager | None = None) -> PassResult:
    """Run a rewrite-pass pipeline over a logical query."""
    if manager is None:
        manager = PassManager()
    return manager.run(logical)
