"""Statistics-fed cost model for join ordering — stage 3 refinement.

The paper's static heuristic (§3.2, :mod:`repro.core.selectivity`)
ranks every ordering decision by raw triple-pattern counts.  When the
store carries per-predicate statistics (collected at freeze time,
:mod:`repro.bitmat.stats`), the cost model sharpens the two decisions
Algorithm 3.1 and the stps sort key on:

* ``jvar_key`` becomes the estimated number of **distinct bindings**
  the variable can take — for a two-variable TP over a ground
  predicate that is the predicate's distinct-subject or
  distinct-object count, not its cardinality.  Pruning iterates over
  candidate *bindings*, so a predicate with a million triples but a
  handful of distinct objects is (correctly) ranked highly selective
  on its object variable.
* ``supernode_key`` becomes a **skew-aware expansion estimate**: the
  TP's cardinality scaled by the expected fan-out of the group a
  uniformly random edge belongs to (``Σ size² / Σ size`` from the
  log2 histograms).  A hub-heavy predicate multiplies intermediate
  rows even when its raw count looks tame, so its supernode is
  ordered later.

The ranker is interface-compatible with
:class:`~repro.core.selectivity.SelectivityRanker` — ``get_jvar_order``,
``order_slave_supernodes``, and the engine's stps sort consume either
without knowing which one they got.  Estimates degrade gracefully: a
variable-predicate TP, a predicate absent from the statistics, or a
ground position all fall back to the exact metadata count, which is
what the static heuristic would have used anyway.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..core.selectivity import SelectivityRanker
from ..rdf.terms import Variable, is_variable
from ..sparql.ast import TriplePattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bitmat.backend import StoreBackend
    from ..bitmat.stats import StoreStats


class CostRanker(SelectivityRanker):
    """Ranks TPs, jvars, and supernodes from per-predicate statistics.

    *predicate_ids* carries, per TP, the store id of its ground
    predicate (None for variable predicates or unknown terms); *stats*
    is the store's :class:`~repro.bitmat.stats.StoreStats`.
    """

    source = "cost"

    def __init__(self, patterns: Sequence[TriplePattern],
                 counts: Sequence[int], stats: "StoreStats",
                 predicate_ids: Sequence[int | None]) -> None:
        super().__init__(patterns, counts)
        self._tp_cost: list[float] = []
        self._jvar_key: dict[Variable, int] = {}
        for index, tp in enumerate(patterns):
            s, _p, o = tp
            count = counts[index]
            pid = predicate_ids[index]
            pred = stats.get(pid) if pid is not None else None
            cost = float(count)
            estimates: dict[Variable, int] = {}
            if pred is not None and is_variable(s) and is_variable(o):
                if s == o:  # diagonal: at most one binding per triple
                    estimates[s] = min(pred.distinct_subjects,
                                       pred.distinct_objects)
                else:
                    estimates[s] = pred.distinct_subjects
                    estimates[o] = pred.distinct_objects
                cost = count * max(pred.edge_fanout("s"),
                                   pred.edge_fanout("o"), 1.0)
            else:
                # ground subject/object or variable predicate: the
                # exact metadata count bounds the distinct bindings
                for var in tp:
                    if is_variable(var):
                        estimates[var] = count
            self._tp_cost.append(cost)
            for var, estimate in estimates.items():
                current = self._jvar_key.get(var)
                if current is None or estimate < current:
                    self._jvar_key[var] = estimate

    def supernode_key(self, tp_indexes: Sequence[int]) -> float:
        """Skew-scaled selectivity: the cheapest member TP's expansion
        estimate (mirrors the heuristic's most-selective-TP rule)."""
        if not tp_indexes:
            return 0
        return min(self._tp_cost[i] for i in tp_indexes)


def make_ranker(patterns: Sequence[TriplePattern],
                counts: Sequence[int], stats: "StoreStats | None",
                store: "StoreBackend") -> SelectivityRanker:
    """The ranker physical planning should use over *store*.

    Statistics present → :class:`CostRanker`; absent (unfrozen store,
    pre-statistics image, overlay) → the static
    :class:`SelectivityRanker` heuristic.
    """
    if stats is None:
        return SelectivityRanker(patterns, list(counts))
    predicate_ids = tuple(
        None if is_variable(tp.p) else store.encode_term(tp.p, "p")
        for tp in patterns)
    return CostRanker(patterns, list(counts), stats, predicate_ids)
