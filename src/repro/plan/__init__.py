"""The compiler pipeline: logical IR → rewrite passes → physical plan.

This package is the staged compiler behind Algorithm 5.1:

1. :mod:`repro.plan.logical`  — the annotated logical algebra IR
   lowered from the parser AST (per-node scope, certain/possible
   variables);
2. :mod:`repro.plan.passes`   — the rewrite-pass manager (UNION
   normal form, equality-filter elimination, filter-scope assignment,
   well-designedness analysis + Appendix B transform), each pass
   named, traced, and idempotence-checked;
3. :mod:`repro.plan.physical` — engine-independent physical plans
   (GoSN/GoJ per branch, jvar orders, FaN filter routing, best-match
   decision) that LBR compiles and the baseline/oracle engines
   interpret;
4. :mod:`repro.plan.hashing`  — canonicalization + structural hashing
   of the IR, the plan-cache key under which alpha-equivalent queries
   share one plan;
5. :mod:`repro.plan.compiler` — the shared frontend every engine
   consumes.
"""

from .compiler import (FrontendResult, compile_frontend, compile_logical,
                       run_pipeline)
from .hashing import CanonicalForm, canonicalize, structural_hash
from .logical import (LBGP, LFilter, LJoin, LLeftJoin, LogicalNode,
                      LogicalQuery, LUnion, LUnionAll, build_logical,
                      from_ast, render_logical, render_node, to_ast)
from .passes import (BranchAnalysis, CompilerPass,
                     EqualityFilterEliminationPass,
                     FilterScopeAssignmentPass, PassContext, PassError,
                     PassManager, PassRecord, PassResult, ScopedFilter,
                     UnionNormalFormPass, WellDesignednessPass,
                     default_passes, reference_passes)
from .physical import (BranchPhysicalPlan, InitFilter, PhysicalPlan,
                       build_physical)

__all__ = [
    "BranchAnalysis", "BranchPhysicalPlan", "CanonicalForm",
    "CompilerPass", "EqualityFilterEliminationPass",
    "FilterScopeAssignmentPass", "FrontendResult", "InitFilter", "LBGP",
    "LFilter", "LJoin", "LLeftJoin", "LUnion", "LUnionAll",
    "LogicalNode", "LogicalQuery", "PassContext", "PassError",
    "PassManager", "PassRecord", "PassResult", "PhysicalPlan",
    "ScopedFilter", "UnionNormalFormPass", "WellDesignednessPass",
    "build_logical", "build_physical", "canonicalize",
    "compile_frontend", "compile_logical", "default_passes", "from_ast",
    "reference_passes", "render_logical", "render_node", "run_pipeline",
    "structural_hash", "to_ast",
]
