"""LiveGraphStore: durable, updatable storage over WAL + overlays.

On-disk layout (one directory)::

    MANIFEST            JSON: base image name, base_seq, WAL segments
    base-<seq>.lbr      frozen store image (persist format, CRC'd)
    wal-<seq>.log       WAL segments; <seq> is the first batch inside

The manifest is the recovery root and the *only* file updated in
place — always atomically (temp file → fsync → rename → directory
fsync), so a crash sees either the old or the new manifest, each of
which names a complete, consistent (image, segments) set.  Files are
deleted only after the manifest that stops referencing them is
durable, and anything in the directory the manifest does not name is
an orphan from an interrupted checkpoint, removed at open.

Write path (single writer, serialized by a lock):

1. normalize the batch into the cumulative :class:`TripleDelta`;
2. append it to the current WAL segment and **fsync — the commit
   point**;
3. publish a fresh :class:`~repro.update.overlay.OverlayStore` (base +
   delta) through the ``on_publish`` callback — readers on older
   snapshots are untouched (copy-on-write).

If the overlay cannot represent the batch
(:class:`~repro.update.overlay.SharedRegionViolation`: a term now on
both S and O outside the base's shared region), the store checkpoints
synchronously — rebuilds the base with a recomputed shared region —
and publishes that instead; the WAL record is already durable either
way.

Compaction runs in the background: it seals the current segment
(rotates to a new one so writers never block), materializes base +
delta into a new deterministic frozen store out of band, then briefly
takes the writer lock to swap — rebase the delta of batches committed
meanwhile onto the new base, write the image + manifest, drop the old
files.  A compaction that loses the race with a synchronous
checkpoint aborts harmlessly.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Callable, Iterable

from ..bitmat.backend import open_image
from ..bitmat.mmapstore import dump_mmap_bytes
from ..bitmat.persist import dump_store_bytes
from ..bitmat.store import BitMatStore
from ..exceptions import StorageError, internal_error
from ..fsio import atomic_write, join_path
from ..rdf.graph import Graph
from ..rdf.terms import Triple
from .faultfs import FileSystem, RealFS
from .overlay import (OverlayStore, SharedRegionViolation, TripleDelta,
                      store_has_triple)
from .wal import WriteAheadLog, replay_wal

MANIFEST = "MANIFEST"
_MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class LiveConfig:
    """Compaction policy of one live store."""

    #: compact when the delta diverges from the base by this many
    #: triples (None = only explicit :meth:`LiveGraphStore.compact`)
    compact_threshold: int | None = 10_000
    #: run compactions on a background thread; off = compaction only
    #: happens inline via :meth:`LiveGraphStore.compact` (deterministic
    #: operation schedules for the crash-recovery property suite)
    background: bool = True
    #: on-disk base-image format: ``"mmap"`` writes ``LBRMMAP1`` (the
    #: memory-mapped lazy format — checkpoints and compactions emit it,
    #: so a restart opens the base without decoding a single predicate),
    #: ``"store"`` the fully-decoded ``LBRSTORE2``.  Recovery sniffs the
    #: image magic, so either format opens regardless of this setting.
    image_format: str = "mmap"


_join = join_path


class LiveGraphStore:
    """One durable graph: base image + WAL segments + delta overlay."""

    def __init__(self, directory: str, fs: FileSystem | None = None,
                 config: LiveConfig | None = None,
                 on_publish: Callable[[BitMatStore], None] | None = None,
                 ) -> None:
        self.directory = directory
        self.fs = fs or RealFS()
        self.config = config or LiveConfig()
        self.on_publish = on_publish
        self._write_lock = threading.RLock()
        self._base: BitMatStore | None = None
        self._base_seq = 0
        self._image = ""  # current base image file name (manifest root)
        self._segments: list[str] = []
        self._delta = TripleDelta.empty()
        self._wal: WriteAheadLog | None = None
        self._current: BitMatStore | None = None
        #: batches committed while a compaction is in flight (for the
        #: delta rebase at swap time); None = no compaction running
        self._compaction_log: list[tuple[tuple, tuple]] | None = None
        self._counters = {"batches": 0, "compactions": 0, "checkpoints": 0,
                          "compaction_failures": 0, "recovered_batches": 0}
        self._compact_event = threading.Event()
        self._compactor: threading.Thread | None = None
        self._last_compaction_error: Exception | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # opening / recovery
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, directory: str, fs: FileSystem | None = None,
             config: LiveConfig | None = None,
             on_publish: Callable[[BitMatStore], None] | None = None,
             initial: Graph | BitMatStore | None = None,
             ) -> "LiveGraphStore":
        """Open (recovering) or initialize a live store directory.

        *initial* (a graph or prebuilt store) seeds a brand-new
        directory only; when a manifest already exists the directory
        recovers from disk and *initial* is ignored, so re-opening
        after a crash can never discard recovered state.
        """
        store = cls(directory, fs=fs, config=config, on_publish=on_publish)
        store.fs.makedirs(directory)
        if store.fs.exists(_join(directory, MANIFEST)):
            store._recover()
        else:
            store._initialize(initial)
        try:
            store._publish_current()
        except SharedRegionViolation:
            # the replayed delta contains a batch that forced a rebuild
            # before the crash; recovery takes the same path
            store._checkpoint()
        if store.config.background:
            store._start_compactor()
        return store

    def _initialize(self, initial: Graph | BitMatStore | None) -> None:
        if isinstance(initial, BitMatStore):
            seed = initial
        else:
            seed = BitMatStore.build(initial if initial is not None
                                     else Graph())
        self._base_seq = 0
        image = self._image_name()
        self._write_file(image, self._dump_image(seed))
        # the base *is* the on-disk image: serve the store reopened from
        # the bytes just written (for the mmap format that means lazy,
        # page-cache-backed reads), never the transient in-memory build
        base = self._open_image(image)
        base.freeze()
        self._base = base
        self._image = image
        segment = self._segment_name(1)
        self._segments = [segment]
        self._write_manifest(image)
        self._wal = WriteAheadLog(_join(self.directory, segment),
                                  fs=self.fs, next_seq=1).open()

    def _recover(self) -> None:
        manifest = self._read_manifest()
        image = manifest["base"]
        self._base_seq = manifest["base_seq"]
        self._segments = list(manifest["segments"])
        base = self._open_image(image)
        base.freeze()
        self._base = base
        self._image = image
        self._delta = TripleDelta.empty()
        next_seq = self._base_seq + 1
        for segment in self._segments:
            records = replay_wal(self.fs, _join(self.directory, segment),
                                 first_seq=next_seq)
            for record in records:
                self._delta = self._delta.apply_batch(
                    record.adds, record.deletes,
                    lambda triple: store_has_triple(base, triple))
            next_seq += len(records)
            self._counters["recovered_batches"] += len(records)
        self._wal = WriteAheadLog(
            _join(self.directory, self._segments[-1]),
            fs=self.fs, next_seq=next_seq).open()
        self._remove_orphans(keep={MANIFEST, image, *self._segments})

    def _remove_orphans(self, keep: set[str]) -> None:
        for name in self.fs.listdir(self.directory):
            if name not in keep:
                self.fs.remove(_join(self.directory, name))

    # ------------------------------------------------------------------
    # manifest / file plumbing
    # ------------------------------------------------------------------

    def _segment_name(self, first_seq: int) -> str:
        return f"wal-{first_seq:08d}.log"

    def _image_name(self) -> str:
        suffix = "lbrm" if self.config.image_format == "mmap" else "lbr"
        return f"base-{self._base_seq:08d}.{suffix}"

    def _dump_image(self, store: BitMatStore) -> bytes:
        """Serialize *store* in the configured base-image format."""
        if self.config.image_format == "mmap":
            return dump_mmap_bytes(store)
        if self.config.image_format == "store":
            return dump_store_bytes(store)
        raise StorageError(
            f"unknown image_format {self.config.image_format!r} "
            "(expected 'mmap' or 'store')")

    def _open_image(self, name: str) -> BitMatStore:
        """Open a base image by magic, through the filesystem seam."""
        return open_image(self.fs, _join(self.directory, name))

    def _write_file(self, name: str, payload: bytes) -> None:
        """Atomic durable write: temp → fsync → rename → dir fsync."""
        atomic_write(self.fs, _join(self.directory, name), payload)

    def _write_manifest(self, image: str) -> None:
        manifest = {"format": _MANIFEST_FORMAT, "base": image,
                    "base_seq": self._base_seq,
                    "segments": self._segments}
        payload = json.dumps(manifest, sort_keys=True).encode("utf-8")
        self._write_file(MANIFEST, payload)

    def _read_manifest(self) -> dict:
        payload = self.fs.read_bytes(_join(self.directory, MANIFEST))
        try:
            manifest = json.loads(payload)
        except ValueError as exc:
            raise StorageError(f"corrupt manifest: {exc}") from exc
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise StorageError(
                f"unsupported manifest format {manifest.get('format')!r}")
        return manifest

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def current_store(self) -> BitMatStore:
        """The latest published (frozen) store."""
        return self._current

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently committed batch."""
        return self._wal.next_seq - 1

    def stats(self) -> dict:
        with self._write_lock:
            return {**self._counters, "last_seq": self.last_seq,
                    "base_seq": self._base_seq,
                    "delta_size": self._delta.size,
                    "segments": len(self._segments),
                    "visible_triples": self._current.num_triples,
                    "compacting": self._compaction_log is not None,
                    "last_compaction_error":
                        (str(self._last_compaction_error)
                         if self._last_compaction_error else None)}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def apply_batch(self, adds: Iterable[Triple],
                    deletes: Iterable[Triple]) -> dict:
        """Atomically commit one batch of adds/deletes.

        Returns a summary dict once the batch is durable *and* visible
        to new readers.  Deletes apply before adds, so a triple in
        both ends up present.
        """
        adds = tuple(adds)
        deletes = tuple(deletes)
        with self._write_lock:
            if self._closed:
                raise StorageError("live store is closed")
            base = self._base
            candidate = self._delta.apply_batch(
                adds, deletes,
                lambda triple: store_has_triple(base, triple))
            record = self._wal.append_batch(adds, deletes)
            # ---- durable from here on: everything below must succeed
            #      or be reconstructible by recovery ----
            self._counters["batches"] += 1
            if self._compaction_log is not None:
                self._compaction_log.append((adds, deletes))
            checkpointed = False
            try:
                self._delta = candidate
                self._publish_current()
            except SharedRegionViolation:
                # the overlay cannot represent this batch: rebuild the
                # base (recomputing the shared region) synchronously
                self._checkpoint()
                checkpointed = True
            if (not checkpointed
                    and self.config.compact_threshold is not None
                    and self._delta.size >= self.config.compact_threshold):
                self.request_compaction()
            return {"seq": record.seq,
                    "added": len(adds), "deleted": len(deletes),
                    "delta_size": self._delta.size,
                    "visible_triples": self._current.num_triples,
                    "checkpointed": checkpointed}

    def _publish_current(self) -> None:
        """Rebuild and publish the visible store for the current delta.

        Reference protocol: the live store owns one reference on
        ``_current`` (dropped when the next publication replaces it, or
        at :meth:`close`), and the ``on_publish`` callback *adopts* a
        reference of its own — the snapshot machinery closes it when
        the snapshot retires.  All of this is free for plain in-memory
        stores (their retain/close are no-ops) and exactly what keeps
        an mmap-backed base from being unmapped under a reader.
        """
        if self._delta.is_empty():
            store = self._base.retain()
        else:
            # the overlay's creation reference is ours; it retains the
            # base internally for as long as it lives
            store = OverlayStore.build(self._base, self._delta)
            store.freeze()
        previous = self._current
        self._current = store
        if previous is not None:
            previous.close()
        if self.on_publish is not None:
            self.on_publish(store.retain())

    def _materialize(self, base: BitMatStore,
                     delta: TripleDelta) -> BitMatStore:
        """base − deleted + added, rebuilt as a deterministic store."""
        graph = Graph(triple for triple in base.iter_triples()
                      if triple not in delta.deleted)
        graph.add_all(delta.added)
        store = BitMatStore.build(graph)
        store.freeze()
        return store

    def _checkpoint(self) -> None:
        """Synchronously rebuild the base from base + delta.

        Caller holds the writer lock.  Also the swap step of a
        background compaction when no batches raced it.
        """
        new_base = self._materialize(self._base, self._delta)
        self._install_base(new_base, self.last_seq)
        self._counters["checkpoints"] += 1
        self._publish_current()

    def _install_base(self, new_base: BitMatStore, base_seq: int) -> None:
        """Make *new_base* the recovery root as of batch *base_seq*.

        Caller holds the writer lock and guarantees ``self._delta``
        already reflects only batches after *base_seq* (empty for a
        synchronous checkpoint, rebased for a compaction swap).

        The rebuilt in-memory *new_base* only exists to be serialized:
        the base that actually serves reads is reopened from the image
        just written ("the base is the on-disk image"), so a restart
        recovers into the *same* store the live process was using —
        and with the mmap format, the resident set stays bounded by
        the predicates queries actually touch.
        """
        old_base = self._base
        old_names = {self._image, *self._segments}
        self._base_seq = base_seq
        self._delta = (self._delta if base_seq < self.last_seq
                       else TripleDelta.empty())
        image = self._image_name()
        self._write_file(image, self._dump_image(new_base))
        new_base.close()
        base = self._open_image(image)
        base.freeze()
        self._base = base
        self._image = image
        # preserve the live sequence counter: in a compaction swap the
        # surviving segment already holds batches committed during the
        # rebuild, and their seqs must never be reissued
        next_seq = self._wal.next_seq
        self._wal.close()
        segment = self._segment_name(base_seq + 1)
        self._segments = [segment]
        self._wal = WriteAheadLog(_join(self.directory, segment),
                                  fs=self.fs, next_seq=next_seq).open()
        self._write_manifest(image)
        # the new manifest is durable: the old generation's files are
        # garbage now (crash here leaves orphans, removed at next open)
        for name in old_names - {image, segment}:
            if self.fs.exists(_join(self.directory, name)):
                # unlinking a mapped image is POSIX-safe: readers still
                # holding the old base (via snapshot/overlay references)
                # keep its pages until their last reference closes it
                self.fs.remove(_join(self.directory, name))
        self.fs.fsync_dir(self.directory)
        if old_base is not None:
            old_base.close()

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def request_compaction(self) -> None:
        """Ask for a compaction (background thread, or a no-op marker
        consumed by the next explicit :meth:`compact`)."""
        self._compact_event.set()

    def compact(self) -> bool:
        """Run one compaction now (inline); True when a swap happened.

        Safe to call concurrently with writers: only the rotation and
        the swap take the writer lock, the rebuild itself runs
        unlocked.
        """
        self._compact_event.clear()
        with self._write_lock:
            if self._closed or self._compaction_log is not None:
                return False
            if self._delta.is_empty():
                return False
            # retain the base across the unlocked rebuild: a racing
            # synchronous checkpoint may drop the live store's own
            # reference mid-materialize
            base = self._base.retain()
            delta = self._delta
            seal_seq = self.last_seq
            try:
                # rotate: seal the current segment, open the next one,
                # and record both in the manifest so a crash
                # mid-compaction recovers every committed batch from
                # the sealed ones
                self._wal.close()
                segment = self._segment_name(seal_seq + 1)
                self._segments.append(segment)
                self._wal = WriteAheadLog(
                    _join(self.directory, segment), fs=self.fs,
                    next_seq=seal_seq + 1).open()
                self._write_manifest(self._image_name())
                self._compaction_log = []
            except BaseException:
                # a failed rotation must not strand the retained base
                base.close()
                raise
        try:
            new_base = self._materialize(base, delta)
        except BaseException:
            with self._write_lock:
                self._compaction_log = None
            raise
        finally:
            base.close()
        with self._write_lock:
            racing = self._compaction_log
            self._compaction_log = None
            if self._base is not base:
                # a synchronous checkpoint replaced the base while we
                # were rebuilding; our result is stale — drop it
                return False
            rebased = TripleDelta.empty()
            for adds, deletes in racing:
                rebased = rebased.apply_batch(
                    adds, deletes,
                    lambda triple: store_has_triple(new_base, triple))
            self._delta = rebased
            self._install_base(new_base, seal_seq)
            self._counters["compactions"] += 1
            self._publish_current()
            return True

    def _start_compactor(self) -> None:
        def loop() -> None:
            while True:
                self._compact_event.wait()
                if self._closed:
                    return
                try:
                    self.compact()
                except Exception as exc:  # pragma: no cover - defensive
                    # a failed background compaction must not kill the
                    # thread (the WAL keeps everything durable and the
                    # next trigger retries), but it must be typed and
                    # counted so stats()/soak gates see it
                    with self._write_lock:
                        self._counters["compaction_failures"] += 1
                        self._last_compaction_error = internal_error(exc)

        self._compactor = threading.Thread(target=loop, daemon=True,
                                           name="lbr-compactor")
        self._compactor.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Flush and fsync the WAL without closing (graceful drain)."""
        with self._write_lock:
            if not self._closed and self._wal is not None:
                self._wal.sync()

    def close(self) -> None:
        """Flush and fsync the WAL, stop the compactor, drop store refs."""
        with self._write_lock:
            if self._closed:
                return
            self._closed = True
            if self._wal is not None:
                self._wal.close()
        self._compact_event.set()  # wake the compactor so it exits
        if self._compactor is not None:
            self._compactor.join(timeout=10)
        # drop the live store's own references; published snapshots
        # hold their own, so readers drain before anything unmaps
        with self._write_lock:
            if self._current is not None:
                self._current.close()
            if self._base is not None:
                self._base.close()

    def __enter__(self) -> "LiveGraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
