"""Filesystem seam with fault injection for crash-recovery testing.

Every durability-critical file operation the update subsystem performs
(WAL appends, fsyncs, manifest renames, image writes) goes through a
:class:`FileSystem`.  Production uses :class:`RealFS`, a thin wrapper
over ``os``/``io``.  The crash-recovery property suite uses
:class:`MemFS` wrapped in :class:`FaultyFS`, which counts operations
and can *fail* (raise ``OSError``), *short-write* (persist only a
prefix of the buffer), or *crash* (raise :class:`SimulatedCrash`) at
the Nth call — so the exact production code path is exercised against
every possible interruption point.

:class:`MemFS` models durability the way a kernel page cache does:

* the **visible** layer is what a running process observes — every
  ``write`` lands there immediately;
* the **durable** layer is what survives a crash — a file's visible
  bytes are copied there only on ``fsync``; namespace operations
  (``replace``/``remove`` of files in a directory) become durable only
  on ``fsync_dir`` of the containing directory.

``after_crash(mode)`` rebuilds a fresh MemFS from the wreckage:

* ``"durable"`` — only fsynced bytes and fsynced namespace ops
  survive (the adversarial kernel that drops everything it legally
  may);
* ``"all"`` — the visible layer survives intact (the friendly kernel
  that happened to flush everything before power-off).

A crash injected *during* a write persists a prefix of the buffer into
the visible layer first, so ``"all"`` mode exercises torn frames and
``"durable"`` mode exercises lost-but-acknowledged-to-nobody tails.
Recovery must produce a correct state in **both** modes for every
crash point — that is the property the test suite replays.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass

from ..fsio import FileHandle, FileSystem, RealFS

__all__ = ["FaultPlan", "FaultyFS", "FileHandle", "FileSystem", "MemFS",
           "RealFS", "SimulatedCrash"]


class SimulatedCrash(BaseException):
    """Injected process death.

    Derives from ``BaseException`` so ordinary ``except Exception``
    recovery/cleanup code in the paths under test cannot swallow it —
    a real ``kill -9`` runs no handlers either.
    """

    def __init__(self, op_index: int, op_name: str) -> None:
        super().__init__(f"simulated crash at op #{op_index} ({op_name})")
        self.op_index = op_index
        self.op_name = op_name


# FileHandle / FileSystem / RealFS now live in :mod:`repro.fsio` (a
# dependency leaf shared with the persistence layer); re-exported above
# so existing imports keep working.


# ----------------------------------------------------------------------
# in-memory filesystem with a durability model
# ----------------------------------------------------------------------


def _norm(path: str) -> str:
    return os.path.normpath(path)


class _MemHandle:
    __slots__ = ("_fs", "path", "_pos", "_closed", "_readable")

    def __init__(self, fs: "MemFS", path: str, pos: int,
                 readable: bool = False) -> None:
        self._fs = fs
        self.path = path
        self._pos = pos
        self._closed = False
        self._readable = readable

    def write(self, data: bytes) -> int:
        if self._closed:
            raise ValueError("write to closed file")
        written = self._fs._write(self.path, self._pos, data)
        self._pos += written
        return written

    def read(self, size: int = -1) -> bytes:
        if not self._readable:
            raise io.UnsupportedOperation("not readable")
        data = self._fs._visible[self.path]
        end = len(data) if size < 0 else min(len(data), self._pos + size)
        chunk = bytes(data[self._pos:end])
        self._pos = end
        return chunk

    def flush(self) -> None:
        if self._closed:
            raise ValueError("flush of closed file")
        # visible layer is shared already; flush is a no-op

    def fsync(self) -> None:
        if self._closed:
            raise ValueError("fsync of closed file")
        self._fs._fsync_file(self.path)

    def close(self) -> None:
        self._closed = True

    def tell(self) -> int:
        return self._pos


class MemFS:
    """In-memory filesystem tracking visible vs durable state.

    ``_visible`` is what a running process sees; ``_durable`` is what a
    crash preserves.  File content crosses into ``_durable`` on file
    fsync; namespace changes (create/rename/remove) cross on
    ``fsync_dir``.  A file fsync also makes *that file's* name durable
    — a simplification of POSIX (where the name needs the directory
    fsync) that is conservative for our tests: recovery must cope with
    the file existing, which is the harder case.
    """

    def __init__(self) -> None:
        self._visible: dict[str, bytearray] = {}
        self._durable: dict[str, bytes] = {}
        self._dirs: set[str] = set()
        self._durable_dirs: set[str] = set()
        # namespace ops (per containing dir) not yet made durable:
        # ("put", path) — name now refers to visible content at crash
        # ("del", path) — name was removed
        self._pending_ns: list[tuple[str, str]] = []

    # -- FileSystem interface ------------------------------------------

    def exists(self, path: str) -> bool:
        path = _norm(path)
        return path in self._visible or path in self._dirs

    def listdir(self, path: str) -> list[str]:
        prefix = _norm(path) + os.sep
        if _norm(path) not in self._dirs:
            raise FileNotFoundError(path)
        names = set()
        for candidate in list(self._visible) + list(self._dirs):
            if candidate.startswith(prefix):
                names.add(candidate[len(prefix):].split(os.sep, 1)[0])
        return sorted(names)

    def makedirs(self, path: str) -> None:
        path = _norm(path)
        parts = path.split(os.sep)
        for i in range(1, len(parts) + 1):
            parent = os.sep.join(parts[:i])
            if parent:
                self._dirs.add(parent)
        # directory creation is modelled as immediately durable: every
        # crash point of interest happens long after mkdir
        self._durable_dirs.update(self._dirs)

    def read_bytes(self, path: str) -> bytes:
        path = _norm(path)
        if path not in self._visible:
            raise FileNotFoundError(path)
        return bytes(self._visible[path])

    def file_size(self, path: str) -> int:
        path = _norm(path)
        if path not in self._visible:
            raise FileNotFoundError(path)
        return len(self._visible[path])

    def open_append(self, path: str) -> _MemHandle:
        path = _norm(path)
        if path not in self._visible:
            self._create(path)
        return _MemHandle(self, path, len(self._visible[path]))

    def open_write(self, path: str) -> _MemHandle:
        path = _norm(path)
        self._create(path)
        return _MemHandle(self, path, 0)

    def truncate(self, path: str, size: int) -> None:
        path = _norm(path)
        if path not in self._visible:
            raise FileNotFoundError(path)
        del self._visible[path][size:]
        # mirrors RealFS.truncate, which fsyncs after truncating
        self._fsync_file(path)

    def replace(self, src: str, dst: str) -> None:
        src, dst = _norm(src), _norm(dst)
        if src not in self._visible:
            raise FileNotFoundError(src)
        self._visible[dst] = self._visible.pop(src)
        self._pending_ns.append(("del", src))
        self._pending_ns.append(("put", dst))

    def remove(self, path: str) -> None:
        path = _norm(path)
        if path not in self._visible:
            raise FileNotFoundError(path)
        del self._visible[path]
        self._pending_ns.append(("del", path))

    def fsync_dir(self, path: str) -> None:
        prefix = _norm(path) + os.sep
        kept: list[tuple[str, str]] = []
        for op, target in self._pending_ns:
            if not target.startswith(prefix):
                kept.append((op, target))
            elif op == "del":
                self._durable.pop(target, None)
            else:  # "put": the rename is durable; content durability is
                # whatever was last fsynced under the *source* name —
                # our callers fsync content before renaming, so the
                # visible bytes are the right ones to persist here
                self._durable[target] = bytes(self._visible[target])
        self._pending_ns = kept

    # -- internals ------------------------------------------------------

    def _create(self, path: str) -> None:
        self._visible[path] = bytearray()
        self._pending_ns.append(("put", path))

    def _write(self, path: str, pos: int, data: bytes) -> int:
        buf = self._visible[path]
        if pos == len(buf):
            buf.extend(data)
        else:
            buf[pos:pos + len(data)] = data
        return len(data)

    def _fsync_file(self, path: str) -> None:
        self._durable[path] = bytes(self._visible[path])
        # fsyncing the file pins its current name (see class docstring)
        self._pending_ns = [(op, target) for op, target in self._pending_ns
                            if target != path]

    # -- crash simulation ----------------------------------------------

    def after_crash(self, mode: str = "durable") -> "MemFS":
        """A fresh MemFS holding what survived the crash.

        ``"durable"`` keeps only fsynced state; ``"all"`` keeps the
        full visible layer (including torn frames written by the
        crashing op).
        """
        survivor = MemFS()
        survivor._dirs = set(self._durable_dirs)
        survivor._durable_dirs = set(self._durable_dirs)
        if mode == "all":
            for path, data in self._visible.items():
                survivor._visible[path] = bytearray(data)
                survivor._durable[path] = bytes(data)
        elif mode == "durable":
            for path, data in self._durable.items():
                survivor._visible[path] = bytearray(data)
                survivor._durable[path] = bytes(data)
        else:
            raise ValueError(f"unknown crash mode: {mode!r}")
        return survivor


# ----------------------------------------------------------------------
# fault injection wrapper
# ----------------------------------------------------------------------


@dataclass
class FaultPlan:
    """When and how to misbehave.

    Operations are counted from 1 in the order the code under test
    issues them.  ``crash_at`` raises :class:`SimulatedCrash` at that
    op (after applying a *prefix* of the buffer if the op is a write —
    ``torn_fraction`` of it, so torn frames are part of every crash
    schedule).  ``fail_at`` raises ``OSError`` instead, modelling a
    transient I/O error the caller is expected to surface, not
    swallow.
    """

    crash_at: int | None = None
    fail_at: int | None = None
    torn_fraction: float = 0.5


#: operations whose injected crash tears the in-flight buffer
_WRITE_OPS = frozenset({"write"})


class _FaultyHandle:
    __slots__ = ("_fs", "_inner")

    def __init__(self, fs: "FaultyFS", inner) -> None:
        self._fs = fs
        self._inner = inner

    def write(self, data: bytes) -> int:
        return self._fs._op("write", lambda: self._inner.write(data),
                            handle=self._inner, data=data)

    def read(self, size: int = -1) -> bytes:
        return self._inner.read(size)

    def flush(self) -> None:
        self._fs._op("flush", self._inner.flush)

    def fsync(self) -> None:
        self._fs._op("fsync", self._inner.fsync)

    def close(self) -> None:
        # close is not a durability point and not a useful crash site:
        # never injected, so op schedules stay dense with real ops
        self._inner.close()

    def tell(self) -> int:
        return self._inner.tell()


class FaultyFS:
    """Counts ops on an inner FileSystem and injects faults.

    Run a scenario once with no plan to learn ``op_count``; then rerun
    it once per ``crash_at`` in ``1..op_count`` to enumerate every
    crash point the code can hit.
    """

    def __init__(self, inner: FileSystem,
                 plan: FaultPlan | None = None) -> None:
        self.inner = inner
        self.plan = plan or FaultPlan()
        self.op_count = 0

    # -- injection core -------------------------------------------------

    def _op(self, name: str, call, handle=None, data: bytes | None = None):
        self.op_count += 1
        index = self.op_count
        if self.plan.fail_at == index:
            raise OSError(f"injected I/O failure at op #{index} ({name})")
        if self.plan.crash_at == index:
            if name in _WRITE_OPS and data:
                # the crash interrupts the write mid-buffer: a prefix
                # reaches the page cache, the rest is lost
                torn = data[:int(len(data) * self.plan.torn_fraction)]
                if torn:
                    handle.write(torn)
            raise SimulatedCrash(index, name)
        return call()

    # -- FileSystem interface (counted ops) -----------------------------

    def exists(self, path: str) -> bool:
        # reads are never crash points: crashing while *reading* cannot
        # change durable state, so injecting there only inflates the
        # schedule without adding coverage
        return self.inner.exists(path)

    def listdir(self, path: str) -> list[str]:
        return self.inner.listdir(path)

    def makedirs(self, path: str) -> None:
        self.inner.makedirs(path)

    def read_bytes(self, path: str) -> bytes:
        return self.inner.read_bytes(path)

    def file_size(self, path: str) -> int:
        return self.inner.file_size(path)

    def open_append(self, path: str) -> _FaultyHandle:
        handle = self._op("open_append",
                          lambda: self.inner.open_append(path))
        return _FaultyHandle(self, handle)

    def open_write(self, path: str) -> _FaultyHandle:
        handle = self._op("open_write",
                          lambda: self.inner.open_write(path))
        return _FaultyHandle(self, handle)

    def truncate(self, path: str, size: int) -> None:
        self._op("truncate", lambda: self.inner.truncate(path, size))

    def replace(self, src: str, dst: str) -> None:
        self._op("replace", lambda: self.inner.replace(src, dst))

    def remove(self, path: str) -> None:
        self._op("remove", lambda: self.inner.remove(path))

    def fsync_dir(self, path: str) -> None:
        self._op("fsync_dir", lambda: self.inner.fsync_dir(path))
