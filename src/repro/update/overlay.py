"""Delta overlays: committed updates served without rebuilding BitMats.

A :class:`TripleDelta` is the *normalized* net effect of every batch
committed since the base store was frozen, kept in term space with
three invariants (``added ∩ base = ∅``, ``deleted ⊆ base``,
``added ∩ deleted = ∅``) so counts and membership compose exactly:
the visible dataset is ``base − deleted + added``, always.

An :class:`OverlayStore` *is a* :class:`~repro.bitmat.store.BitMatStore`
whose per-predicate sorted pair lists are a lazy merge of the frozen
base's lists with the delta — untouched predicates return the base's
list by identity (and their BitMat loads delegate to the base's warm
caches), touched predicates merge on first access.  Because every
engine path — TP initialization, pruning folds/unfolds, enumeration,
selectivity — reads the store through those pair lists, the overlay is
consulted everywhere without a single change to the execution code.

Dictionary growth is handled by :class:`DeltaDictionary`, which
extends the frozen base mapping with new term ids instead of copying
it.  The one thing an overlay *cannot* represent is a term that comes
to occur on both the subject and the object dimension without being in
the base's shared ``V_so`` region: S↔O joins translate ids only inside
``1..num_shared`` (Appendix D of the paper), so such a term would
silently miss joins.  Encoding detects this and raises
:class:`SharedRegionViolation`; the live store reacts by rebuilding the
base synchronously (a minor compaction), which re-derives the shared
region.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from ..bitmat.bitmat import BitMat
from ..bitmat.bitvec import BitVector
from ..bitmat.store import BitMatStore
from ..exceptions import DictionaryError, StorageError
from ..rdf.dictionary import Dictionary, _sort_key
from ..rdf.terms import Term, Triple


class SharedRegionViolation(DictionaryError):
    """An update needs a term on both S and O outside the shared region.

    Raised at overlay construction; the caller must fall back to a
    full rebuild, which recomputes ``V_so`` to include the term.
    """

    def __init__(self, term: Term) -> None:
        super().__init__(
            f"term {term!r} now occurs as both subject and object but is "
            "outside the base store's shared id region; the overlay "
            "cannot represent it — a rebuild is required")
        self.term = term


def _triple_key(triple: Triple):
    return tuple(_sort_key(term) for term in triple)


@dataclass(frozen=True)
class TripleDelta:
    """Normalized net change against one frozen base store."""

    added: frozenset
    deleted: frozenset

    @classmethod
    def empty(cls) -> "TripleDelta":
        return cls(frozenset(), frozenset())

    def apply_batch(self, adds: Iterable[Triple],
                    deletes: Iterable[Triple],
                    base_has: Callable[[Triple], bool]) -> "TripleDelta":
        """Fold one batch in (deletes first, then adds).

        *base_has* answers membership in the frozen base; it is what
        keeps the invariants: deleting a never-visible triple and
        re-adding a base triple that was never deleted are both
        no-ops, so ``size`` only ever reflects real divergence from
        the base.
        """
        added = set(self.added)
        deleted = set(self.deleted)
        for triple in deletes:
            if triple in added:
                added.discard(triple)
            elif base_has(triple):
                deleted.add(triple)
        for triple in adds:
            if triple in deleted:
                deleted.discard(triple)
            elif not base_has(triple):
                added.add(triple)
        return TripleDelta(frozenset(added), frozenset(deleted))

    @property
    def size(self) -> int:
        """Triples by which the visible state diverges from the base."""
        return len(self.added) + len(self.deleted)

    def is_empty(self) -> bool:
        return not self.added and not self.deleted


def store_has_triple(store: BitMatStore, triple: Triple) -> bool:
    """Membership of a ground triple, False when any term is unknown."""
    sid = store.dictionary.subject_id(triple.s)
    pid = store.dictionary.predicate_id(triple.p)
    oid = store.dictionary.object_id(triple.o)
    if sid is None or pid is None or oid is None:
        return False
    return store.has_triple(sid, pid, oid)


class DeltaDictionary(Dictionary):
    """A frozen base dictionary plus extension id tables.

    New terms get ids past the base's highest on their dimension; base
    ids are never reassigned, so every pair list and cached BitMat of
    the base stays valid under the extended mapping.  The shared
    region is frozen at the base's ``num_shared`` — extending it would
    renumber the subject/object tables, which is exactly what a
    rebuild (not an overlay) is for.
    """

    def __init__(self, base: Dictionary) -> None:
        super().__init__()
        self.base = base
        self._num_so = base.num_shared
        self._base_subjects = base.num_subjects
        self._base_objects = base.num_objects
        self._base_predicates = base.num_predicates
        self._ext_s_ids: dict[Term, int] = {}
        self._ext_o_ids: dict[Term, int] = {}
        self._ext_p_ids: dict[Term, int] = {}
        self._ext_s_terms: list[Term] = []
        self._ext_o_terms: list[Term] = []
        self._ext_p_terms: list[Term] = []
        #: space → concatenated base + extension decode table, rebuilt
        #: only when the extension grew since it was assembled
        self._ext_tables: dict[str, list] = {}

    # -- growth ---------------------------------------------------------

    def ensure_subject(self, term: Term) -> int:
        sid = self.subject_id(term)
        if sid is None:
            self._ext_s_terms.append(term)
            sid = self._base_subjects + len(self._ext_s_terms)
            self._ext_s_ids[term] = sid
        return sid

    def ensure_object(self, term: Term) -> int:
        oid = self.object_id(term)
        if oid is None:
            self._ext_o_terms.append(term)
            oid = self._base_objects + len(self._ext_o_terms)
            self._ext_o_ids[term] = oid
        return oid

    def ensure_predicate(self, term: Term) -> int:
        pid = self.predicate_id(term)
        if pid is None:
            self._ext_p_terms.append(term)
            pid = self._base_predicates + len(self._ext_p_terms)
            self._ext_p_ids[term] = pid
        return pid

    # -- sizes ----------------------------------------------------------

    @property
    def num_subjects(self) -> int:
        return self._base_subjects + len(self._ext_s_terms)

    @property
    def num_objects(self) -> int:
        return self._base_objects + len(self._ext_o_terms)

    @property
    def num_predicates(self) -> int:
        return self._base_predicates + len(self._ext_p_terms)

    # -- encoding -------------------------------------------------------

    def subject_id(self, term: Term) -> int | None:
        sid = self.base.subject_id(term)
        return sid if sid is not None else self._ext_s_ids.get(term)

    def object_id(self, term: Term) -> int | None:
        oid = self.base.object_id(term)
        return oid if oid is not None else self._ext_o_ids.get(term)

    def predicate_id(self, term: Term) -> int | None:
        pid = self.base.predicate_id(term)
        return pid if pid is not None else self._ext_p_ids.get(term)

    def encode_triple(self, triple: Triple):
        sid = self.subject_id(triple.s)
        pid = self.predicate_id(triple.p)
        oid = self.object_id(triple.o)
        if sid is None or pid is None or oid is None:
            raise DictionaryError(f"triple contains unknown terms: {triple}")
        return (sid, pid, oid)

    # -- decoding -------------------------------------------------------

    def term_table(self, space: str) -> list:
        """Base id → term table extended with this delta's new terms.

        The inherited tables are empty (all terms live in the base or
        the extension lists), so the columnar decoder needs the
        concatenation; extension ids start right past the base's
        highest, which is exactly where ``base_table + ext`` puts them.
        """
        ext = {"s": self._ext_s_terms, "o": self._ext_o_terms,
               "p": self._ext_p_terms}.get(space)
        if ext is None:
            raise DictionaryError(f"unknown id space {space!r}")
        base_table = self.base.term_table(space)
        if not ext:
            return base_table
        cached = self._ext_tables.get(space)
        if cached is None or len(cached) != len(base_table) + len(ext):
            cached = base_table + ext
            self._ext_tables[space] = cached
        return cached

    def subject_term(self, sid: int) -> Term:
        if sid <= self._base_subjects:
            return self.base.subject_term(sid)
        try:
            return self._ext_s_terms[sid - self._base_subjects - 1]
        except IndexError:
            raise DictionaryError(f"unknown subject id {sid}") from None

    def object_term(self, oid: int) -> Term:
        if oid <= self._base_objects:
            return self.base.object_term(oid)
        try:
            return self._ext_o_terms[oid - self._base_objects - 1]
        except IndexError:
            raise DictionaryError(f"unknown object id {oid}") from None

    def predicate_term(self, pid: int) -> Term:
        if pid <= self._base_predicates:
            return self.base.predicate_term(pid)
        try:
            return self._ext_p_terms[pid - self._base_predicates - 1]
        except IndexError:
            raise DictionaryError(f"unknown predicate id {pid}") from None


class _MergedPairs(Mapping):
    """Lazy ``pid → sorted (sid, oid) pairs`` over base + delta.

    Untouched predicates return the base's list *by identity* (no
    copy); touched predicates materialize the merge once, on first
    access.  Post-freeze concurrent first accesses may race the merge,
    which is benign: the computation is pure and the dict assignment
    atomic under the GIL.
    """

    def __init__(self, base: Mapping, add_by_p: dict, del_by_p: dict) -> None:
        self._base = base
        self._add_by_p = add_by_p
        self._del_by_p = del_by_p
        self._pids = sorted(set(base) | set(add_by_p))
        self._merged: dict[int, list[tuple[int, int]]] = {}

    def __getitem__(self, pid: int) -> list[tuple[int, int]]:
        adds = self._add_by_p.get(pid)
        dels = self._del_by_p.get(pid)
        if adds is None and dels is None:
            return self._base[pid]
        cached = self._merged.get(pid)
        if cached is None:
            base_pairs = self._base.get(pid, [])
            if dels:
                base_pairs = [pair for pair in base_pairs
                              if pair not in dels]
            if adds:
                # adds are disjoint from the base by the delta
                # invariants, so a sorted merge needs no dedup
                base_pairs = list(heapq.merge(base_pairs, adds))
            cached = base_pairs
            self._merged[pid] = cached
        return cached

    def __iter__(self) -> Iterator[int]:
        return iter(self._pids)

    def __len__(self) -> int:
        return len(self._pids)

    def __contains__(self, pid) -> bool:
        return pid in self._add_by_p or pid in self._base


class OverlayStore(BitMatStore):
    """Base store + normalized delta, behind the BitMatStore interface.

    Engine code cannot tell it apart from a rebuilt store; reads for
    predicates the delta never touched are served straight from the
    base's caches (when no new terms changed the matrix dimensions),
    so publishing a batch costs O(delta), not O(dataset).
    """

    def __init__(self, dictionary: DeltaDictionary, pairs: _MergedPairs,
                 base: BitMatStore, delta: TripleDelta,
                 delta_pids: frozenset) -> None:
        # set before super().__init__: _count_triples (called from the
        # base constructor) reads them to avoid a full pair-list scan
        self.base = base.retain()
        self.delta = delta
        self._delta_pids = delta_pids
        self._refs = 1
        self._refs_lock = threading.Lock()
        super().__init__(dictionary, pairs)
        self._dims_match = (
            dictionary.num_subjects == base.num_subjects
            and dictionary.num_objects == base.num_objects
            and dictionary.num_predicates == base.num_predicates)

    @classmethod
    def build(cls, base: BitMatStore, delta: TripleDelta) -> "OverlayStore":
        """Encode *delta* against *base*; raises
        :class:`SharedRegionViolation` when an overlay cannot
        represent it."""
        dictionary = DeltaDictionary(base.dictionary)
        del_by_p: dict[int, set] = {}
        # sorted iteration makes extension-id assignment deterministic
        for triple in sorted(delta.deleted, key=_triple_key):
            sid, pid, oid = dictionary.encode_triple(triple)
            del_by_p.setdefault(pid, set()).add((sid, oid))
        add_by_p: dict[int, list] = {}
        for triple in sorted(delta.added, key=_triple_key):
            sid = dictionary.ensure_subject(triple.s)
            pid = dictionary.ensure_predicate(triple.p)
            oid = dictionary.ensure_object(triple.o)
            add_by_p.setdefault(pid, []).append((sid, oid))
        num_shared = dictionary.num_shared
        for triple in sorted(delta.added, key=_triple_key):
            for term in (triple.s, triple.o):
                sid = dictionary.subject_id(term)
                oid = dictionary.object_id(term)
                if (sid is not None and oid is not None
                        and not (sid == oid and sid <= num_shared)):
                    raise SharedRegionViolation(term)
        for pairs in add_by_p.values():
            pairs.sort()
        pairs = _MergedPairs(base._so_by_p, add_by_p, del_by_p)
        delta_pids = frozenset(add_by_p) | frozenset(del_by_p)
        return cls(dictionary, pairs, base, delta, delta_pids)

    def _count_triples(self) -> int:
        # exact by the delta invariants (deleted ⊆ base, added ∩ base
        # = ∅); summing the merged pair lists would force a lazy base
        # (an mmap-backed store) to decode every predicate
        return (self.base.num_triples - len(self.delta.deleted)
                + len(self.delta.added))

    def _collect_stats(self):
        # delta-adjusted statistics are still open (ROADMAP 3); None
        # routes overlay queries through the static heuristic, and the
        # base's own statistics stay untouched — they describe the base
        # image, not this overlay's merged view
        return None

    def _prepare_freeze(self) -> None:
        # prebuild O-S projections only for predicates the delta
        # touched; untouched ones delegate to the base, which is either
        # already frozen (its projections prebuilt) or a lazy backend
        # serving them from locked caches — prebuilding those here
        # would force an mmap base to decode every extent
        for pid in self._delta_pids:
            if pid in self._so_by_p:
                self._os_pairs(pid)

    # -- base-cache delegation -----------------------------------------

    def _untouched(self, pid: int) -> bool:
        return self._dims_match and pid not in self._delta_pids

    def _os_pairs(self, pid: int) -> list[tuple[int, int]]:
        # ids of existing triples never change, so the base's (possibly
        # pre-built) O-S projection is reusable whenever the predicate
        # has no delta — regardless of dimension growth
        if pid not in self._delta_pids and pid in self.base._so_by_p:
            return self.base._os_pairs(pid)
        return super()._os_pairs(pid)

    def load_so(self, pid: int) -> BitMat:
        if self._untouched(pid):
            return self.base.load_so(pid)
        return super().load_so(pid)

    def load_os(self, pid: int) -> BitMat:
        if self._untouched(pid):
            return self.base.load_os(pid)
        return super().load_os(pid)

    def load_ps_row(self, pid: int, oid: int) -> BitVector:
        if self._untouched(pid):
            return self.base.load_ps_row(pid, oid)
        return super().load_ps_row(pid, oid)

    def load_po_row(self, pid: int, sid: int) -> BitVector:
        if self._untouched(pid):
            return self.base.load_po_row(pid, sid)
        return super().load_po_row(pid, sid)

    # -- lifecycle -----------------------------------------------------

    def retain(self) -> "OverlayStore":
        with self._refs_lock:
            if self._refs <= 0:
                raise StorageError("retain() on a closed overlay store")
            self._refs += 1
        return self

    def close(self) -> None:
        """Drop one reference; the last close releases the base ref.

        The overlay's merged pair lists delegate to the base, so a
        holder of resources (an mmap-backed base) stays open for as
        long as any overlay over it is still referenced.
        """
        with self._refs_lock:
            if self._refs <= 0:
                return
            self._refs -= 1
            if self._refs:
                return
        self.base.close()

    @property
    def closed(self) -> bool:
        with self._refs_lock:
            return self._refs <= 0
