"""Write-ahead log: the durability spine of live updates.

One WAL file holds a fixed header followed by length+CRC32-framed
records::

    LBRWAL01                                   (8-byte magic)
    [u32 length][u32 crc32(payload)][payload]  repeated

where each payload is ``kind(1) | varint seq | varint n_adds |
varint n_deletes | adds… | deletes…`` and every triple's terms use the
exact codec of store images (:mod:`repro.bitmat.persist`).

The commit point of a batch is the **fsync** after its frame is
written: :meth:`WriteAheadLog.append_batch` returns only once the
record is durable, so an acknowledged batch survives any subsequent
crash.  Replay (:func:`replay_wal`) accepts what a crash can legally
leave behind — a torn file header or a torn/corrupt *tail* frame — by
physically truncating the damage, and rejects what a crash cannot
explain — a bad magic, an out-of-order sequence number, or a corrupt
frame with valid frames after it — with a typed
:class:`~repro.exceptions.WALError`.  Together with the atomicity of
frame framing this yields the crash property the suite replays: after
recovery the log contains exactly the committed prefix of batches.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass

from ..exceptions import WALError
from ..rdf.terms import Triple
from ..bitmat.persist import read_term, read_varint, write_term, write_varint
from .faultfs import FileSystem, RealFS

MAGIC = b"LBRWAL01"

#: record kinds (one byte); only batches exist today, the byte keeps
#: the format extensible (checkpoints, schema ops) without a new magic
KIND_BATCH = 1

_FRAME = struct.Struct("<II")  # length, crc32(payload)


@dataclass(frozen=True)
class WalRecord:
    """One committed update batch."""

    seq: int
    adds: tuple[Triple, ...]
    deletes: tuple[Triple, ...]


def encode_record(record: WalRecord) -> bytes:
    """One framed record, ready to append."""
    buffer = io.BytesIO()
    buffer.write(bytes((KIND_BATCH,)))
    write_varint(buffer, record.seq)
    write_varint(buffer, len(record.adds))
    write_varint(buffer, len(record.deletes))
    for triple in record.adds:
        for term in triple:
            write_term(buffer, term)
    for triple in record.deletes:
        for term in triple:
            write_term(buffer, term)
    payload = buffer.getvalue()
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> WalRecord:
    """Decode one CRC-verified record payload."""
    data = io.BytesIO(payload)
    kind_chunk = data.read(1)
    if not kind_chunk:
        raise WALError("empty WAL record")
    if kind_chunk[0] != KIND_BATCH:
        raise WALError(f"unknown WAL record kind {kind_chunk[0]}")
    seq = read_varint(data)
    n_adds = read_varint(data)
    n_deletes = read_varint(data)
    adds = tuple(Triple(read_term(data), read_term(data), read_term(data))
                 for _ in range(n_adds))
    deletes = tuple(Triple(read_term(data), read_term(data), read_term(data))
                    for _ in range(n_deletes))
    if data.read(1):
        raise WALError("trailing bytes inside WAL record payload")
    return WalRecord(seq=seq, adds=adds, deletes=deletes)


def _frame_at(data: bytes, offset: int) -> tuple[WalRecord, int] | None:
    """Decode the frame at *offset*; None if torn/corrupt there.

    Returns (record, next_offset) on success.  Distinguishing "torn"
    from "corrupt" is the caller's job — this only answers whether a
    valid frame starts here.
    """
    if offset + _FRAME.size > len(data):
        return None
    length, crc = _FRAME.unpack_from(data, offset)
    start = offset + _FRAME.size
    end = start + length
    if end > len(data):
        return None
    payload = data[start:end]
    if zlib.crc32(payload) != crc:
        return None
    try:
        return decode_payload(payload), end
    except WALError:
        return None


def replay_wal(fs: FileSystem, path: str,
               first_seq: int = 1) -> list[WalRecord]:
    """Read every committed record; truncate torn tails physically.

    Missing file or torn header ⇒ empty log.  A corrupt frame is a
    torn tail (truncated, replay succeeds) **unless** a valid frame
    follows it — mid-log corruption cannot result from a crash and
    raises :class:`WALError`, as do bad magic and out-of-order
    sequence numbers.
    """
    if not fs.exists(path):
        return []
    data = fs.read_bytes(path)
    if len(data) < len(MAGIC):
        if MAGIC.startswith(data):
            # crash tore the header write itself: nothing was committed
            fs.truncate(path, 0)
            return []
        raise WALError(f"{path}: not a WAL file")
    if not data.startswith(MAGIC):
        raise WALError(f"{path}: bad WAL magic")

    records: list[WalRecord] = []
    expected_seq = first_seq
    offset = len(MAGIC)
    while offset < len(data):
        decoded = _frame_at(data, offset)
        if decoded is None:
            # tail damage — legal only if *nothing* valid follows; scan
            # the remaining bytes for a frame start to tell a torn tail
            # (truncate) from mid-log corruption (typed error)
            for probe in range(offset + 1, len(data) - _FRAME.size + 1):
                if _frame_at(data, probe) is not None:
                    raise WALError(
                        f"{path}: corrupt record at byte {offset} with "
                        "valid records after it")
            fs.truncate(path, offset)
            break
        record, offset = decoded
        if record.seq != expected_seq:
            raise WALError(
                f"{path}: expected seq {expected_seq}, found {record.seq}")
        expected_seq += 1
        records.append(record)
    return records


class WriteAheadLog:
    """Append-only writer over one WAL file.

    Creating the object does no I/O; :meth:`open` (or the first
    :meth:`append_batch`) opens the file, writing and fsyncing the
    header if the file is new.  Callers are expected to have run
    :func:`replay_wal` first, so the file — if present — is valid and
    ends on a frame boundary.
    """

    def __init__(self, path: str, fs: FileSystem | None = None,
                 next_seq: int = 1) -> None:
        self.path = path
        self.fs = fs or RealFS()
        self.next_seq = next_seq
        self._handle = None
        self._failed = False

    def open(self) -> "WriteAheadLog":
        if self._handle is not None:
            return self
        is_new = (not self.fs.exists(self.path)
                  or self.fs.file_size(self.path) == 0)
        self._handle = self.fs.open_append(self.path)
        if is_new:
            self._handle.write(MAGIC)
            self._handle.fsync()
        return self

    def append_batch(self, adds, deletes) -> WalRecord:
        """Durably commit one batch; returns its record.

        The fsync before returning is the commit point: once this
        method returns, recovery from any later crash replays the
        batch; if a crash interrupts the method, recovery sees at most
        a torn tail and truncates it — the batch simply never
        happened.
        """
        if self._failed:
            raise WALError(f"{self.path}: log is in a failed state after "
                           "an earlier I/O error")
        self.open()
        record = WalRecord(seq=self.next_seq, adds=tuple(adds),
                           deletes=tuple(deletes))
        try:
            self._handle.write(encode_record(record))
            self._handle.flush()
            self._handle.fsync()
        except OSError as exc:
            # the frame may be partially on disk; appending anything
            # after it would put valid records behind garbage, which
            # recovery rightly treats as corruption — latch shut
            self._failed = True
            raise WALError(f"{self.path}: append failed: {exc}") from exc
        self.next_seq += 1
        return record

    def sync(self) -> None:
        """Force an fsync (used by graceful shutdown)."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.fsync()

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
