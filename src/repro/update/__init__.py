"""Live updates: WAL durability, delta overlays, and compaction.

This package turns the read-only snapshot server into a durable,
writable system while keeping the engine's execution model untouched:

* :mod:`repro.update.faultfs` — the filesystem seam.  Every
  durability-critical syscall the subsystem makes goes through a
  :class:`~repro.update.faultfs.FileSystem`, so the crash-recovery
  property suite can run the *real* code against an in-memory
  filesystem that fails, short-writes, or "crashes" at the Nth
  operation.
* :mod:`repro.update.wal` — the write-ahead log: length+CRC32-framed
  batch records with explicit fsync commit points and torn/corrupt
  tail truncation on replay.
* :mod:`repro.update.overlay` — the per-snapshot delta overlay: a
  :class:`~repro.update.overlay.OverlayStore` serves the frozen base
  BitMats plus committed adds/deletes without rebuilding them, behind
  the exact :class:`~repro.bitmat.store.BitMatStore` interface the
  engine executes against.
* :mod:`repro.update.live` — :class:`~repro.update.live.LiveGraphStore`:
  WAL + manifest + base images + overlay publication + the background
  compactor that merges accumulated deltas into a new frozen store and
  swaps it through the copy-on-write snapshot manager.
"""

from .faultfs import (FaultPlan, FaultyFS, FileSystem, MemFS, RealFS,
                      SimulatedCrash)
from .live import LiveConfig, LiveGraphStore
from .overlay import DeltaDictionary, OverlayStore, TripleDelta
from .wal import WalRecord, WriteAheadLog, replay_wal

__all__ = [
    "DeltaDictionary", "FaultPlan", "FaultyFS", "FileSystem",
    "LiveConfig", "LiveGraphStore", "MemFS", "OverlayStore", "RealFS",
    "SimulatedCrash", "TripleDelta", "WalRecord", "WriteAheadLog",
    "replay_wal",
]
