"""Exception hierarchy for the LBR reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when SPARQL or N-Triples text cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token
    when they are known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class UnsupportedQueryError(ReproError):
    """Raised when a query is outside the supported SPARQL fragment.

    LBR (the paper's engine) does not support joins on the predicate
    position, all-variable triple patterns, or Cartesian products; the
    naive oracle engine supports a wider fragment.
    """


class NotWellDesignedError(ReproError):
    """Raised when a well-designed query is required but not provided."""


class BudgetExceededError(ReproError):
    """Raised when an evaluation exceeds its configured work budget.

    Used by the naive oracle when a caller (e.g. the differential fuzz
    harness) bounds the number of intermediate rows it is willing to
    materialize for one query, and by the query service to cap
    ``max_join_rows`` per request.
    """


class DeadlineExceededError(BudgetExceededError):
    """Raised when a query session runs past its wall-clock deadline.

    A deadline is just another work budget — callers that already
    handle :class:`BudgetExceededError` degrade gracefully — but the
    scheduler distinguishes it to report timeouts separately from row
    budgets.
    """


class AdmissionError(ReproError):
    """Raised when the scheduler rejects a request at admission.

    Carries the queue depth and limit observed at rejection time so
    clients can surface backpressure ("retry later") instead of a
    generic failure.
    """

    def __init__(self, message: str, queue_depth: int | None = None,
                 queue_limit: int | None = None) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit


class ShuttingDownError(AdmissionError):
    """Raised when a request arrives while the service is draining.

    Distinct from a queue-full :class:`AdmissionError` so clients can
    tell "retry this same server soon" (backpressure) apart from "this
    server is going away" (reconnect elsewhere); the wire protocol maps
    it to the ``shutting_down`` error code.
    """


class RetriesExhaustedError(ReproError):
    """Raised by the retrying client when every attempt failed.

    Carries the number of attempts made and the last underlying error,
    so callers see one typed failure instead of whichever raw socket
    exception the final attempt happened to hit.
    """

    def __init__(self, message: str, attempts: int,
                 last_error: Exception | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class DictionaryError(ReproError):
    """Raised on inconsistent use of the term dictionary."""


class StorageError(ReproError):
    """Raised when a BitMat store cannot be built, saved, or loaded."""


class WALError(StorageError):
    """Raised when a write-ahead log is unreadable or inconsistent.

    A torn *tail* is not an error — replay truncates it — but a bad
    file header, an out-of-order sequence number, or corruption in the
    middle of the log (valid records after the bad frame) is."""
