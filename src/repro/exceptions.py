"""Exception hierarchy for the LBR reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when SPARQL or N-Triples text cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token
    when they are known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class UnsupportedQueryError(ReproError):
    """Raised when a query is outside the supported SPARQL fragment.

    LBR (the paper's engine) does not support joins on the predicate
    position, all-variable triple patterns, or Cartesian products; the
    naive oracle engine supports a wider fragment.
    """


class NotWellDesignedError(ReproError):
    """Raised when a well-designed query is required but not provided."""


class BudgetExceededError(ReproError):
    """Raised when an evaluation exceeds its configured work budget.

    Used by the naive oracle when a caller (e.g. the differential fuzz
    harness) bounds the number of intermediate rows it is willing to
    materialize for one query, and by the query service to cap
    ``max_join_rows`` per request.
    """


class DeadlineExceededError(BudgetExceededError):
    """Raised when a query session runs past its wall-clock deadline.

    A deadline is just another work budget — callers that already
    handle :class:`BudgetExceededError` degrade gracefully — but the
    scheduler distinguishes it to report timeouts separately from row
    budgets.
    """


class AdmissionError(ReproError):
    """Raised when the scheduler rejects a request at admission.

    Carries the queue depth and limit observed at rejection time so
    clients can surface backpressure ("retry later") instead of a
    generic failure.
    """

    def __init__(self, message: str, queue_depth: int | None = None,
                 queue_limit: int | None = None) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit


class ShuttingDownError(AdmissionError):
    """Raised when a request arrives while the service is draining.

    Distinct from a queue-full :class:`AdmissionError` so clients can
    tell "retry this same server soon" (backpressure) apart from "this
    server is going away" (reconnect elsewhere); the wire protocol maps
    it to the ``shutting_down`` error code.
    """


class RetriesExhaustedError(ReproError):
    """Raised by the retrying client when every attempt failed.

    Carries the number of attempts made and the last underlying error,
    so callers see one typed failure instead of whichever raw socket
    exception the final attempt happened to hit.
    """

    def __init__(self, message: str, attempts: int,
                 last_error: Exception | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class InternalError(ReproError):
    """An unexpected exception routed into the typed taxonomy.

    Last-resort handlers (worker loops, connection threads, background
    compaction) must not re-raise — that would kill the thread — but
    they also must not swallow errors untyped, or the soak and crash
    gates cannot count them.  :func:`internal_error` wraps whatever
    was caught into this type, preserving the original class name and
    the chain (``__cause__``), so "a bug happened here" is a value the
    rest of the system can store, count, and report.
    """

    def __init__(self, message: str,
                 original_type: str = "") -> None:
        super().__init__(message)
        self.original_type = original_type


def internal_error(exc: BaseException) -> InternalError:
    """Wrap an unexpected exception for typed storage/reporting.

    Idempotent: an :class:`InternalError` (or any other
    :class:`ReproError`) passes through a dedicated path so double
    wrapping never obscures the original type.
    """
    if isinstance(exc, InternalError):
        return exc
    wrapped = InternalError(f"{type(exc).__name__}: {exc}",
                            original_type=type(exc).__name__)
    wrapped.__cause__ = exc
    return wrapped


class DictionaryError(ReproError):
    """Raised on inconsistent use of the term dictionary."""


class StorageError(ReproError):
    """Raised when a BitMat store cannot be built, saved, or loaded."""


class WALError(StorageError):
    """Raised when a write-ahead log is unreadable or inconsistent.

    A torn *tail* is not an error — replay truncates it — but a bad
    file header, an out-of-order sequence number, or corruption in the
    middle of the log (valid records after the bad frame) is."""
