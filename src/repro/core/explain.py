"""Query plan explanation: what LBR decided, without executing.

``explain(engine, query)`` performs the analysis half of Algorithm 5.1
— UNF rewrite, GoSN, GoJ, well-designedness, the jvar orders, the
best-match decision, metadata counts — and renders a human-readable
plan, one section per UNION-free branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf.terms import is_variable
from ..sparql.ast import Pattern, Query, serialize_algebra
from ..sparql.parser import parse_query
from ..sparql.rewrite import eliminate_equality_filters, to_union_normal_form
from ..sparql.wd import find_violations
from .goj import GoJ
from .gosn import GoSN
from .jvar_order import decide_best_match_required, get_jvar_order
from .selectivity import SelectivityRanker


@dataclass
class BranchPlan:
    """Analysis of one UNION-free branch."""

    algebra: str
    supernodes: list[str]
    uni_edges: list[tuple[int, int]]
    bi_edges: list[tuple[int, int]]
    absolute_masters: list[int]
    well_designed: bool
    goj_cyclic: bool
    jvars: list[str]
    order_bu: list[str]
    order_td: list[str]
    best_match_required: bool
    tp_counts: list[int] = field(default_factory=list)


@dataclass
class QueryPlan:
    """Full explanation across branches."""

    branches: list[BranchPlan]
    spurious_cleanup: bool

    def __str__(self) -> str:
        lines: list[str] = []
        for index, branch in enumerate(self.branches, start=1):
            lines.append(f"branch {index}/{len(self.branches)}: "
                         f"{branch.algebra}")
            for sn_index, description in enumerate(branch.supernodes):
                marker = ("*" if sn_index in branch.absolute_masters
                          else " ")
                lines.append(f"  SN{sn_index}{marker} {description}")
            lines.append(f"  uni edges (master->slave): "
                         f"{sorted(branch.uni_edges)}")
            lines.append(f"  bi edges (peers)        : "
                         f"{sorted(branch.bi_edges)}")
            lines.append(f"  well-designed: {branch.well_designed}   "
                         f"GoJ cyclic: {branch.goj_cyclic}   "
                         f"best-match required: "
                         f"{branch.best_match_required}")
            lines.append(f"  jvars: {branch.jvars}")
            lines.append(f"  order_bu: {branch.order_bu}")
            lines.append(f"  order_td: {branch.order_td}")
            lines.append(f"  TP metadata counts: {branch.tp_counts}")
        if self.spurious_cleanup:
            lines.append("minimum-union cleanup after UNION rewrite "
                         "rule 3")
        return "\n".join(lines)


def explain(store, query: Query | str) -> QueryPlan:
    """Build the plan LBR would execute for *query* over *store*."""
    if isinstance(query, str):
        query = parse_query(query)
    pattern = eliminate_equality_filters(query.pattern)
    normal_form = to_union_normal_form(pattern)
    branches = [_explain_branch(store, branch)
                for branch in normal_form.branches]
    return QueryPlan(branches=branches,
                     spurious_cleanup=normal_form.spurious_possible)


def _metadata_count(store, tp) -> int:
    sid = None if is_variable(tp.s) else store.encode_term(tp.s, "s")
    pid = None if is_variable(tp.p) else store.encode_term(tp.p, "p")
    oid = None if is_variable(tp.o) else store.encode_term(tp.o, "o")
    if ((not is_variable(tp.s) and sid is None)
            or (not is_variable(tp.p) and pid is None)
            or (not is_variable(tp.o) and oid is None)):
        return 0
    return store.count_matching(sid, pid, oid)


def _explain_branch(store, branch: Pattern) -> BranchPlan:
    gosn = GoSN.from_pattern(branch)
    violations = find_violations(branch)
    well_designed = not violations
    if violations:
        from .engine import _transform_nwd
        gosn = _transform_nwd(gosn, branch, violations)
    goj = GoJ.build(gosn.patterns)
    counts = [_metadata_count(store, tp) for tp in gosn.patterns]
    ranker = SelectivityRanker(gosn.patterns, counts)
    order_bu, order_td = get_jvar_order(gosn, goj, ranker)
    supernodes = []
    for sn in gosn.supernodes:
        patterns = " ; ".join(tp.to_sparql() for tp in sn.patterns)
        supernodes.append(f"[{patterns}]" if patterns else "[empty BGP]")
    return BranchPlan(
        algebra=serialize_algebra(branch),
        supernodes=supernodes,
        uni_edges=sorted(gosn.uni_edges),
        bi_edges=sorted(gosn.bi_edges),
        absolute_masters=sorted(gosn.absolute_masters()),
        well_designed=well_designed,
        goj_cyclic=goj.is_cyclic(),
        jvars=[f"?{v}" for v in sorted(goj.nodes)],
        order_bu=[f"?{v}" for v in order_bu],
        order_td=[f"?{v}" for v in order_td],
        best_match_required=decide_best_match_required(gosn, goj),
        tp_counts=counts,
    )
