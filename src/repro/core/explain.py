"""Query plan explanation: what LBR decided, without executing.

``explain(store, query)`` runs the *actual* compiler pipeline — the
logical IR lowering, the rewrite-pass manager, and the physical
planner from :mod:`repro.plan` — and renders the result human-readably:

* the annotated logical IR (scopes, certain/possible variables);
* the pass trace (which passes fired and what they changed);
* per UNION-free branch, the physical plan: GoSN structure, GoJ
  cyclicity, jvar orders, filter routing (init vs FaN), and the
  best-match decision.

The pipeline runs in **canonical** variable space, exactly like engine
execution — planner tie-breaks over variable names therefore match the
executed plan bit for bit — and every rendered name is mapped back to
the query's source variables, so the output reads like the query text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..plan.compiler import compile_frontend, run_pipeline
from ..plan.logical import (rename_expression, render_logical,
                            rename_logical, to_ast)
from ..plan.passes import PassManager, default_passes
from ..plan.physical import BranchPhysicalPlan, build_physical
from ..rdf.terms import Variable, is_variable
from ..sparql.ast import Query, TriplePattern, serialize_algebra
from ..sparql.expressions import expression_sparql

#: canonical variable names as they appear in rendered text
_CANONICAL_RE = re.compile(r"\?(_c\d{3})")


@dataclass
class BranchPlan:
    """Analysis of one UNION-free branch."""

    algebra: str
    supernodes: list[str]
    uni_edges: list[tuple[int, int]]
    bi_edges: list[tuple[int, int]]
    absolute_masters: list[int]
    well_designed: bool
    goj_cyclic: bool
    jvars: list[str]
    order_bu: list[str]
    order_td: list[str]
    best_match_required: bool
    tp_counts: list[int] = field(default_factory=list)
    #: "cost" (statistics-fed model) or "heuristic" (static ranking)
    ordering_source: str = "heuristic"
    #: estimated candidate-binding count per jvar, rendered ``?v≈n``
    #: (distinct-binding estimates under the cost model, min TP count
    #: under the heuristic)
    jvar_estimates: list[str] = field(default_factory=list)
    #: variables never NULL in any emitted row (drives filter routing)
    certain_vars: list[str] = field(default_factory=list)
    #: init-time filter applications, rendered as ``expr @ TPn``
    init_filters: list[str] = field(default_factory=list)
    #: FaN schedule entries, rendered as ``expr @ groups {…}``
    fan_filters: list[str] = field(default_factory=list)
    #: Appendix B uni→bi conversions applied to this branch's GoSN
    converted_edges: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class QueryPlan:
    """Full explanation across branches."""

    branches: list[BranchPlan]
    spurious_cleanup: bool
    #: structural hash of the canonical logical IR (plan-cache key)
    structural_key: str = ""
    #: the annotated logical IR, rendered
    logical_tree: str = ""
    #: one line per compiler pass: name, fired?, detail
    pass_trace: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        lines: list[str] = []
        if self.structural_key:
            lines.append(f"plan cache key: {self.structural_key[:16]}…")
        if self.logical_tree:
            lines.append("logical IR:")
            lines.extend(f"  {line}"
                         for line in self.logical_tree.splitlines())
        if self.pass_trace:
            lines.append("pass trace:")
            lines.extend(f"  {entry}" for entry in self.pass_trace)
        for index, branch in enumerate(self.branches, start=1):
            lines.append(f"branch {index}/{len(self.branches)}: "
                         f"{branch.algebra}")
            for sn_index, description in enumerate(branch.supernodes):
                marker = ("*" if sn_index in branch.absolute_masters
                          else " ")
                lines.append(f"  SN{sn_index}{marker} {description}")
            lines.append(f"  uni edges (master->slave): "
                         f"{sorted(branch.uni_edges)}")
            lines.append(f"  bi edges (peers)        : "
                         f"{sorted(branch.bi_edges)}")
            if branch.converted_edges:
                lines.append(f"  Appendix B uni->bi      : "
                             f"{sorted(branch.converted_edges)}")
            lines.append(f"  well-designed: {branch.well_designed}   "
                         f"GoJ cyclic: {branch.goj_cyclic}   "
                         f"best-match required: "
                         f"{branch.best_match_required}")
            lines.append(f"  jvars: {branch.jvars}")
            source = ("cost-based (store statistics)"
                      if branch.ordering_source == "cost"
                      else "static heuristic (no statistics)")
            lines.append(f"  ordering: {source}")
            if branch.jvar_estimates:
                lines.append(f"  estimated jvar cardinalities: "
                             f"{branch.jvar_estimates}")
            lines.append(f"  order_bu: {branch.order_bu}")
            lines.append(f"  order_td: {branch.order_td}")
            lines.append(f"  TP metadata counts: {branch.tp_counts}")
            lines.append(f"  certain vars: {branch.certain_vars}")
            if branch.init_filters:
                lines.append("  init filters:")
                lines.extend(f"    {entry}"
                             for entry in branch.init_filters)
            if branch.fan_filters:
                lines.append("  FaN filter schedule:")
                lines.extend(f"    {entry}"
                             for entry in branch.fan_filters)
        if self.spurious_cleanup:
            lines.append("minimum-union cleanup after UNION rewrite "
                         "rule 3")
        return "\n".join(lines)


def explain(store, query: Query | str) -> QueryPlan:
    """Build the plan LBR would execute for *query* over *store*.

    Compiles through the same canonical-space pipeline as
    :meth:`LBREngine.execute` (so the reported plan is exactly the one
    a cache hit would reuse), then maps every variable name back to
    the source query's spelling for rendering.
    """
    frontend = compile_frontend(query)
    key = frontend.canonical.key
    result = run_pipeline(frontend.canonical.logical,
                          PassManager(default_passes(store)))
    plan = build_physical(result, store, enable_prune=True,
                          structural_key=key)
    back = frontend.canonical.from_canonical

    def unmap(text: str) -> str:
        return _CANONICAL_RE.sub(
            lambda match: f"?{back.get(match.group(1), match.group(1))}",
            text)

    return QueryPlan(
        branches=[_render_branch(branch, back)
                  for branch in plan.branches],
        spurious_cleanup=plan.spurious_possible,
        structural_key=key,
        logical_tree=render_logical(rename_logical(result.logical, back)),
        pass_trace=[unmap(str(record)) for record in plan.trace])


def _rename_tp(tp: TriplePattern,
               back: dict[Variable, Variable]) -> TriplePattern:
    return TriplePattern(*(back.get(term, term)
                           if is_variable(term) else term
                           for term in tp))


def _render_branch(plan: BranchPhysicalPlan,
                   back: dict[Variable, Variable]) -> BranchPlan:
    gosn = plan.gosn

    def name(var: Variable) -> str:
        return f"?{back.get(var, var)}"

    supernodes = []
    for sn in gosn.supernodes:
        patterns = " ; ".join(_rename_tp(tp, back).to_sparql()
                              for tp in sn.patterns)
        supernodes.append(f"[{patterns}]" if patterns else "[empty BGP]")
    goj_cyclic = plan.goj.is_cyclic() if plan.goj is not None else False
    jvars = (sorted(plan.goj.nodes) if plan.goj is not None else [])
    init_filters = [
        f"{expression_sparql(rename_expression(init.expr, back))} "
        f"@ TP{init.tp_index}"
        for filters in plan.init_filters.values() for init in filters]
    fan_filters = [
        f"{expression_sparql(rename_expression(fan.expr, back))} "
        f"@ groups {sorted(fan.scope_groups)}"
        for fan in plan.fan_filters]
    return BranchPlan(
        algebra=serialize_algebra(to_ast(plan.logical)),
        supernodes=supernodes,
        uni_edges=sorted(gosn.uni_edges),
        bi_edges=sorted(gosn.bi_edges),
        absolute_masters=sorted(gosn.absolute_masters()),
        well_designed=plan.well_designed,
        goj_cyclic=goj_cyclic,
        jvars=sorted(name(v) for v in jvars),
        order_bu=[name(v) for v in plan.order_bu],
        order_td=[name(v) for v in plan.order_td],
        best_match_required=plan.nul_required,
        tp_counts=list(plan.metadata_counts),
        ordering_source=plan.ordering_source,
        jvar_estimates=[f"{label}≈{estimate}" for label, estimate in
                        sorted((name(v), plan.ranker.jvar_key(v))
                               for v in jvars)],
        certain_vars=sorted(name(v) for v in plan.certain_vars),
        init_filters=init_filters,
        fan_filters=fan_filters,
        converted_edges=sorted(plan.converted_edges),
    )
