"""Graph of Supernodes (GoSN) — the paper's §2.

Every OPT-free BGP of the serialized query becomes a *supernode*.  For
each left-outer join ``Pm ⟕ Pn`` a unidirectional edge is added from the
leftmost supernode of ``Pm`` to the leftmost supernode of ``Pn``; for
each inner join ``Px ⋈ Py`` a bidirectional edge connects the leftmost
supernodes of the two sides.  Reachability then defines the paper's
nomenclature (§2.2):

* ``SNi`` is a **master** of ``SNj`` (and ``SNj`` a **slave** of
  ``SNi``) when ``SNj`` is reachable from ``SNi`` along a path using at
  least one unidirectional edge;
* two supernodes are **peers** when they reach each other along
  bidirectional edges only;
* **absolute masters** are supernodes that are nobody's slave.

The same relations apply to the triple patterns inside the supernodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import UnsupportedQueryError
from ..sparql.ast import BGP, Filter, Join, LeftJoin, Pattern, TriplePattern


@dataclass
class Supernode:
    """One OPT-free BGP: its index and the indexes of its TPs."""

    index: int
    tp_indexes: tuple[int, ...]
    patterns: tuple[TriplePattern, ...]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SN{self.index}({len(self.patterns)} tps)"


@dataclass
class GoSN:
    """The supernode graph plus derived master/slave/peer relations."""

    supernodes: list[Supernode]
    patterns: list[TriplePattern]
    #: tp index -> supernode index
    sn_of_tp: dict[int, int]
    uni_edges: set[tuple[int, int]] = field(default_factory=set)
    bi_edges: set[tuple[int, int]] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._masters: dict[int, set[int]] | None = None
        self._peers: dict[int, set[int]] | None = None

    # ------------------------------------------------------------------
    # construction (§2.1)
    # ------------------------------------------------------------------

    @classmethod
    def from_pattern(cls, pattern: Pattern) -> "GoSN":
        """Build the GoSN of a (simplified, union-free) join tree.

        Filters are transparent: ``Filter(e, P)`` contributes the edges
        of ``P``.  A :class:`~repro.exceptions.UnsupportedQueryError` is
        raised for nodes outside the BGP/Join/LeftJoin fragment.
        """
        supernodes: list[Supernode] = []
        patterns: list[TriplePattern] = []
        sn_of_tp: dict[int, int] = {}
        uni_edges: set[tuple[int, int]] = set()
        bi_edges: set[tuple[int, int]] = set()

        def strip(node: Pattern) -> Pattern:
            while isinstance(node, Filter):
                node = node.pattern
            return node

        def build(node: Pattern) -> int:
            """Create supernodes/edges; return the leftmost SN index."""
            node = strip(node)
            if isinstance(node, BGP):
                index = len(supernodes)
                tp_indexes = []
                for tp in node.patterns:
                    tp_index = len(patterns)
                    patterns.append(tp)
                    tp_indexes.append(tp_index)
                    sn_of_tp[tp_index] = index
                supernodes.append(Supernode(index, tuple(tp_indexes),
                                            node.patterns))
                return index
            if isinstance(node, LeftJoin):
                left = build(node.left)
                right = build(node.right)
                uni_edges.add((left, right))
                return left
            if isinstance(node, Join):
                left = build(node.left)
                right = build(node.right)
                bi_edges.add((min(left, right), max(left, right)))
                return left
            raise UnsupportedQueryError(
                f"GoSN accepts BGP/Join/LeftJoin trees, found "
                f"{type(node).__name__}")

        build(pattern)
        return cls(supernodes=supernodes, patterns=patterns,
                   sn_of_tp=sn_of_tp, uni_edges=uni_edges, bi_edges=bi_edges)

    # ------------------------------------------------------------------
    # relations (§2.2)
    # ------------------------------------------------------------------

    def _compute_relations(self) -> None:
        count = len(self.supernodes)
        forward: dict[int, list[tuple[int, bool]]] = {i: []
                                                      for i in range(count)}
        for a, b in self.uni_edges:
            forward[a].append((b, True))
        for a, b in self.bi_edges:
            forward[a].append((b, False))
            forward[b].append((a, False))

        # masters[s] = set of m such that m is a master of s.
        masters: dict[int, set[int]] = {i: set() for i in range(count)}
        for start in range(count):
            # two-state BFS: (node, has the path used a uni edge yet?)
            seen = {(start, False)}
            frontier = [(start, False)]
            while frontier:
                node, used_uni = frontier.pop()
                for neighbor, is_uni in forward[node]:
                    state = (neighbor, used_uni or is_uni)
                    if state not in seen:
                        seen.add(state)
                        frontier.append(state)
                        if state[1] and neighbor != start:
                            masters[neighbor].add(start)
        self._masters = masters

        # peer components over bidirectional edges only
        peers: dict[int, set[int]] = {i: {i} for i in range(count)}
        parent = list(range(count))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in self.bi_edges:
            parent[find(a)] = find(b)
        groups: dict[int, set[int]] = {}
        for i in range(count):
            groups.setdefault(find(i), set()).add(i)
        for members in groups.values():
            for i in members:
                peers[i] = set(members)
        self._peers = peers

    def masters_of(self, sn: int) -> set[int]:
        """Supernodes that are (transitive) masters of *sn*."""
        if self._masters is None:
            self._compute_relations()
        return self._masters[sn]

    def slaves_of(self, sn: int) -> set[int]:
        """Supernodes that *sn* masters."""
        if self._masters is None:
            self._compute_relations()
        return {other for other in range(len(self.supernodes))
                if sn in self._masters[other]}

    def is_master(self, master: int, slave: int) -> bool:
        """True when *master* is a master of *slave*."""
        return master in self.masters_of(slave)

    def peers_of(self, sn: int) -> set[int]:
        """The peer group of *sn* (always contains *sn* itself)."""
        if self._peers is None:
            self._compute_relations()
        return self._peers[sn]

    def absolute_masters(self) -> set[int]:
        """Supernodes that are not slaves of any supernode."""
        return {i for i in range(len(self.supernodes))
                if not self.masters_of(i)}

    def peer_groups(self) -> list[set[int]]:
        """All distinct peer groups, deterministically ordered."""
        seen: set[int] = set()
        groups: list[set[int]] = []
        for i in range(len(self.supernodes)):
            if i not in seen:
                group = self.peers_of(i)
                seen |= group
                groups.append(group)
        return groups

    # ------------------------------------------------------------------
    # TP-level views
    # ------------------------------------------------------------------

    def tp_is_master(self, tp_master: int, tp_slave: int) -> bool:
        """Master relation lifted to triple patterns."""
        return self.is_master(self.sn_of_tp[tp_master],
                              self.sn_of_tp[tp_slave])

    def tp_is_peer(self, tp_a: int, tp_b: int) -> bool:
        """Peer relation lifted to triple patterns (same SN counts)."""
        return self.sn_of_tp[tp_b] in self.peers_of(self.sn_of_tp[tp_a])

    def tp_in_absolute_master(self, tp_index: int) -> bool:
        """True when the TP lives in an absolute master supernode."""
        return self.sn_of_tp[tp_index] in self.absolute_masters()

    # ------------------------------------------------------------------
    # Appendix B support
    # ------------------------------------------------------------------

    def with_bidirectional(self,
                           converted: set[tuple[int, int]]) -> "GoSN":
        """A copy where the given unidirectional edges became peers."""
        uni = {edge for edge in self.uni_edges if edge not in converted}
        bi = set(self.bi_edges)
        for a, b in converted:
            bi.add((min(a, b), max(a, b)))
        return GoSN(supernodes=self.supernodes, patterns=self.patterns,
                    sn_of_tp=self.sn_of_tp, uni_edges=uni, bi_edges=bi)

    def undirected_path(self, start: int, goal: int) -> list[int]:
        """The unique undirected SN path between two supernodes.

        GoSN has exactly ``#supernodes − 1`` edges (one per algebra
        operator) and is connected, hence a tree when directions are
        ignored — the property Appendix B relies on.
        """
        adjacency: dict[int, set[int]] = {i: set()
                                          for i in range(len(self.supernodes))}
        for a, b in self.uni_edges | self.bi_edges:
            adjacency[a].add(b)
            adjacency[b].add(a)
        previous: dict[int, int] = {start: start}
        frontier = [start]
        while frontier:
            node = frontier.pop(0)
            if node == goal:
                break
            for neighbor in sorted(adjacency[node]):
                if neighbor not in previous:
                    previous[neighbor] = node
                    frontier.append(neighbor)
        if goal not in previous:
            raise ValueError(f"no path between SN{start} and SN{goal}")
        path = [goal]
        while path[-1] != start:
            path.append(previous[path[-1]])
        return list(reversed(path))
