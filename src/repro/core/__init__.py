"""LBR core: GoSN, GoJ, jvar orders, pruning, multi-way join, engine."""

from .engine import EngineSession, LBREngine, QueryStats
from .explain import BranchPlan, QueryPlan, explain
from .goj import GoJ, GoT, Tree, get_tree, join_variables
from .gosn import GoSN, Supernode
from .jvar_order import decide_best_match_required, get_jvar_order
from .multiway import FanFilter, MultiWayJoin
from .nullification import GroupPlan, best_match, minimum_union, nullify
from .nwd import transform_non_well_designed
from .prune import (active_prune, clustered_semi_join, prune_triples,
                    semi_join)
from .results import ResultSet, VarMap, decode_binding
from .selectivity import SelectivityRanker
from .tp import TPState, translate_id

__all__ = [
    "BranchPlan", "FanFilter", "GoJ", "GoSN", "GoT", "GroupPlan",
    "EngineSession", "LBREngine", "QueryPlan", "explain",
    "MultiWayJoin", "QueryStats", "ResultSet", "SelectivityRanker",
    "Supernode", "TPState", "Tree", "VarMap", "active_prune", "best_match",
    "clustered_semi_join", "decide_best_match_required", "decode_binding",
    "get_jvar_order", "get_tree", "join_variables", "minimum_union",
    "nullify", "prune_triples", "semi_join", "transform_non_well_designed",
    "translate_id",
]
