"""``prune_triples`` — Algorithm 3.2, over BitMats via fold/unfold.

For every join variable of the bottom-up order and then of the top-down
order:

1. **semi-joins** transfer binding restrictions from every master TP to
   each of its slave TPs sharing the jvar (Alg 5.2) — only the slave is
   unfolded;
2. **clustered-semi-joins** intersect the bindings of all TPs sharing
   the jvar within one supernode peer group (Alg 5.3) — every member is
   unfolded.

Masks crossing between the subject and object id spaces are restricted
to the shared ``V_so`` region first (Appendix D): an id above
``num_shared`` denotes different terms on the two dimensions, so it can
never participate in an S-O join.

The same machinery implements the *active pruning* the paper applies
while loading BitMats in ``init()`` (§5).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..bitmat.bitvec import BitVector
from ..rdf.terms import Variable
from .gosn import GoSN
from .tp import TPState


def _combined_mask(states: Sequence[TPState], var: Variable,
                   num_shared: int) -> BitVector:
    """AND of the folds of *var* across *states*, space-corrected."""
    spaces = {state.space_of(var) for state in states}
    mask = BitVector.and_many([state.fold(var) for state in states])
    if len(spaces) > 1:
        mask = mask.truncate(num_shared + 1)
    return mask


def semi_join(var: Variable, slave: TPState, master: TPState,
              num_shared: int) -> bool:
    """Algorithm 5.2: restrict *slave* by *master*'s bindings of *var*."""
    mask = _combined_mask((master, slave), var, num_shared)
    # mask ⊆ fold(slave, var): equal counts mean the unfold is a no-op,
    # which repeated per-supernode rounds over the same jvar often hit
    if mask.count() != slave.fold(var).count():
        return slave.unfold(var, mask)
    return False


def clustered_semi_join(var: Variable, states: Sequence[TPState],
                        num_shared: int) -> bool:
    """Algorithm 5.3: intersect *var* bindings across peer TPs."""
    mask = _combined_mask(states, var, num_shared)
    mask_count = mask.count()
    changed = False
    for state in states:
        if mask_count != state.fold(var).count():
            changed |= state.unfold(var, mask)
    return changed


def prune_triples(order_bu: Sequence[Variable],
                  order_td: Sequence[Variable], gosn: GoSN,
                  states: Sequence[TPState], num_shared: int,
                  abort_check: Callable[[], bool] | None = None) -> bool:
    """Algorithm 3.2; returns False when *abort_check* fired.

    *abort_check* implements the paper's "simple optimization": when a
    TP in an absolute master supernode reaches zero triples the query
    result is provably empty and processing stops.
    """
    by_var: dict[Variable, list[TPState]] = {}
    for state in states:
        for var in state.variables():
            by_var.setdefault(var, []).append(state)

    previous_var: Variable | None = None
    previous_changed = True
    for order in (order_bu, order_td):
        for var in order:
            # a repeated round over the same jvar is a fixpoint
            # iteration; skip it when the previous round was a no-op
            if var == previous_var and not previous_changed:
                continue
            with_var = by_var.get(var, [])
            if len(with_var) < 2:
                continue
            changed = _semi_join_pass(var, with_var, gosn, num_shared)
            changed |= _clustered_pass(var, with_var, gosn, num_shared)
            previous_var, previous_changed = var, changed
            if abort_check is not None and abort_check():
                return False
    return True


def _semi_join_pass(var: Variable, with_var: Sequence[TPState],
                    gosn: GoSN, num_shared: int) -> bool:
    """All master→slave semi-joins for one jvar; True when TPs shrank.

    The pairwise semi-joins of Alg 3.2 lines 2–5 against a fixed slave
    compose into a single intersection of all its masters' folds, so
    each slave is unfolded at most once per round.
    """
    changed = False
    for slave in with_var:
        masters = [master for master in with_var
                   if master is not slave
                   and gosn.tp_is_master(master.index, slave.index)]
        if not masters:
            continue
        mask = _combined_mask(masters + [slave], var, num_shared)
        if mask.count() != slave.fold(var).count():
            changed |= slave.unfold(var, mask)
    return changed


def _clustered_pass(var: Variable, with_var: Sequence[TPState],
                    gosn: GoSN, num_shared: int) -> bool:
    changed = False
    done: set[frozenset[int]] = set()
    for state in with_var:
        group = frozenset(gosn.peers_of(gosn.sn_of_tp[state.index]))
        if group in done:
            continue
        done.add(group)
        cluster = [other for other in with_var
                   if gosn.sn_of_tp[other.index] in group]
        if len(cluster) >= 2:
            mask = _combined_mask(cluster, var, num_shared)
            mask_count = mask.count()
            for member in cluster:
                if mask_count != member.fold(var).count():
                    changed |= member.unfold(var, mask)
    return changed


def active_prune(new_state: TPState, loaded: Sequence[TPState],
                 gosn: GoSN, num_shared: int) -> None:
    """Active pruning while loading (§5 ``init``).

    The freshly loaded TP takes binding restrictions from every already
    loaded TP that is its master or peer — never from its slaves, which
    would be unsound for a left-outer join.
    """
    for var in new_state.variables():
        for other in loaded:
            if var not in other.variables():
                continue
            if (gosn.tp_is_peer(other.index, new_state.index)
                    or gosn.tp_is_master(other.index, new_state.index)):
                semi_join(var, new_state, other, num_shared)
