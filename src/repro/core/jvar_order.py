"""``get_jvar_order`` — Algorithm 3.1 of the paper.

Produces the bottom-up and top-down jvar orders that drive
``prune_triples``:

* **cyclic GoJ** → a single greedy order (jvars by descending
  selectivity) used for both passes; minimality is not guaranteed and
  the engine may need nullification/best-match (§3.3);
* **acyclic GoJ** → first the induced subtree over the jvars of the
  absolute master supernodes, rooted at the *least* selective of them
  (so it is processed last), then per-slave-supernode induced subtrees —
  masters before slaves, more selective peers first — each rooted at a
  jvar shared with a master.  The top-down order mirrors the procedure
  with top-down traversals (§3.2).

A jvar may appear several times across the concatenated orders; each
occurrence triggers another pruning round, exactly as in the paper's
Example-2 (``orderbu = [?friend, ?sitcom, ?friend]``).
"""

from __future__ import annotations

from ..rdf.terms import Variable
from .goj import GoJ, get_tree, pattern_variables
from .gosn import GoSN
from .selectivity import SelectivityRanker


def supernode_jvars(gosn: GoSN, sn_index: int,
                    jvars: set[Variable]) -> set[Variable]:
    """Join variables occurring in the supernode's triple patterns."""
    found: set[Variable] = set()
    for tp in gosn.supernodes[sn_index].patterns:
        found.update(v for v in pattern_variables(tp) if v in jvars)
    return found


def order_slave_supernodes(gosn: GoSN,
                           ranker: SelectivityRanker) -> list[int]:
    """The ``SNss`` order of Alg 3.1 line 8.

    Non-absolute-master supernodes, masters before their slaves, and
    among incomparable supernodes the one holding a more selective
    triple pattern first.
    """
    absolute = gosn.absolute_masters()
    remaining = [i for i in range(len(gosn.supernodes)) if i not in absolute]
    ordered: list[int] = []
    pending = set(remaining)
    while pending:
        # ready = pending SNs none of whose masters are still pending
        ready = [sn for sn in pending
                 if not (gosn.masters_of(sn) & pending)]
        if not ready:  # defensive: master relation is acyclic by design
            ready = sorted(pending)
        ready.sort(key=lambda sn: (
            ranker.supernode_key(gosn.supernodes[sn].tp_indexes), sn))
        ordered.append(ready[0])
        pending.discard(ready[0])
    return ordered


def get_jvar_order(gosn: GoSN, goj: GoJ, ranker: SelectivityRanker,
                   ) -> tuple[list[Variable], list[Variable]]:
    """Return ``(orderbu, ordertd)`` per Algorithm 3.1."""
    jvars = set(goj.nodes)
    if not jvars:
        return [], []

    if goj.is_cyclic():
        greedy = ranker.greedy_jvar_order(jvars)
        return list(greedy), list(greedy)

    order_bu: list[Variable] = []
    order_td: list[Variable] = []

    master_jvars: set[Variable] = set()
    for sn in gosn.absolute_masters():
        master_jvars |= supernode_jvars(gosn, sn, jvars)
    if master_jvars:
        root = ranker.least_selective_jvar(master_jvars)
        master_tree = get_tree(goj, master_jvars, root)
        order_bu.extend(master_tree.bottom_up())
        order_td.extend(master_tree.top_down())

    slave_order = order_slave_supernodes(gosn, ranker)
    slave_trees = []
    for sn in slave_order:
        sn_jvars = supernode_jvars(gosn, sn, jvars)
        if not sn_jvars:
            continue
        shared = _jvars_shared_with_masters(gosn, sn, sn_jvars, jvars)
        root_pool = shared if shared else sn_jvars
        root = ranker.least_selective_jvar(root_pool)
        slave_trees.append(get_tree(goj, sn_jvars, root))
    for tree in slave_trees:
        order_bu.extend(tree.bottom_up())
    for tree in slave_trees:
        order_td.extend(tree.top_down())
    return order_bu, order_td


def _jvars_shared_with_masters(gosn: GoSN, sn: int,
                               sn_jvars: set[Variable],
                               jvars: set[Variable]) -> set[Variable]:
    """Jvars of *sn* that also occur in one of its master supernodes."""
    shared: set[Variable] = set()
    for master in gosn.masters_of(sn):
        shared |= sn_jvars & supernode_jvars(gosn, master, jvars)
    return shared


def decide_best_match_required(gosn: GoSN, goj: GoJ) -> bool:
    """Line 5 of Alg 5.1: nullification/best-match needed?

    Required exactly when the GoJ is cyclic *and* some slave supernode
    contains more than one join variable (Lemmas 3.3 and 3.4).
    """
    if not goj.is_cyclic():
        return False
    jvars = set(goj.nodes)
    absolute = gosn.absolute_masters()
    for sn in range(len(gosn.supernodes)):
        if sn in absolute:
            continue
        if len(supernode_jvars(gosn, sn, jvars)) > 1:
            return True
    return False
