"""The LBR query processor — Algorithm 5.1 end to end.

Compilation runs through the staged pipeline in :mod:`repro.plan`:

1. **frontend** — parse and lower to the annotated logical IR, then
   canonicalize variable names and compute the structural hash
   (:mod:`repro.plan.hashing`);
2. **passes** — the rewrite-pass manager (:mod:`repro.plan.passes`):
   equality-filter elimination, UNION normal form (§5.2), filter-scope
   assignment, well-designedness analysis + the Appendix B transform;
3. **physical planning** — per UNION-free branch, GoSN (§2) and GoJ
   (§3.1), selectivity ranking, the Algorithm 3.1 jvar orders, the
   init-vs-FaN filter routing, and the nullification/best-match
   decision (:mod:`repro.plan.physical`).

Physical plans are cached keyed on the structural hash of the logical
IR, so alpha-equivalent queries — renamed variables, reformatted text
— share one compiled plan; constants, operators, and solution
modifiers are all part of the key.

Execution per branch is the paper's runtime half:

4. ``init()``: load one BitMat per TP with *active pruning*, abandoning
   early when an absolute master TP is empty (the §5 "simple
   optimization");
5. ``prune_triples`` (Alg 3.2) over the compressed BitMats;
6. sort TPs masters-first (§5.1) and run the multi-way pipelined join
   (Alg 5.4) with FaN filters;
7. best-match when the branch required nullification.

Branch results are bag-unioned, with minimum-union cleanup when UNF
rewrite rule 3 may have introduced spurious rows.

Concurrency: the engine itself holds only *shared* state — the store,
the config switches, and the compile caches.  All mutable per-query
state (TP slot states, join scratch, the :class:`QueryStats`) lives in
an :class:`EngineSession`, so any number of sessions can execute
concurrently against one engine built with ``thread_safe=True`` (which
swaps the compile caches for lock-striped ones and single-flights plan
compilation so a burst of structurally identical queries shares one
compile).  ``LBREngine.execute`` remains the single-threaded
convenience wrapper: it runs a throwaway session and mirrors its stats
into ``last_stats``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..bitmat.bitvec import BitVector
from ..bitmat.store import BitMatStore
from ..exceptions import DeadlineExceededError
from ..lru import LRUCache, StripedLRUCache
from ..plan.compiler import FrontendResult, compile_frontend, run_pipeline
from ..plan.passes import PassManager, default_passes
from ..plan.physical import BranchPhysicalPlan, PhysicalPlan, build_physical
from ..rdf.terms import NULL, Variable
from ..sparql.ast import Query
from ..sparql.expressions import passes
from ..sync import UNSET, SingleFlight
from .multiway import MultiWayJoin
from .nullification import GroupPlan, minimum_union
from .prune import active_prune, prune_triples
from .results import (ResultSet, apply_solution_modifiers, decode_binding,
                      decode_rows)
from .tp import TPState

#: Bound on the per-engine compiled (physical) plan cache.
PLAN_CACHE_SIZE = 128
#: Bound on the per-engine parse/canonicalize memo (text-keyed).
FRONTEND_CACHE_SIZE = 256

#: How many emitted join rows between deadline checks (the check is a
#: clock read; amortizing it keeps the hot emit path cheap).
_DEADLINE_STRIDE = 512


@dataclass
class QueryStats:
    """The §6.1 evaluation metrics for one query execution."""

    t_plan: float = 0.0
    t_init: float = 0.0
    t_prune: float = 0.0
    t_join: float = 0.0
    t_total: float = 0.0
    initial_triples: int = 0
    triples_after_pruning: int = 0
    num_results: int = 0
    results_with_nulls: int = 0
    #: whether this execution could have emitted NULLs at all (slave
    #: TPs, nullification, or branch padding) — when False the NULL
    #: row count above is exact without scanning the result
    nulls_possible: bool = False
    best_match_required: bool = False
    aborted_empty: bool = False
    branches: int = 0
    nwd_transformed: bool = False
    jvar_order_bu: list = field(default_factory=list)
    jvar_order_td: list = field(default_factory=list)


class LBREngine:
    """Left Bit Right query engine over a :class:`BitMatStore`.

    The ablation switches exist for the benchmark suite:
    *enable_prune* turns Algorithm 3.2 off (the multi-way join alone is
    still correct for acyclic well-designed queries only when combined
    with nullification, so disabling pruning forces the
    nullification/best-match path), and *enable_active_prune* controls
    the init-time pruning of §5.
    """

    def __init__(self, store: BitMatStore, enable_prune: bool = True,
                 enable_active_prune: bool = True,
                 plan_cache_size: int = PLAN_CACHE_SIZE,
                 max_join_rows: int | None = None,
                 thread_safe: bool = False,
                 enable_state_memo: bool = True) -> None:
        self.store = store
        self.enable_prune = enable_prune
        self.enable_active_prune = enable_active_prune
        #: memoize post-prune TP states on the cached plan so warm
        #: repeats skip init+prune entirely (sound because the engine's
        #: store snapshot is immutable and plans bake their constants
        #: in; off switch exists for ablation benchmarks)
        self.enable_state_memo = enable_state_memo
        #: optional resource limit: a branch join that produces more
        #: rows raises :class:`~repro.exceptions.BudgetExceededError`
        #: (used by the fuzz harness and as the scheduler's default
        #: per-query budget; None means unlimited)
        self.max_join_rows = max_join_rows
        #: when True the compile caches are lock-striped and plan
        #: compilation is single-flighted; required for concurrent
        #: sessions (the snapshot publisher always sets it)
        self.thread_safe = thread_safe
        self.last_stats = QueryStats()
        # store-bound pipeline: the cost-based-ordering pass reads the
        # store's freeze-time statistics (heuristic fallback when None)
        self._pass_manager = PassManager(default_passes(store))
        cache_class = StripedLRUCache if thread_safe else LRUCache
        # Compiled physical plans keyed on the structural hash of the
        # canonicalized logical IR.  GoSN, GoJ, jvar orders, and the
        # filter routing never depend on binding values, so a repeated
        # query template — even alpha-renamed or reformatted — pays
        # only init + prune + join.  Constants are part of the key:
        # two queries differing only in a constant never share a plan.
        self._plan_cache = cache_class(plan_cache_size)
        # Text-keyed parse/canonicalize memo in front of the plan
        # cache (exact-text repeats skip the parser as well).
        self._frontend_cache = cache_class(
            max(plan_cache_size, FRONTEND_CACHE_SIZE))
        # Structurally identical concurrent queries share one compile:
        # the first thread to miss becomes the leader, the rest wait
        # and re-read the cache ("request batching" at the plan layer).
        self._compile_flight = SingleFlight() if thread_safe else None
        self._compile_lock = threading.Lock()
        self._compiles = 0
        self._shared_compiles = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def explain(self, query: Query | str):
        """The plan LBR would run (see :mod:`repro.core.explain`)."""
        from .explain import explain
        return explain(self.store, query)

    def session(self, max_join_rows: int | None = UNSET,
                deadline: float | None = None) -> "EngineSession":
        """A per-request execution context over this engine.

        *max_join_rows* overrides the engine default when given;
        *deadline* is an absolute ``time.monotonic()`` timestamp after
        which execution raises :class:`DeadlineExceededError`.
        """
        return EngineSession(self, max_join_rows=max_join_rows,
                             deadline=deadline)

    def execute(self, query: Query | str) -> ResultSet:
        """Run a SELECT query; per-query metrics land in ``last_stats``.

        Single-threaded convenience wrapper: concurrent callers should
        hold their own :meth:`session` instead (``last_stats`` is
        shared engine state and would be overwritten racily).
        """
        session = self.session()
        result = session.execute(query)
        self.last_stats = session.last_stats
        return result

    def plan_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the compiled plan cache."""
        return self._plan_cache.stats()

    def frontend_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the parse/canonicalize memo."""
        return self._frontend_cache.stats()

    def compile_stats(self) -> dict[str, int]:
        """Plan compilation counters.

        ``compiles`` counts actual physical-plan builds; ``shared``
        counts requests that piggybacked on another thread's in-flight
        compile instead of building their own (the batching win).
        """
        with self._compile_lock:
            return {"compiles": self._compiles,
                    "shared": self._shared_compiles}

    # ------------------------------------------------------------------
    # query planning (binding-independent, cached)
    # ------------------------------------------------------------------

    def _plan_query(self, query: Query | str,
                    ) -> tuple[FrontendResult, PhysicalPlan]:
        """Compile *query*, serving repeats from the plan cache.

        Two caches stack: a text-keyed frontend memo (parse + lower +
        canonicalize; for parsed queries, keyed on the canonical
        re-serialization) and the physical-plan cache keyed on the
        structural hash of the canonical logical IR.  A renamed or
        reformatted template misses the text memo but *hits* the plan
        cache; planning failures are never cached.
        """
        text = query if isinstance(query, str) else query.to_sparql()
        frontend = self._frontend_cache.get(text)
        if frontend is None:
            frontend = compile_frontend(
                query if isinstance(query, Query) else text)
            self._frontend_cache.put(text, frontend)
        key = frontend.canonical.key
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self._compile_plan(key, frontend)
        return frontend, plan

    def _compile_plan(self, key: str,
                      frontend: FrontendResult) -> PhysicalPlan:
        """Build (or wait for) the physical plan for structural *key*."""
        if self._compile_flight is None:
            plan = self._build_plan(key, frontend)
            self._plan_cache.put(key, plan)
            self._compiles += 1
            return plan
        while True:
            leader, event = self._compile_flight.begin(key)
            if leader:
                try:
                    plan = self._build_plan(key, frontend)
                    self._plan_cache.put(key, plan)
                    with self._compile_lock:
                        self._compiles += 1
                    return plan
                finally:
                    # released on failure too, so followers retry
                    # rather than wait forever on a failed compile
                    self._compile_flight.finish(key)
            event.wait()
            plan = self._plan_cache.get(key)
            if plan is not None:
                with self._compile_lock:
                    self._shared_compiles += 1
                return plan
            # the leader failed (planning error, eviction race):
            # take a turn at compiling ourselves

    def _build_plan(self, key: str,
                    frontend: FrontendResult) -> PhysicalPlan:
        compiled = run_pipeline(frontend.canonical.logical,
                                self._pass_manager)
        return build_physical(compiled, self.store,
                              enable_prune=self.enable_prune,
                              structural_key=key)


class EngineSession:
    """Per-request execution context: all mutable query state lives here.

    The engine, the compiled plans, and the store are only *read*
    during execution — BitMat materializations are immutable, pruning
    ``unfold``s into fresh per-session objects, and the join's slot
    array is private to the session's :class:`MultiWayJoin` — so any
    number of sessions can run concurrently against one engine
    snapshot.  Per-session budgets (``max_join_rows``, an absolute
    *deadline*) bound each request independently.
    """

    def __init__(self, engine: LBREngine,
                 max_join_rows: int | None = UNSET,
                 deadline: float | None = None) -> None:
        self.engine = engine
        self.max_join_rows = (engine.max_join_rows
                              if max_join_rows is UNSET else max_join_rows)
        #: absolute ``time.monotonic()`` deadline, or None
        self.deadline = deadline
        self.last_stats = QueryStats()

    @property
    def store(self) -> BitMatStore:
        return self.engine.store

    def execute(self, query: Query | str) -> ResultSet:
        """Run a SELECT query; metrics land in this session's
        ``last_stats``."""
        started = time.perf_counter()
        self._check_deadline()
        frontend, plan = self.engine._plan_query(query)
        t_plan = time.perf_counter() - started

        stats = QueryStats(branches=len(plan.branches), t_plan=t_plan)
        all_variables = plan.all_variables  # canonical space
        #: canonical → source variable names (stats and result columns
        #: must never leak the internal canonical names)
        back = frontend.canonical.from_canonical
        combined: list[tuple] = []
        #: whether any NULL sentinel can appear in the combined rows —
        #: tracked so the per-row NULL scan below runs only when a NULL
        #: source (nullification, branch padding, projection widening)
        #: actually fired
        nulls_possible = False
        for branch_plan in plan.branches:
            rows, branch_vars, branch_stats = (
                self._execute_branch(branch_plan))
            if rows and (branch_stats.nulls_possible
                         or any(var not in branch_vars
                                for var in all_variables)):
                nulls_possible = True
            stats.t_init += branch_stats.t_init
            stats.t_prune += branch_stats.t_prune
            stats.t_join += branch_stats.t_join
            stats.initial_triples += branch_stats.initial_triples
            stats.triples_after_pruning += branch_stats.triples_after_pruning
            stats.best_match_required |= branch_stats.best_match_required
            stats.aborted_empty |= branch_stats.aborted_empty
            stats.nwd_transformed |= branch_stats.nwd_transformed
            if not stats.jvar_order_bu:
                stats.jvar_order_bu = [back.get(v, v)
                                       for v in branch_stats.jvar_order_bu]
                stats.jvar_order_td = [back.get(v, v)
                                       for v in branch_stats.jvar_order_td]
            combined.extend(_align_rows(rows, branch_vars, all_variables))
        if plan.spurious_possible:
            combined = minimum_union(combined)

        if plan.renames:
            # restore columns dropped by FILTER(?m = ?n) elimination:
            # the dropped variable carries the kept variable's binding
            renames = plan.renames
            restored = tuple(sorted(set(all_variables) | set(renames)))
            kept_index = {var: i for i, var in enumerate(all_variables)}
            if combined and any(renames.get(var, var) not in kept_index
                                for var in restored):
                nulls_possible = True
            combined = [
                tuple(row[kept_index[renames.get(var, var)]]
                      if renames.get(var, var) in kept_index else NULL
                      for var in restored)
                for row in combined]
            all_variables = restored

        # translate the canonical column names back to the source
        # names — a pure relabeling: rows are positional
        source_variables = tuple(back.get(var, var)
                                 for var in all_variables)
        if combined and any(var not in source_variables
                            for var in frontend.query.projected()):
            nulls_possible = True
        result = apply_solution_modifiers(
            ResultSet(source_variables, combined), frontend.query)

        stats.num_results = len(result)
        stats.nulls_possible = nulls_possible
        stats.results_with_nulls = (result.rows_with_nulls()
                                    if nulls_possible else 0)
        stats.t_total = time.perf_counter() - started
        self.last_stats = stats
        return result

    # ------------------------------------------------------------------
    # budgets
    # ------------------------------------------------------------------

    def _check_deadline(self) -> None:
        if (self.deadline is not None
                and time.monotonic() >= self.deadline):
            raise DeadlineExceededError(
                "query exceeded its wall-clock deadline")

    def _deadline_sinks(self, rows: list) -> tuple[object, object]:
        """Scalar + batch row sinks with one amortized deadline check."""
        counter = [0]
        check = self._check_deadline
        append = rows.append
        extend = rows.extend

        def sink(row) -> None:
            append(row)
            counter[0] += 1
            if not counter[0] % _DEADLINE_STRIDE:
                check()

        def sink_many(batch) -> None:
            extend(batch)
            before = counter[0]
            counter[0] = before + len(batch)
            if counter[0] // _DEADLINE_STRIDE != before // _DEADLINE_STRIDE:
                check()
        return sink, sink_many

    # ------------------------------------------------------------------
    # one UNION-free branch (Alg 5.1)
    # ------------------------------------------------------------------

    def _execute_branch(self, plan: BranchPhysicalPlan,
                        ) -> tuple[list[tuple], tuple[Variable, ...],
                                   QueryStats]:
        stats = QueryStats()
        patterns = plan.patterns
        if not patterns:
            return [()], (), stats

        gosn = plan.gosn
        stats.nwd_transformed = plan.nwd_transformed
        stats.initial_triples = plan.initial_triples
        stats.jvar_order_bu = list(plan.order_bu)
        stats.jvar_order_td = list(plan.order_td)
        nul_required = plan.nul_required
        stats.best_match_required = nul_required
        engine = self.engine

        # ---- pruned-state memo (warm repeats of a cached plan) ------
        # A plan bakes its constants, init filters, and jvar orders in,
        # and the engine's store is an immutable snapshot, so the
        # post-prune TP states are a pure function of the plan.  After
        # pruning the join only *reads* the states (enumeration plus
        # add-only transpose/fold caches), so the memoized states are
        # shared safely across executions and concurrent sessions.
        memo = plan.pruned_memo if engine.enable_state_memo else None
        if memo is not None:
            sorted_states, group_plan, aborted = memo
            stats.triples_after_pruning = (
                sum(state.count() for state in sorted_states)
                if sorted_states is not None else 0)
            if aborted:
                stats.aborted_empty = True
                return [], tuple(), stats
            self._check_deadline()
        else:
            # ---- init with active pruning ---------------------------
            t0 = time.perf_counter()
            states: list[TPState] = []
            for index, tp in enumerate(patterns):
                state = TPState.load(index, tp, self.store,
                                     plan.row_first)
                for init_filter in plan.init_filters.get(index, ()):
                    self._apply_init_filter(state, init_filter)
                if engine.enable_active_prune:
                    active_prune(state, states, gosn,
                                 self.store.num_shared)
                states.append(state)
                if (state.is_empty()
                        and gosn.tp_in_absolute_master(index)):
                    stats.aborted_empty = True
                    stats.t_init = time.perf_counter() - t0
                    stats.triples_after_pruning = 0
                    if engine.enable_state_memo:
                        plan.pruned_memo = (None, None, True)
                    return [], tuple(), stats
            _fail_groups_with_absent_ground(states, gosn)
            stats.t_init = time.perf_counter() - t0
            self._check_deadline()

            # ---- prune (Alg 3.2) ------------------------------------
            t0 = time.perf_counter()
            if engine.enable_prune:
                def abort_check() -> bool:
                    return any(state.is_empty()
                               and gosn.tp_in_absolute_master(state.index)
                               for state in states)

                completed = prune_triples(plan.order_bu, plan.order_td,
                                          gosn, states,
                                          self.store.num_shared,
                                          abort_check)
                if not completed:
                    stats.aborted_empty = True
                    stats.t_prune = time.perf_counter() - t0
                    stats.triples_after_pruning = sum(
                        s.count() for s in states)
                    return [], tuple(), stats
            stats.t_prune = time.perf_counter() - t0
            stats.triples_after_pruning = sum(
                state.count() for state in states)
            self._check_deadline()

        # ---- multi-way pipelined join (Alg 5.4) ---------------------
        t0 = time.perf_counter()
        if memo is None:
            sorted_states = _sort_states(states, gosn, plan.ranker)
            group_plan = GroupPlan(gosn, sorted_states)
            if engine.enable_state_memo:
                plan.pruned_memo = (sorted_states, group_plan, False)
        encoded: list[tuple] = []
        if self.deadline is None:
            sink, sink_many = encoded.append, encoded.extend
        else:
            sink, sink_many = self._deadline_sinks(encoded)
        join = MultiWayJoin(sorted_states, gosn, group_plan, nul_required,
                            list(plan.fan_filters), self.store.dictionary,
                            sink,
                            max_output_rows=self.max_join_rows,
                            emit_many=sink_many)
        join.run()
        self._check_deadline()
        if nul_required or join.fan_nullified:
            # Minimum union (Rao et al.): drop subsumed rows *and* the
            # duplicates nullification introduces.  Full-width rows of a
            # well-formed query have multiplicity one, so this restores
            # exact bag semantics before projection.  Encoded rows are
            # id-per-column, so subsumption on them matches subsumption
            # on the decoded terms exactly.
            encoded = minimum_union(encoded)
            stats.best_match_required = True
        stats.nulls_possible = bool(encoded) and (
            join.may_emit_nulls or join.fan_nullified)
        rows = decode_rows(encoded, join.output_spaces,
                           self.store.dictionary)
        if join.dropping_fans:
            # top-level filters apply to the *restored* solution set
            # (post nullification and best-match), never inline: a
            # nullified partial match must first be subsumed by its
            # fuller row even when the filter drops that fuller row
            variables = join.output_variables
            filtered: list[tuple] = []
            for row in rows:
                binding = {var: value
                           for var, value in zip(variables, row)
                           if value is not NULL}
                if all(passes(fan.expr, binding)
                       for fan in join.dropping_fans):
                    filtered.append(row)
            rows = filtered
        stats.t_join = time.perf_counter() - t0
        branch_vars = tuple(join.output_variables)
        return rows, branch_vars, stats

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _apply_init_filter(self, state: TPState, init_filter) -> None:
        """Apply one single-certain-variable filter while loading (§5.2).

        The routing decision — which filters are safe at init and which
        must wait for FaN — was made by the physical planner
        (:func:`repro.plan.physical._route_filters`).
        """
        var = init_filter.var
        expr = init_filter.expr
        fold = state.fold(var)
        space = state.space_of(var)
        passing = [position for position in fold.iter_positions()
                   if passes(expr, {var: decode_binding(
                       (space, position), self.store.dictionary)})]
        state.unfold(var, BitVector.from_positions(fold.size, passing))


# ----------------------------------------------------------------------
# module helpers
# ----------------------------------------------------------------------

def _align_rows(rows: list[tuple], branch_vars: tuple[Variable, ...],
                all_variables: tuple[Variable, ...]) -> list[tuple]:
    """Pad/reorder branch rows onto the query-wide variable tuple."""
    if branch_vars == all_variables:
        return rows
    positions = [branch_vars.index(var) if var in branch_vars else None
                 for var in all_variables]
    return [tuple(row[i] if i is not None else NULL for i in positions)
            for row in rows]


def _fail_groups_with_absent_ground(states: list[TPState],
                                    gosn) -> None:
    """Empty every TP of a slave group containing an absent ground TP.

    A fully ground triple pattern that is not in the data makes its
    whole supernode peer group unsatisfiable; other TPs of the group
    must not contribute bindings (the OPTIONAL block fails as a unit),
    which pruning cannot express because ground TPs carry no variables.
    """
    dead_groups: set[frozenset[int]] = set()
    for state in states:
        if state.ground_present is False:
            dead_groups.add(
                frozenset(gosn.peers_of(gosn.sn_of_tp[state.index])))
    if not dead_groups:
        return
    for state in states:
        group = frozenset(gosn.peers_of(gosn.sn_of_tp[state.index]))
        if group in dead_groups and state.ground_present is None:
            for var in state.variables():
                fold = state.fold(var)
                state.unfold(var, BitVector.empty(fold.size))
                break


def _sort_states(states: list[TPState], gosn,
                 ranker) -> list[TPState]:
    """The stps order of §5.1.

    Absolute-master TPs first in ascending post-prune count, then the
    remaining TPs grouped by supernode peer group in master-first
    topological order, each group's TPs in ascending count.
    """
    from .jvar_order import order_slave_supernodes

    absolute = gosn.absolute_masters()
    sn_rank: dict[int, int] = {}
    for sn in absolute:
        sn_rank[sn] = 0
    for position, sn in enumerate(order_slave_supernodes(gosn, ranker),
                                  start=1):
        sn_rank[sn] = position
    # lift SN ranks to peer-group ranks so peers stay adjacent
    group_rank: dict[int, int] = {}
    for sn, rank in sn_rank.items():
        for peer in gosn.peers_of(sn):
            group_rank[peer] = min(group_rank.get(peer, rank), rank)

    def key(state: TPState) -> tuple[int, int, int]:
        sn = gosn.sn_of_tp[state.index]
        return (group_rank.get(sn, len(sn_rank)), state.count(),
                state.index)

    return sorted(states, key=key)
