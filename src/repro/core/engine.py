"""The LBR query processor — Algorithm 5.1 end to end.

Pipeline per UNION-free branch:

1. build GoSN (§2) and GoJ (§3.1), validate the supported fragment;
2. transform the GoSN when the branch is non-well-designed (Appendix B);
3. rank selectivities from index metadata, compute the jvar orders
   (Alg 3.1), and decide whether nullification/best-match are needed;
4. ``init()``: load one BitMat per TP with *active pruning*, abandoning
   early when an absolute master TP is empty (the §5 "simple
   optimization");
5. ``prune_triples`` (Alg 3.2) over the compressed BitMats;
6. sort TPs masters-first (§5.1) and run the multi-way pipelined join
   (Alg 5.4) with FaN filters;
7. best-match when the branch required nullification.

UNION and FILTER are handled by rewriting to UNION normal form first
(§5.2); branch results are bag-unioned, with minimum-union cleanup when
rewrite rule 3 may have introduced spurious rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..bitmat.bitvec import BitVector
from ..bitmat.store import BitMatStore
from ..exceptions import UnsupportedQueryError
from ..lru import LRUCache
from ..rdf.terms import NULL, Variable, is_variable
from ..sparql.ast import (BGP, Filter, Join, LeftJoin, Pattern, Query,
                          TriplePattern, Union)
from ..sparql.expressions import expression_variables, passes
from ..sparql.parser import parse_query
from ..sparql.rewrite import eliminate_equality_filters, to_union_normal_form
from ..sparql.wd import find_violations
from .goj import GoJ, GoT, join_variables
from .gosn import GoSN
from .jvar_order import decide_best_match_required, get_jvar_order
from .multiway import FanFilter, MultiWayJoin
from .nullification import GroupPlan, minimum_union
from .prune import active_prune, prune_triples
from .results import (ResultSet, apply_solution_modifiers, decode_binding,
                      decode_rows)
from .selectivity import SelectivityRanker
from .tp import TPState

#: Bound on the per-engine compiled plan cache.
PLAN_CACHE_SIZE = 128


@dataclass
class QueryStats:
    """The §6.1 evaluation metrics for one query execution."""

    t_init: float = 0.0
    t_prune: float = 0.0
    t_join: float = 0.0
    t_total: float = 0.0
    initial_triples: int = 0
    triples_after_pruning: int = 0
    num_results: int = 0
    results_with_nulls: int = 0
    best_match_required: bool = False
    aborted_empty: bool = False
    branches: int = 0
    nwd_transformed: bool = False
    jvar_order_bu: list = field(default_factory=list)
    jvar_order_td: list = field(default_factory=list)


@dataclass
class _ScopedFilter:
    expr: object
    tp_start: int
    tp_end: int


@dataclass
class _BranchPlan:
    """Binding-independent analysis of one UNION-free branch.

    Everything here is a pure function of the branch algebra (constants
    included) and the immutable store metadata, so a repeated query
    template reuses it wholesale; only init/prune/join — the parts that
    touch actual triples — run per execution.
    """

    patterns: list[TriplePattern]
    gosn: GoSN
    scoped_filters: list[_ScopedFilter]
    ranker: SelectivityRanker
    order_bu: list[Variable]
    order_td: list[Variable]
    row_first: dict[Variable, int]
    nul_required: bool
    nwd_transformed: bool
    initial_triples: int
    #: variables bound by an absolute-master peer group TP — never
    #: NULL in any emitted row (decides init-vs-FaN filter routing)
    certain_vars: set[Variable] = field(default_factory=set)


@dataclass
class _QueryPlan:
    """The cached compilation of a whole query."""

    query: Query
    renames: dict[Variable, Variable]
    branches: list[Pattern]
    spurious_possible: bool
    all_variables: tuple[Variable, ...]
    branch_plans: list[_BranchPlan]


class LBREngine:
    """Left Bit Right query engine over a :class:`BitMatStore`.

    The ablation switches exist for the benchmark suite:
    *enable_prune* turns Algorithm 3.2 off (the multi-way join alone is
    still correct for acyclic well-designed queries only when combined
    with nullification, so disabling pruning forces the
    nullification/best-match path), and *enable_active_prune* controls
    the init-time pruning of §5.
    """

    def __init__(self, store: BitMatStore, enable_prune: bool = True,
                 enable_active_prune: bool = True,
                 plan_cache_size: int = PLAN_CACHE_SIZE,
                 max_join_rows: int | None = None) -> None:
        self.store = store
        self.enable_prune = enable_prune
        self.enable_active_prune = enable_active_prune
        #: optional resource limit: a branch join that produces more
        #: rows raises :class:`~repro.exceptions.BudgetExceededError`
        #: (used by the fuzz harness; None means unlimited)
        self.max_join_rows = max_join_rows
        self.last_stats = QueryStats()
        # Compiled query plans keyed on the normalized algebra text.
        # GoSN, GoJ, jvar orders, and the visit plan never depend on
        # binding values, so a repeated query template pays only
        # init + prune + join.  Constants are part of the key: two
        # queries differing only in a constant never share a plan.
        self._plan_cache: LRUCache[str, _QueryPlan] = (
            LRUCache(plan_cache_size))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def explain(self, query: Query | str):
        """The plan LBR would run (see :mod:`repro.core.explain`)."""
        from .explain import explain
        return explain(self.store, query)

    def execute(self, query: Query | str) -> ResultSet:
        """Run a SELECT query; per-query metrics land in ``last_stats``."""
        started = time.perf_counter()
        plan = self._plan_query(query)
        query = plan.query

        stats = QueryStats(branches=len(plan.branches))
        all_variables = plan.all_variables
        combined: list[tuple] = []
        for branch_plan in plan.branch_plans:
            rows, branch_vars, branch_stats = (
                self._execute_branch(branch_plan))
            stats.t_init += branch_stats.t_init
            stats.t_prune += branch_stats.t_prune
            stats.t_join += branch_stats.t_join
            stats.initial_triples += branch_stats.initial_triples
            stats.triples_after_pruning += branch_stats.triples_after_pruning
            stats.best_match_required |= branch_stats.best_match_required
            stats.aborted_empty |= branch_stats.aborted_empty
            stats.nwd_transformed |= branch_stats.nwd_transformed
            if not stats.jvar_order_bu:
                stats.jvar_order_bu = branch_stats.jvar_order_bu
                stats.jvar_order_td = branch_stats.jvar_order_td
            combined.extend(_align_rows(rows, branch_vars, all_variables))
        if plan.spurious_possible:
            combined = minimum_union(combined)

        if plan.renames:
            # restore columns dropped by FILTER(?m = ?n) elimination:
            # the dropped variable carries the kept variable's binding
            renames = plan.renames
            restored = tuple(sorted(set(all_variables) | set(renames)))
            kept_index = {var: i for i, var in enumerate(all_variables)}
            combined = [
                tuple(row[kept_index[renames.get(var, var)]]
                      if renames.get(var, var) in kept_index else NULL
                      for var in restored)
                for row in combined]
            all_variables = restored

        result = apply_solution_modifiers(
            ResultSet(all_variables, combined), query)

        stats.num_results = len(result)
        stats.results_with_nulls = result.rows_with_nulls()
        stats.t_total = time.perf_counter() - started
        self.last_stats = stats
        return result

    def plan_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the compiled plan cache."""
        return self._plan_cache.stats()

    # ------------------------------------------------------------------
    # query planning (binding-independent, cached)
    # ------------------------------------------------------------------

    def _plan_query(self, query: Query | str) -> _QueryPlan:
        """Compile *query*, serving repeats from the plan cache.

        The cache key is the query text — for parsed queries, the
        canonical re-serialization — so it covers every constant; the
        cache is bounded LRU and planning failures are never cached.
        """
        key = query if isinstance(query, str) else query.to_sparql()
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        if isinstance(query, str):
            query = parse_query(query)
        renames: dict[Variable, Variable] = {}
        pattern = eliminate_equality_filters(query.pattern, renames)
        normal_form = to_union_normal_form(pattern)
        plan = _QueryPlan(
            query=query,
            renames=renames,
            branches=list(normal_form.branches),
            spurious_possible=normal_form.spurious_possible,
            all_variables=tuple(sorted(pattern.variables())),
            branch_plans=[self._plan_branch(branch)
                          for branch in normal_form.branches])
        self._plan_cache.put(key, plan)
        return plan

    def _plan_branch(self, branch: Pattern) -> _BranchPlan:
        """Steps 1–3 of Alg 5.1: all binding-independent analysis."""
        gosn = GoSN.from_pattern(branch)
        patterns = gosn.patterns
        scoped_filters = _collect_filters(branch)
        _validate_supported(patterns, scoped_filters)

        if not patterns:
            return _BranchPlan(patterns=[], gosn=gosn,
                               scoped_filters=scoped_filters,
                               ranker=SelectivityRanker([], []),
                               order_bu=[], order_td=[], row_first={},
                               nul_required=False, nwd_transformed=False,
                               initial_triples=0)

        nwd_transformed = False
        violations = find_violations(branch)
        if violations:
            gosn = _transform_nwd(gosn, branch, violations)
            nwd_transformed = True

        got = GoT.build(patterns)
        if not _connected_ignoring_ground(got, patterns):
            raise UnsupportedQueryError(
                "query contains a Cartesian product between triple "
                "patterns; LBR does not evaluate Cartesian products")

        goj = GoJ.build(patterns)
        metadata_counts = [self._metadata_count(tp) for tp in patterns]
        ranker = SelectivityRanker(patterns, metadata_counts)
        order_bu, order_td = get_jvar_order(gosn, goj, ranker)
        nul_required = (decide_best_match_required(gosn, goj)
                        or _has_disconnected_slave_group(gosn))
        if not self.enable_prune:
            # without minimality guarantees, reordered evaluation needs
            # the nullification/best-match safety net whenever the query
            # has OPTIONALs at all
            nul_required = nul_required or bool(gosn.uni_edges)
        row_first: dict[Variable, int] = {}
        for rank, var in enumerate(order_bu):
            row_first.setdefault(var, rank)
        return _BranchPlan(patterns=patterns, gosn=gosn,
                           scoped_filters=scoped_filters, ranker=ranker,
                           order_bu=list(order_bu), order_td=list(order_td),
                           row_first=row_first, nul_required=nul_required,
                           nwd_transformed=nwd_transformed,
                           initial_triples=sum(metadata_counts),
                           certain_vars=_certain_variables(gosn))

    # ------------------------------------------------------------------
    # one UNION-free branch (Alg 5.1)
    # ------------------------------------------------------------------

    def _execute_branch(self, plan: _BranchPlan,
                        ) -> tuple[list[tuple], tuple[Variable, ...],
                                   QueryStats]:
        stats = QueryStats()
        patterns = plan.patterns
        if not patterns:
            return [()], (), stats

        gosn = plan.gosn
        stats.nwd_transformed = plan.nwd_transformed
        stats.initial_triples = plan.initial_triples
        stats.jvar_order_bu = list(plan.order_bu)
        stats.jvar_order_td = list(plan.order_td)
        nul_required = plan.nul_required
        stats.best_match_required = nul_required

        # ---- init with active pruning -------------------------------
        t0 = time.perf_counter()
        states: list[TPState] = []
        for index, tp in enumerate(patterns):
            state = TPState.load(index, tp, self.store, plan.row_first)
            self._apply_init_filters(state, index, plan.scoped_filters,
                                     plan.certain_vars)
            if self.enable_active_prune:
                active_prune(state, states, gosn, self.store.num_shared)
            states.append(state)
            if (state.is_empty()
                    and gosn.tp_in_absolute_master(index)):
                stats.aborted_empty = True
                stats.t_init = time.perf_counter() - t0
                stats.triples_after_pruning = 0
                return [], tuple(), stats
        _fail_groups_with_absent_ground(states, gosn)
        stats.t_init = time.perf_counter() - t0

        # ---- prune (Alg 3.2) ----------------------------------------
        t0 = time.perf_counter()
        if self.enable_prune:
            def abort_check() -> bool:
                return any(state.is_empty()
                           and gosn.tp_in_absolute_master(state.index)
                           for state in states)

            completed = prune_triples(plan.order_bu, plan.order_td, gosn,
                                      states, self.store.num_shared,
                                      abort_check)
            if not completed:
                stats.aborted_empty = True
                stats.t_prune = time.perf_counter() - t0
                stats.triples_after_pruning = sum(s.count() for s in states)
                return [], tuple(), stats
        stats.t_prune = time.perf_counter() - t0
        stats.triples_after_pruning = sum(state.count() for state in states)

        # ---- multi-way pipelined join (Alg 5.4) ---------------------
        t0 = time.perf_counter()
        sorted_states = _sort_states(states, gosn, plan.ranker)
        group_plan = GroupPlan(gosn, sorted_states)
        fan_filters = self._fan_filters(plan.scoped_filters, gosn,
                                        group_plan, plan.certain_vars)
        encoded: list[tuple] = []
        join = MultiWayJoin(sorted_states, gosn, group_plan, nul_required,
                            fan_filters, self.store.dictionary,
                            encoded.append,
                            max_output_rows=self.max_join_rows)
        join.run()
        if nul_required or join.fan_nullified:
            # Minimum union (Rao et al.): drop subsumed rows *and* the
            # duplicates nullification introduces.  Full-width rows of a
            # well-formed query have multiplicity one, so this restores
            # exact bag semantics before projection.  Encoded rows are
            # id-per-column, so subsumption on them matches subsumption
            # on the decoded terms exactly.
            encoded = minimum_union(encoded)
            stats.best_match_required = True
        rows = decode_rows(encoded, join.output_spaces,
                           self.store.dictionary)
        if join.dropping_fans:
            # top-level filters apply to the *restored* solution set
            # (post nullification and best-match), never inline: a
            # nullified partial match must first be subsumed by its
            # fuller row even when the filter drops that fuller row
            variables = join.output_variables
            filtered: list[tuple] = []
            for row in rows:
                binding = {var: value
                           for var, value in zip(variables, row)
                           if value is not NULL}
                if all(passes(fan.expr, binding)
                       for fan in join.dropping_fans):
                    filtered.append(row)
            rows = filtered
        stats.t_join = time.perf_counter() - t0
        branch_vars = tuple(join.output_variables)
        return rows, branch_vars, stats

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _metadata_count(self, tp: TriplePattern) -> int:
        sid = (None if is_variable(tp.s)
               else self.store.encode_term(tp.s, "s"))
        pid = (None if is_variable(tp.p)
               else self.store.encode_term(tp.p, "p"))
        oid = (None if is_variable(tp.o)
               else self.store.encode_term(tp.o, "o"))
        if ((not is_variable(tp.s) and sid is None)
                or (not is_variable(tp.p) and pid is None)
                or (not is_variable(tp.o) and oid is None)):
            return 0
        return self.store.count_matching(sid, pid, oid)

    def _apply_init_filters(self, state: TPState, index: int,
                            scoped_filters: list[_ScopedFilter],
                            certain_vars: set[Variable]) -> None:
        """Apply single-variable filters over certain variables while
        loading (§5.2).

        Filters over a *nullable* variable must not touch init: they
        evaluate at result generation (FaN), possibly against NULL.
        Pre-filtering the variable's candidates here would turn
        "filter drops the row" into "the OPTIONAL block fails", i.e.
        fabricate a NULL-extended row the filter then judges instead
        of the real binding.
        """
        for scoped in scoped_filters:
            if not scoped.tp_start <= index < scoped.tp_end:
                continue
            expr_vars = expression_variables(scoped.expr)
            if len(expr_vars) != 1:
                continue
            (var,) = expr_vars
            if var not in certain_vars:
                continue
            if var not in state.variables():
                continue
            fold = state.fold(var)
            space = state.space_of(var)
            passing = [position for position in fold.iter_positions()
                       if passes(scoped.expr, {var: decode_binding(
                           (space, position), self.store.dictionary)})]
            state.unfold(var, BitVector.from_positions(fold.size, passing))

    def _fan_filters(self, scoped_filters: list[_ScopedFilter], gosn: GoSN,
                     plan: GroupPlan,
                     certain_vars: set[Variable]) -> list[FanFilter]:
        fans: list[FanFilter] = []
        for scoped in scoped_filters:
            expr_vars = expression_variables(scoped.expr)
            if len(expr_vars) == 1 and expr_vars <= certain_vars:
                continue  # fully applied at init: never NULL in a row
            # zero-variable (constant) filters go through FaN too: a
            # constant-false filter must drop/nullify its scope
            groups = frozenset(
                plan.group_of_sn[gosn.sn_of_tp[i]]
                for i in range(scoped.tp_start, scoped.tp_end))
            fans.append(FanFilter(scoped.expr, groups))
        return fans


# ----------------------------------------------------------------------
# module helpers
# ----------------------------------------------------------------------

def _align_rows(rows: list[tuple], branch_vars: tuple[Variable, ...],
                all_variables: tuple[Variable, ...]) -> list[tuple]:
    """Pad/reorder branch rows onto the query-wide variable tuple."""
    if branch_vars == all_variables:
        return rows
    positions = [branch_vars.index(var) if var in branch_vars else None
                 for var in all_variables]
    return [tuple(row[i] if i is not None else NULL for i in positions)
            for row in rows]


def _collect_filters(branch: Pattern) -> list[_ScopedFilter]:
    """Filters with their TP index ranges (GoSN numbering order)."""
    filters: list[_ScopedFilter] = []
    counter = [0]

    def walk(node: Pattern) -> None:
        if isinstance(node, Filter):
            start = counter[0]
            walk(node.pattern)
            filters.append(_ScopedFilter(node.expr, start, counter[0]))
        elif isinstance(node, BGP):
            counter[0] += len(node.patterns)
        elif isinstance(node, (Join, LeftJoin)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Union):  # pragma: no cover - UNF input
            raise UnsupportedQueryError("UNION inside a UNF branch")

    walk(branch)
    return filters


def _node_tp_ranges(branch: Pattern) -> dict[int, tuple[int, int]]:
    """TP index range of every pattern node, keyed by ``id(node)``."""
    ranges: dict[int, tuple[int, int]] = {}
    counter = [0]

    def walk(node: Pattern) -> None:
        start = counter[0]
        if isinstance(node, BGP):
            counter[0] += len(node.patterns)
        elif isinstance(node, Filter):
            walk(node.pattern)
        elif isinstance(node, (Join, LeftJoin, Union)):
            walk(node.left)
            walk(node.right)
        ranges[id(node)] = (start, counter[0])

    walk(branch)
    return ranges


def _validate_supported(patterns: list[TriplePattern],
                        scoped_filters: list[_ScopedFilter]) -> None:
    jvars = join_variables(patterns)
    spaces: dict[Variable, set[str]] = {}
    for tp in patterns:
        if (is_variable(tp.s) and is_variable(tp.p) and is_variable(tp.o)):
            raise UnsupportedQueryError(
                f"all-variable triple pattern not supported: {tp}")
        for position, term in zip("spo", tp):
            if is_variable(term) and term in jvars:
                spaces.setdefault(term, set()).add(position)
    for var, used in spaces.items():
        if "p" in used and used != {"p"}:
            raise UnsupportedQueryError(
                f"join variable ?{var} mixes the predicate position with "
                f"S/O positions; the paper's index supports S-S, S-O and "
                f"O-O joins only")
    # safe-filter validation (§5.2)
    by_range: dict[tuple[int, int], set[Variable]] = {}
    for scoped in scoped_filters:
        scope_vars = by_range.get((scoped.tp_start, scoped.tp_end))
        if scope_vars is None:
            scope_vars = set()
            for tp in patterns[scoped.tp_start:scoped.tp_end]:
                scope_vars |= tp.variables()
            by_range[(scoped.tp_start, scoped.tp_end)] = scope_vars
        if not expression_variables(scoped.expr) <= scope_vars:
            raise UnsupportedQueryError(
                "unsafe FILTER: its variables are not all bound by the "
                "filtered pattern (§5.2 assumes safe filters)")


def _fail_groups_with_absent_ground(states: list[TPState],
                                    gosn: GoSN) -> None:
    """Empty every TP of a slave group containing an absent ground TP.

    A fully ground triple pattern that is not in the data makes its
    whole supernode peer group unsatisfiable; other TPs of the group
    must not contribute bindings (the OPTIONAL block fails as a unit),
    which pruning cannot express because ground TPs carry no variables.
    """
    dead_groups: set[frozenset[int]] = set()
    for state in states:
        if state.ground_present is False:
            dead_groups.add(
                frozenset(gosn.peers_of(gosn.sn_of_tp[state.index])))
    if not dead_groups:
        return
    for state in states:
        group = frozenset(gosn.peers_of(gosn.sn_of_tp[state.index]))
        if group in dead_groups and state.ground_present is None:
            for var in state.variables():
                fold = state.fold(var)
                state.unfold(var, BitVector.empty(fold.size))
                break


def _certain_variables(gosn: GoSN) -> set[Variable]:
    """Variables bound by a TP of an absolute-master peer group.

    Those groups are never nullified and never NULL-extended, so their
    variables are bound in every emitted row — the condition under
    which a single-variable filter may be applied at init instead of
    per-row at FaN time.
    """
    absolute = gosn.absolute_masters()
    certain: set[Variable] = set()
    for index, tp in enumerate(gosn.patterns):
        if gosn.peers_of(gosn.sn_of_tp[index]) & absolute:
            certain |= tp.variables()
    return certain


def _has_disconnected_slave_group(gosn: GoSN) -> bool:
    """A slave peer group whose TPs do not form one variable-sharing
    component.

    Such a group's TPs touch each other only through their masters'
    bindings, so pruning cannot enforce the all-or-nothing OPTIONAL
    semantics (Lemma 3.3 relies on GoJ edges *within* the group): one
    TP can fail for a master row while the others matched, and only
    nullification turns that partial match into a failed block.
    """
    absolute = gosn.absolute_masters()
    for group in gosn.peer_groups():
        if group & absolute:
            continue
        with_vars = [
            index
            for sn in group for index in gosn.supernodes[sn].tp_indexes
            if gosn.patterns[index].variables()]
        if len(with_vars) <= 1:
            continue
        vars_of = {index: gosn.patterns[index].variables()
                   for index in with_vars}
        seen = {with_vars[0]}
        frontier = [with_vars[0]]
        while frontier:
            node = frontier.pop()
            for other in with_vars:
                if other not in seen and vars_of[node] & vars_of[other]:
                    seen.add(other)
                    frontier.append(other)
        if len(seen) < len(with_vars):
            return True
    return False


def _connected_ignoring_ground(got: GoT,
                               patterns: list[TriplePattern]) -> bool:
    """GoT connectivity over TPs that have variables."""
    with_vars = [i for i, tp in enumerate(patterns) if tp.variables()]
    if len(with_vars) <= 1:
        return True
    seen = {with_vars[0]}
    frontier = [with_vars[0]]
    while frontier:
        node = frontier.pop()
        for neighbor in got.adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen >= set(with_vars)


def _transform_nwd(gosn: GoSN, branch: Pattern, violations) -> GoSN:
    """Appendix B: convert uni edges to bi along violation paths.

    For every violating sub-pattern ``Pk ⟕ Pl`` and variable ``?j``, a
    violation pair is formed between each supernode of ``Pl``
    containing ``?j`` and each supernode *outside* the sub-pattern
    containing ``?j``; all unidirectional edges on the unique undirected
    paths between the pairs become bidirectional.
    """
    ranges = _node_tp_ranges(branch)
    total = len(gosn.patterns)
    converted: set[tuple[int, int]] = set()
    for violation in violations:
        subtree_range = ranges.get(id(violation.left_join))
        slave_range = ranges.get(id(violation.left_join.right))
        if subtree_range is None or slave_range is None:
            continue
        slave_sns = _sns_with_variable(gosn, slave_range,
                                       violation.variable)
        inside = set(range(*subtree_range))
        outside_sns = {
            gosn.sn_of_tp[index] for index in range(total)
            if index not in inside
            and violation.variable in gosn.patterns[index].variables()}
        for sn_a in slave_sns:
            for sn_b in outside_sns:
                path = gosn.undirected_path(sn_a, sn_b)
                for left, right in zip(path, path[1:]):
                    if (left, right) in gosn.uni_edges:
                        converted.add((left, right))
                    if (right, left) in gosn.uni_edges:
                        converted.add((right, left))
    if not converted:
        return gosn
    return gosn.with_bidirectional(converted)


def _sns_with_variable(gosn: GoSN, tp_range: tuple[int, int],
                       variable: Variable) -> set[int]:
    found: set[int] = set()
    for index in range(*tp_range):
        if variable in gosn.patterns[index].variables():
            found.add(gosn.sn_of_tp[index])
    return found


def _sort_states(states: list[TPState], gosn: GoSN,
                 ranker: SelectivityRanker) -> list[TPState]:
    """The stps order of §5.1.

    Absolute-master TPs first in ascending post-prune count, then the
    remaining TPs grouped by supernode peer group in master-first
    topological order, each group's TPs in ascending count.
    """
    from .jvar_order import order_slave_supernodes

    absolute = gosn.absolute_masters()
    sn_rank: dict[int, int] = {}
    for sn in absolute:
        sn_rank[sn] = 0
    for position, sn in enumerate(order_slave_supernodes(gosn, ranker),
                                  start=1):
        sn_rank[sn] = position
    # lift SN ranks to peer-group ranks so peers stay adjacent
    group_rank: dict[int, int] = {}
    for sn, rank in sn_rank.items():
        for peer in gosn.peers_of(sn):
            group_rank[peer] = min(group_rank.get(peer, rank), rank)

    def key(state: TPState) -> tuple[int, int, int]:
        sn = gosn.sn_of_tp[state.index]
        return (group_rank.get(sn, len(sn_rank)), state.count(),
                state.index)

    return sorted(states, key=key)
