"""Non-well-designed query support (Appendix B) — public entry points.

The transformation itself lives in :mod:`repro.plan.passes` (it runs
as the compiler pipeline's ``wd-analysis`` pass); this module
re-exports it for direct use and testing: given a pattern and its
GoSN, every unidirectional edge on the unique undirected path between
a violation pair of supernodes is turned into a bidirectional edge —
i.e. the offending left-outer joins become inner joins under the
null-intolerant join assumption.
"""

from __future__ import annotations

from ..plan.passes import reference_rewrite, transform_nwd
from ..sparql.ast import Pattern
from ..sparql.wd import find_violations
from .gosn import GoSN


def transform_non_well_designed(gosn: GoSN, pattern: Pattern) -> GoSN:
    """Apply the Appendix B GoSN transformation.

    Returns the same GoSN instance when the pattern is well-designed.
    """
    violations = find_violations(pattern)
    if not violations:
        return gosn
    return transform_nwd(gosn, pattern, violations)


def rewrite_to_reference(branch: Pattern) -> Pattern:
    """The Appendix B semantics of a union-free branch, as algebra.

    Mirrors the engine's GoSN transformation on the pattern tree
    itself: every :class:`~repro.sparql.ast.LeftJoin` whose
    unidirectional edge the transformation converts becomes an inner
    :class:`~repro.sparql.ast.Join`.  The returned pattern can be
    evaluated by any bottom-up engine (e.g. the naive oracle), which
    is how the differential fuzz harness obtains a reference answer
    for non-well-designed queries — the class where pure-SPARQL and
    LBR answers legitimately diverge (Appendix C).

    Well-designed branches are returned unchanged.
    """
    violations = find_violations(branch)
    if not violations:
        return branch
    gosn = GoSN.from_pattern(branch)
    transformed = transform_nwd(gosn, branch, violations)
    converted = frozenset(gosn.uni_edges - transformed.uni_edges)
    if not converted:
        return branch
    return reference_rewrite(branch, converted)
