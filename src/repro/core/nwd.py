"""Non-well-designed query support (Appendix B) — public entry points.

The transformation itself lives in :mod:`repro.core.engine` (it runs as
part of branch execution); this module re-exports it for direct use and
testing: given a pattern and its GoSN, every unidirectional edge on the
unique undirected path between a violation pair of supernodes is turned
into a bidirectional edge — i.e. the offending left-outer joins become
inner joins under the null-intolerant join assumption.
"""

from __future__ import annotations

from ..exceptions import UnsupportedQueryError
from ..sparql.ast import BGP, Filter, Join, LeftJoin, Pattern
from ..sparql.wd import find_violations
from .engine import _transform_nwd
from .gosn import GoSN


def transform_non_well_designed(gosn: GoSN, pattern: Pattern) -> GoSN:
    """Apply the Appendix B GoSN transformation.

    Returns the same GoSN instance when the pattern is well-designed.
    """
    violations = find_violations(pattern)
    if not violations:
        return gosn
    return _transform_nwd(gosn, pattern, violations)


def rewrite_to_reference(branch: Pattern) -> Pattern:
    """The Appendix B semantics of a union-free branch, as algebra.

    Mirrors the engine's GoSN transformation on the pattern tree
    itself: every :class:`LeftJoin` whose unidirectional edge the
    transformation converts becomes an inner :class:`Join`.  The
    returned pattern can be evaluated by any bottom-up engine (e.g.
    the naive oracle), which is how the differential fuzz harness
    obtains a reference answer for non-well-designed queries — the
    class where pure-SPARQL and LBR answers legitimately diverge
    (Appendix C).

    Well-designed branches are returned unchanged.
    """
    violations = find_violations(branch)
    if not violations:
        return branch
    gosn = GoSN.from_pattern(branch)
    transformed = _transform_nwd(gosn, branch, violations)
    converted = gosn.uni_edges - transformed.uni_edges
    if not converted:
        return branch

    # Parallel walk mirroring GoSN.from_pattern: supernodes are
    # numbered in the same build order, so each LeftJoin maps onto its
    # (leftmost-left, leftmost-right) unidirectional edge.
    counter = [0]

    def rebuild(node: Pattern) -> tuple[Pattern, int]:
        if isinstance(node, Filter):
            inner, leftmost = rebuild(node.pattern)
            return Filter(node.expr, inner), leftmost
        if isinstance(node, BGP):
            index = counter[0]
            counter[0] += 1
            return node, index
        if isinstance(node, LeftJoin):
            left, left_sn = rebuild(node.left)
            right, right_sn = rebuild(node.right)
            if (left_sn, right_sn) in converted:
                return Join(left, right), left_sn
            return LeftJoin(left, right), left_sn
        if isinstance(node, Join):
            left, left_sn = rebuild(node.left)
            right, right_sn = rebuild(node.right)
            return Join(left, right), left_sn
        raise UnsupportedQueryError(
            f"reference rewrite expects a union-free branch, found "
            f"{type(node).__name__}")

    rewritten, _ = rebuild(branch)
    return rewritten
