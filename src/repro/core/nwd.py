"""Non-well-designed query support (Appendix B) — public entry points.

The transformation itself lives in :mod:`repro.core.engine` (it runs as
part of branch execution); this module re-exports it for direct use and
testing: given a pattern and its GoSN, every unidirectional edge on the
unique undirected path between a violation pair of supernodes is turned
into a bidirectional edge — i.e. the offending left-outer joins become
inner joins under the null-intolerant join assumption.
"""

from __future__ import annotations

from ..sparql.ast import Pattern
from ..sparql.wd import find_violations
from .engine import _transform_nwd
from .gosn import GoSN


def transform_non_well_designed(gosn: GoSN, pattern: Pattern) -> GoSN:
    """Apply the Appendix B GoSN transformation.

    Returns the same GoSN instance when the pattern is well-designed.
    """
    violations = find_violations(pattern)
    if not violations:
        return gosn
    return _transform_nwd(gosn, pattern, violations)
