"""Nullification and best-match (minimum union) operators — §3.1/§5.

*Nullification* makes variable bindings of a reordered evaluation
consistent with the original join order: an OPTIONAL block matches as a
whole, so when only some triple patterns of a slave supernode group
matched, the whole group's bindings are nullified, cascading into its
slave subtree.  For acyclic well-designed queries the pruning passes
make this a no-op (Lemma 3.3); it does real work only for cyclic
queries whose slaves carry more than one join variable (Lemma 3.4) and
for the FaN (filter-and-nullification) extension of §5.2.

*Best-match* removes subsumed rows: ``r1 ⊏ r2`` when every non-NULL
binding of ``r1`` agrees with ``r2`` and ``r2`` has strictly more
non-NULL bindings.  *Minimum union* additionally removes exact
duplicates, which the UNION rewrite rule 3 can introduce.
"""

from __future__ import annotations

from typing import Sequence

from ..rdf.terms import NULL
from .gosn import GoSN
from .results import VarMap


class GroupPlan:
    """Static supernode peer-group structure used by nullification.

    Precomputes, once per query, the peer groups of the GoSN, their
    master→slave ordering, and the TP slot positions of each group.
    """

    def __init__(self, gosn: GoSN, states: Sequence) -> None:
        self.gosn = gosn
        groups = gosn.peer_groups()
        self.groups: list[frozenset[int]] = [frozenset(g) for g in groups]
        self.group_of_sn: dict[int, int] = {}
        for gi, group in enumerate(self.groups):
            for sn in group:
                self.group_of_sn[sn] = gi
        # group -> slot positions of its TPs (positions in stps order)
        self.slots_of_group: list[list[int]] = [[] for _ in self.groups]
        for position, state in enumerate(states):
            sn = gosn.sn_of_tp[state.index]
            self.slots_of_group[self.group_of_sn[sn]].append(position)
        # child groups: reachable as direct slaves of any member SN
        self.children: list[set[int]] = [set() for _ in self.groups]
        for gi, group in enumerate(self.groups):
            for sn in group:
                for slave in gosn.slaves_of(sn):
                    child = self.group_of_sn[slave]
                    if child != gi:
                        self.children[gi].add(child)
        # groups in master-first topological order
        self.topo_order: list[int] = self._topological_order()
        # ancestors[g] = every group that (transitively) masters g
        self.ancestors: list[set[int]] = [set() for _ in self.groups]
        for gi in self.topo_order:
            for child in self.children[gi]:
                self.ancestors[child].add(gi)
                self.ancestors[child] |= self.ancestors[gi]
        # absolute-master groups
        absolute = gosn.absolute_masters()
        self.absolute_groups: set[int] = {self.group_of_sn[sn]
                                          for sn in absolute}

    def _topological_order(self) -> list[int]:
        indegree = {gi: 0 for gi in range(len(self.groups))}
        for gi, kids in enumerate(self.children):
            for child in kids:
                indegree[child] += 1
        ready = sorted(gi for gi, deg in indegree.items() if deg == 0)
        order: list[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for child in sorted(self.children[current]):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        # cycles cannot occur (mastership is a partial order), but stay
        # total anyway
        for gi in range(len(self.groups)):
            if gi not in order:
                order.append(gi)
        return order

    def group_of_position(self, varmap: VarMap, position: int) -> int:
        sn = self.gosn.sn_of_tp[varmap.states[position].index]
        return self.group_of_sn[sn]


def nullify(varmap: VarMap, plan: GroupPlan,
            forced_failures: set[int] | None = None) -> bool:
    """Apply nullification to the current vmap (line 3 of Alg 5.4).

    A group *fails* when any of its TP slots was NULL-extended, or when
    a master group it depends on failed, or when *forced_failures*
    (from FaN filter evaluation) names it.  Every slot of a failed
    group is NULL-extended; returns True when anything changed.
    """
    failed_groups: set[int] = set(forced_failures or ())
    changed = False
    for gi in plan.topo_order:
        group_failed = (gi in failed_groups
                        or bool(plan.ancestors[gi] & failed_groups))
        if not group_failed:
            for position in plan.slots_of_group[gi]:
                if position in varmap.visited and varmap.failed[position]:
                    group_failed = True
                    break
        if not group_failed:
            continue
        failed_groups.add(gi)
        for position in plan.slots_of_group[gi]:
            if position in varmap.visited and not varmap.failed[position]:
                varmap.bind_failed(position)
                changed = True
    return changed


def best_match(rows: list[tuple]) -> list[tuple]:
    """Drop rows subsumed by another row (keeps duplicates).

    ``r1`` is dropped when some kept row agrees with every non-NULL
    binding of ``r1`` and has strictly more non-NULL bindings.
    """
    return _minimum_union(rows, drop_duplicates=False)


def minimum_union(rows: list[tuple]) -> list[tuple]:
    """Best-match plus duplicate removal (UNION rewrite rule 3 cleanup)."""
    return _minimum_union(rows, drop_duplicates=True)


def _minimum_union(rows: list[tuple], drop_duplicates: bool) -> list[tuple]:
    if not rows:
        return []
    # Examine rows with many non-NULLs first: a row can only be subsumed
    # by a row with strictly more non-NULL bindings.
    order = sorted(range(len(rows)),
                   key=lambda i: -sum(1 for v in rows[i] if v is not NULL))
    width = len(rows[0])
    kept: list[int] = []
    kept_rows: set[tuple] = set()
    # (column, value) -> kept row indexes having that binding
    index: dict[tuple[int, object], set[int]] = {}
    nonnull_count: dict[int, int] = {}
    output_flags = [False] * len(rows)

    for i in order:
        row = rows[i]
        bound = [(col, value) for col, value in enumerate(row)
                 if value is not NULL]
        if drop_duplicates and row in kept_rows:
            continue
        subsumed = False
        if bound:
            candidates: set[int] | None = None
            for key in bound:
                posting = index.get(key)
                if posting is None:
                    candidates = set()
                    break
                candidates = (set(posting) if candidates is None
                              else candidates & posting)
                if not candidates:
                    break
            if candidates:
                subsumed = any(nonnull_count[c] > len(bound)
                               for c in candidates)
        else:
            subsumed = any(nonnull_count[k] > 0 for k in kept)
        if subsumed:
            continue
        kept.append(i)
        kept_rows.add(row)
        nonnull_count[i] = len(bound)
        for key in bound:
            index.setdefault(key, set()).add(i)
        output_flags[i] = True

    return [rows[i] for i in range(len(rows)) if output_flags[i]]
