"""Per-triple-pattern state: loaded BitMat, folds, and enumeration.

``init()`` of Algorithm 5.1 loads, for every TP of the query, the BitMat
that contains exactly the triples matching it (§5):

* two fixed positions → a single row of the P-S / P-O BitMat, held as a
  compressed :class:`~repro.bitmat.bitvec.BitVector` over the remaining
  dimension;
* ``(?a :p ?b)`` → the S-O or O-S BitMat of ``:p``; when both variables
  are join variables the one occurring first in ``orderbu`` becomes the
  row dimension;
* a variable predicate with one fixed position → the full P-S or P-O
  BitMat of that entity.

Variable *bindings* are `(space, id)` pairs where space is ``'s'``,
``'o'`` or ``'p'``; crossing between the subject and object spaces is
valid only inside the shared ``V_so`` region (Appendix D), which
:func:`translate_id` enforces.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..bitmat.bitmat import BitMat
from ..bitmat.bitvec import BitVector
from ..bitmat.store import BitMatStore
from ..exceptions import UnsupportedQueryError
from ..rdf.terms import Variable, is_variable
from ..sparql.ast import TriplePattern

#: A variable binding: which id space it lives in, and the id.
Binding = tuple[str, int]


def translate_id(binding: Binding, target_space: str,
                 num_shared: int) -> int | None:
    """Reinterpret a binding in *target_space*, or None when impossible.

    Subject and object ids agree exactly on ``1..num_shared`` (the
    ``V_so`` mapping); predicate ids never cross into S/O.
    """
    space, value = binding
    if space == target_space:
        return value
    if space in ("s", "o") and target_space in ("s", "o"):
        return value if value <= num_shared else None
    return None


class TPState:
    """The compressed triples matching one TP, with fold/unfold by var."""

    def __init__(self, index: int, pattern: TriplePattern,
                 store: BitMatStore) -> None:
        self.index = index
        self.pattern = pattern
        self.store = store
        self.num_shared = store.num_shared
        #: 2-var representation
        self.matrix: BitMat | None = None
        self.row_var: Variable | None = None
        self.col_var: Variable | None = None
        self.row_space: str = ""
        self.col_space: str = ""
        #: 1-var representation
        self.vector: BitVector | None = None
        self.vec_var: Variable | None = None
        self.vec_space: str = ""
        #: 0-var representation
        self.ground_present: bool | None = None
        self._transpose: BitMat | None = None

    # ------------------------------------------------------------------
    # loading (init of Alg 5.1)
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, index: int, pattern: TriplePattern, store: BitMatStore,
             row_first: Mapping[Variable, int] | None = None) -> "TPState":
        """Load the BitMat for *pattern*.

        *row_first* maps each jvar to its first position in ``orderbu``;
        for a two-jvar TP the earlier one becomes the row dimension.
        """
        state = cls(index, pattern, store)
        s, p, o = pattern
        s_var, p_var, o_var = (is_variable(s), is_variable(p),
                               is_variable(o))

        if p_var and (s_var and o_var):
            raise UnsupportedQueryError(
                f"all-variable triple pattern not supported: {pattern}")

        sid = None if s_var else store.encode_term(s, "s")
        pid = None if p_var else store.encode_term(p, "p")
        oid = None if o_var else store.encode_term(o, "o")

        if not s_var and not p_var and not o_var:
            state.ground_present = (sid is not None and pid is not None
                                    and oid is not None
                                    and store.has_triple(sid, pid, oid))
            return state

        missing_ground = ((not s_var and sid is None)
                          or (not p_var and pid is None)
                          or (not o_var and oid is None))

        if not p_var and s_var and o_var:
            if s == o:  # same variable on S and O: the diagonal
                state._load_diagonal(pid, s, missing_ground)
                return state
            state._load_so(pid, s, o, row_first or {}, missing_ground)
            return state
        if not p_var and s_var:  # (?v :p :o) -> P-S row
            vec = (BitVector.empty(store.num_subjects + 1) if missing_ground
                   else store.load_ps_row(pid, oid))
            state._set_vector(s, "s", vec)
            return state
        if not p_var and o_var:  # (:s :p ?v) -> P-O row
            vec = (BitVector.empty(store.num_objects + 1) if missing_ground
                   else store.load_po_row(pid, sid))
            state._set_vector(o, "o", vec)
            return state
        # variable predicate with exactly one other variable
        if s_var:  # (?v ?p :o) -> P-S BitMat of :o
            matrix = (BitMat(store.num_predicates + 1,
                             store.num_subjects + 1)
                      if missing_ground else store.load_ps(oid))
            state._set_matrix(matrix, p, "p", s, "s")
            return state
        if o_var:  # (:s ?p ?v) -> P-O BitMat of :s
            matrix = (BitMat(store.num_predicates + 1,
                             store.num_objects + 1)
                      if missing_ground else store.load_po(sid))
            state._set_matrix(matrix, p, "p", o, "o")
            return state
        # (:s ?p :o) -> predicates linking the two entities
        positions = [] if missing_ground else [
            candidate for candidate in range(1, store.num_predicates + 1)
            if store.has_triple(sid, candidate, oid)]
        state._set_vector(p, "p", BitVector.from_positions(
            store.num_predicates + 1, positions))
        return state

    def _load_so(self, pid: int, s_var: Variable, o_var: Variable,
                 row_first: Mapping[Variable, int],
                 missing_ground: bool) -> None:
        s_rank = row_first.get(s_var)
        o_rank = row_first.get(o_var)
        if s_rank is not None and (o_rank is None or s_rank <= o_rank):
            subject_rows = True
        elif o_rank is not None:
            subject_rows = False
        else:
            subject_rows = True
        num_s = self.store.num_subjects + 1
        num_o = self.store.num_objects + 1
        if missing_ground:
            matrix = (BitMat(num_s, num_o) if subject_rows
                      else BitMat(num_o, num_s))
        elif subject_rows:
            matrix = self.store.load_so(pid)
        else:
            matrix = self.store.load_os(pid)
        if subject_rows:
            self._set_matrix(matrix, s_var, "s", o_var, "o")
        else:
            self._set_matrix(matrix, o_var, "o", s_var, "s")

    def _load_diagonal(self, pid: int, var: Variable,
                       missing_ground: bool) -> None:
        width = self.store.num_shared + 1
        if missing_ground:
            self._set_vector(var, "s", BitVector.empty(width))
            return
        diagonal = self.store.diagonal_positions(pid)
        self._set_vector(var, "s",
                         BitVector.from_positions(width, diagonal))

    def _set_matrix(self, matrix: BitMat, row_var: Variable, row_space: str,
                    col_var: Variable, col_space: str) -> None:
        self.matrix = matrix
        self.row_var, self.row_space = row_var, row_space
        self.col_var, self.col_space = col_var, col_space

    def _set_vector(self, var: Variable, space: str,
                    vector: BitVector) -> None:
        self.vector = vector
        self.vec_var, self.vec_space = var, space

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def variables(self) -> list[Variable]:
        """Distinct variables of this TP."""
        if self.matrix is not None:
            return [self.row_var, self.col_var]
        if self.vector is not None:
            return [self.vec_var]
        return []

    def space_of(self, var: Variable) -> str:
        """The id space ('s'/'o'/'p') this TP binds *var* in."""
        if self.matrix is not None:
            if var == self.row_var:
                return self.row_space
            if var == self.col_var:
                return self.col_space
        elif self.vector is not None and var == self.vec_var:
            return self.vec_space
        raise KeyError(f"?{var} not in {self.pattern}")

    def count(self) -> int:
        """Triples currently associated with this TP."""
        if self.matrix is not None:
            return self.matrix.count()
        if self.vector is not None:
            return self.vector.count()
        return int(bool(self.ground_present))

    def is_empty(self) -> bool:
        if self.matrix is not None:
            return not self.matrix
        if self.vector is not None:
            return not self.vector
        return not self.ground_present

    # ------------------------------------------------------------------
    # fold / unfold by variable
    # ------------------------------------------------------------------

    def fold(self, var: Variable) -> BitVector:
        """Projection π_var of the TP's triples (Alg 5.2/5.3 kernel)."""
        if self.matrix is not None:
            return self.matrix.fold("row" if var == self.row_var else "col")
        if self.vector is not None and var == self.vec_var:
            return self.vector
        raise KeyError(f"?{var} not in {self.pattern}")

    def unfold(self, var: Variable, mask: BitVector) -> bool:
        """Drop triples whose *var* binding is cleared in *mask*.

        Returns True when triples were actually dropped.  The cached
        transpose is maintained *incrementally*: masking the rows of the
        matrix masks the columns of its transpose (and vice versa), so a
        warm transpose survives pruning instead of being rebuilt from
        scratch on the next column-constrained enumeration.
        """
        if self.matrix is not None:
            dim = "row" if var == self.row_var else "col"
            updated = self.matrix.unfold(mask, dim)
            if updated is self.matrix:
                return False
            if self._transpose is not None:
                self._transpose = self._transpose.unfold(
                    mask, "col" if dim == "row" else "row")
            self.matrix = updated
            return True
        if self.vector is not None and var == self.vec_var:
            masked = self.vector.and_(mask)
            if masked.count() == self.vector.count():
                return False
            self.vector = masked
            return True
        raise KeyError(f"?{var} not in {self.pattern}")

    def transpose(self) -> BitMat:
        """The matrix with row/col swapped, built lazily and kept warm
        across pruning by the incremental maintenance in :meth:`unfold`."""
        if self._transpose is None:
            self._transpose = self.matrix.transpose()
        return self._transpose

    # ------------------------------------------------------------------
    # enumeration for the multi-way join
    # ------------------------------------------------------------------

    def enumerate(self, constraints: Mapping[Variable, Binding],
                  ) -> Iterator[dict[Variable, Binding]]:
        """Yield one binding dict per matching triple.

        *constraints* carries the effective (non-NULL) bindings of this
        TP's variables gathered from already-visited TPs; ids are
        translated into this TP's spaces, and an untranslatable binding
        means no triple can match.
        """
        if self.vector is not None:
            yield from self._enumerate_vector(constraints)
            return
        if self.matrix is not None:
            yield from self._enumerate_matrix(constraints)
            return
        if self.ground_present:
            yield {}

    def _enumerate_vector(self, constraints: Mapping[Variable, Binding],
                          ) -> Iterator[dict[Variable, Binding]]:
        var, space = self.vec_var, self.vec_space
        bound = constraints.get(var)
        if bound is not None:
            value = translate_id(bound, space, self.num_shared)
            if value is not None and value in self.vector:
                yield {var: (space, value)}
            return
        for value in self.vector.iter_positions():
            yield {var: (space, value)}

    def _enumerate_matrix(self, constraints: Mapping[Variable, Binding],
                          ) -> Iterator[dict[Variable, Binding]]:
        row_bound = constraints.get(self.row_var)
        col_bound = constraints.get(self.col_var)
        row_id = (translate_id(row_bound, self.row_space, self.num_shared)
                  if row_bound is not None else None)
        col_id = (translate_id(col_bound, self.col_space, self.num_shared)
                  if col_bound is not None else None)
        if row_bound is not None and row_id is None:
            return
        if col_bound is not None and col_id is None:
            return

        if row_id is not None and col_id is not None:
            row = self.matrix.get_row(row_id)
            if row is not None and col_id in row:
                yield {self.row_var: (self.row_space, row_id),
                       self.col_var: (self.col_space, col_id)}
            return
        if row_id is not None:
            row = self.matrix.get_row(row_id)
            if row is None:
                return
            for col in row.iter_positions():
                yield {self.row_var: (self.row_space, row_id),
                       self.col_var: (self.col_space, col)}
            return
        if col_id is not None:
            column = self.transpose().get_row(col_id)
            if column is None:
                return
            for row in column.iter_positions():
                yield {self.row_var: (self.row_space, row),
                       self.col_var: (self.col_space, col_id)}
            return
        for row, vec in self.matrix.iter_rows():
            for col in vec.iter_positions():
                yield {self.row_var: (self.row_space, row),
                       self.col_var: (self.col_space, col)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TPState({self.pattern!r}, triples={self.count()})"
