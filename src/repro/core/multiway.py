"""Multi-way pipelined join — Algorithm 5.4, compiled form.

All per-TP BitMats are joined in one pipeline: the recursion picks the
first unvisited TP (in the master-first sort order ``stps``) with at
least one variable already mapped, enumerates its matching triples,
binds each in a shared slot array, and recurses.  No pairwise
intermediate results or hash tables are built — the only working memory
is the slot array itself.

The *visit order* and the per-depth binding sources depend only on
which TPs are visited — never on binding values — so the recursion is
compiled once per join into a chain of per-depth step closures:

* each (TP, variable) pair owns one cell of a preallocated flat slot
  array that holds a **raw id** (no per-triple dict allocation);
* each depth becomes one closure specialized for its TP shape (ground,
  vector, matrix) and its constraint pattern (which of the row/col
  variables arrive bound from earlier depths), calling the next depth's
  closure directly;
* the cross-space ``V_so`` translation (Appendix D) is reduced at
  compile time to *same-space*, *shared-region check*, or
  *never-matches*;
* candidate lists per enumerated row/column are memoized for the
  duration of the join, and result rows are emitted **encoded** (raw
  ids and NULLs) for the engine to batch-decode after minimum-union.

When a TP matches nothing under the current bindings the branch rolls
back if the TP sits in an absolute master supernode (inner joins cannot
fail partially) and NULL-extends otherwise (the OPTIONAL block simply
does not match).  At a full assignment, nullification and the
filter-and-nullification (FaN) routine of §5.2 run when required, and
one encoded result row is emitted.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Sequence

from ..exceptions import BudgetExceededError
from ..rdf.terms import NULL, Variable
from ..sparql.expressions import passes
from .gosn import GoSN
from .nullification import GroupPlan, nullify
from .results import VarMap
from .tp import TPState


class FanFilter:
    """A FILTER applied at result generation (FaN, §5.2).

    *scope_groups* are the supernode peer groups the filter's pattern
    covers; when evaluation fails, the row is dropped if the scope
    touches an absolute master group, otherwise the scope groups are
    nullified (the OPTIONAL block does not match under this filter).
    """

    def __init__(self, expr: object, scope_groups: frozenset[int]) -> None:
        self.expr = expr
        self.scope_groups = scope_groups


class MultiWayJoin:
    """One pipelined execution over sorted TP states."""

    def __init__(self, states: Sequence[TPState], gosn: GoSN,
                 plan: GroupPlan, nul_required: bool,
                 fan_filters: Sequence[FanFilter],
                 dictionary, emit: Callable[[tuple], None],
                 max_output_rows: int | None = None,
                 emit_many: Callable[[list], None] | None = None) -> None:
        self.states = list(states)
        self.gosn = gosn
        self.plan = plan
        self.nul_required = nul_required
        # *Nullifying* fans (scope entirely inside OPTIONAL blocks)
        # evaluate inline during generation, deepest scope first (the
        # order is fixed per plan, so it is sorted once here, not per
        # row).  *Dropping* fans — scope touching an absolute master
        # group, i.e. top-level filters — must NOT run inline: SPARQL
        # applies them to the sub-pattern's restored solution set, so
        # the engine applies them after best-match (a nullified
        # partial match would otherwise survive a filter that drops
        # the fuller row subsuming it).
        def drops(fan: FanFilter) -> bool:
            # an empty scope (filter over a TP-less pattern) can only
            # be constant; treat it as row-dropping
            return (not fan.scope_groups
                    or bool(fan.scope_groups & plan.absolute_groups))

        self.fan_filters = sorted(
            (fan for fan in fan_filters if not drops(fan)),
            key=self._fan_depth, reverse=True)
        self.dropping_fans = [fan for fan in fan_filters if drops(fan)]
        self.dictionary = dictionary
        self.emit = emit
        self.emit_many = emit_many
        self.max_output_rows = max_output_rows
        self.varmap = VarMap(self.states)
        self.fan_nullified = False
        #: positions of TPs living in absolute master supernodes
        self.absolute_positions = {
            position for position, state in enumerate(self.states)
            if gosn.tp_in_absolute_master(state.index)}
        self.output_variables: list[Variable] = self.varmap.variables()
        # The visit order and per-depth binding sources depend only on
        # *which* TPs are visited — never on binding values — so they
        # are computed once instead of at every recursion node.
        self.visit_order: list[int] = []
        #: per depth: (variable, source slot or None) for the chosen TP
        self.depth_sources: list[list[tuple[Variable, int | None]]] = []
        #: per variable: the first slot in stps order that binds it
        self.output_sources: list[int] = []
        self._plan_visits()
        self._compile()

    def _plan_visits(self) -> None:
        simulated: set[int] = set()
        for _ in range(len(self.states)):
            self.varmap.visited = simulated
            position = self._choose_next()
            sources: list[tuple[Variable, int | None]] = []
            for var in self.states[position].variables():
                source = None
                for slot in self.varmap.var_slots[var]:
                    if slot in simulated:
                        source = slot
                        break
                sources.append((var, source))
            self.visit_order.append(position)
            self.depth_sources.append(sources)
            simulated.add(position)
        self.varmap.visited = set()
        self.output_sources = [self.varmap.var_slots[var][0]
                               for var in self.output_variables]

    def _choose_next(self) -> int:
        """First eligible unvisited TP (stps order) with a mapped variable.

        A TP is *eligible* only when every TP mastering it has been
        visited: bindings are "generated by masters over their slaves",
        and a slave visited before its master would — on failure —
        NULL-extend variables the master still has to match (its
        failure must never constrain the master).  Mastership is a
        partial order, so a minimal unvisited TP always exists.
        """
        varmap = self.varmap
        states = self.states
        candidates: list[int] = []
        for position in range(len(states)):
            if position in varmap.visited:
                continue
            index = states[position].index
            if any(other not in varmap.visited
                   and self.gosn.tp_is_master(states[other].index, index)
                   for other in range(len(states))):
                continue
            candidates.append(position)
        assert candidates, "recursion invariant violated"
        if not varmap.visited:
            return candidates[0]
        for position in candidates:
            _, any_mapped, _ = varmap.constraints_for(position)
            if any_mapped:
                return position
            # TPs without variables join unconditionally
            if not states[position].variables():
                return position
        return candidates[0]

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------

    def _compile(self) -> None:
        """Lower the visit plan into a chain of per-depth closures."""
        states = self.states
        self._num_shared = states[0].num_shared if states else 0
        # flat slot layout: one cell per (position, variable) pair
        self._slot_base: list[int] = []
        cells = 0
        var_index: list[dict[Variable, int]] = []
        for state in states:
            self._slot_base.append(cells)
            indexes = {var: i for i, var in enumerate(state.variables())}
            var_index.append(indexes)
            cells += len(indexes)
        self._values: list[int] = [0] * cells
        self._failed: list[bool] = self.varmap.failed

        # output: one (source position, flat cell, id space) per variable
        self._out_spec: list[tuple[int, int]] = []
        self.output_spaces: list[str] = []
        for var, source in zip(self.output_variables, self.output_sources):
            flat = self._slot_base[source] + var_index[source][var]
            self._out_spec.append((source, flat))
            self.output_spaces.append(states[source].space_of(var))
        #: whether any output column can carry NULL: a column sourced
        #: from a non-absolute (slave) TP may be NULL-extended.  FaN
        #: nullification is tracked separately via ``fan_nullified``.
        self.may_emit_nulls = any(
            source not in self.absolute_positions
            for source, _ in self._out_spec)

        use_output = self.nul_required or bool(self.fan_filters)
        step = self._output if use_output else self._make_emit_step()
        emit_many = self.emit_many
        if emit_many is None:
            emit = self.emit

            def emit_loop(batch: list) -> None:
                for row in batch:
                    emit(row)
            emit_many = emit_loop
        if self.max_output_rows is not None:
            # opt-in resource limit (differential-harness guard); the
            # wrappers only exist when a budget was requested, so the
            # default hot path pays nothing
            inner = step
            inner_many = emit_many
            budget = self.max_output_rows
            counter = [0]

            def budgeted_step() -> None:
                counter[0] += 1
                if counter[0] > budget:
                    raise BudgetExceededError(
                        f"multi-way join exceeded {budget:,} output rows")
                inner()

            def budgeted_many(batch: list) -> None:
                counter[0] += len(batch)
                if counter[0] > budget:
                    raise BudgetExceededError(
                        f"multi-way join exceeded {budget:,} output rows")
                inner_many(batch)
            step = budgeted_step
            emit_many = budgeted_many
        depths = list(reversed(range(len(self.visit_order))))
        if not use_output and depths:
            # lower the innermost enumeration into a batch kernel: the
            # deepest TP's candidates differ in at most one output
            # column, so the per-candidate closure call collapses into
            # one listcomp per enumerated group feeding the batch sink
            fused = self._make_fused_leaf(depths[0], var_index,
                                          emit_many, step)
            if fused is not None:
                step = fused
                depths = depths[1:]
        for depth in depths:
            step = self._make_step(depth, var_index, step)
        self._entry: Callable[[], None] = step

    def _make_emit_step(self) -> Callable[[], None]:
        """The terminal closure when no nullification/FaN is needed."""
        emit = self.emit
        values = self._values
        failed = self._failed
        out_spec = self._out_spec
        flats = [flat for _, flat in out_spec]
        if not flats:
            def emit_empty() -> None:
                emit(())
            return emit_empty
        if len(flats) == 1:
            single = flats[0]

            def single_getter(vals: list) -> tuple:
                return (vals[single],)

            getter = single_getter
        else:
            getter = itemgetter(*flats)
        # failed[] can only be set for non-absolute positions here
        # (nullification forces the slow `_output` terminal instead)
        fallible_columns: dict[int, list[int]] = {}
        for column, (source, _) in enumerate(out_spec):
            if source not in self.absolute_positions:
                fallible_columns.setdefault(source, []).append(column)
        if not fallible_columns:
            def emit_fast() -> None:
                emit(getter(values))
            return emit_fast
        fallible = sorted(fallible_columns.items())

        def emit_checked() -> None:
            # C-speed scan: almost every emitted row has no failed slot
            if True not in failed:
                emit(getter(values))
                return
            row: list | None = None
            for source, columns in fallible:
                if failed[source]:
                    if row is None:
                        row = list(getter(values))
                    for column in columns:
                        row[column] = NULL
            emit(getter(values) if row is None else tuple(row))
        return emit_checked

    def _make_row_builder(self) -> tuple[Callable[[], tuple], list[int]]:
        """A closure producing the current output row as a tuple.

        Mirrors the emit-step row construction (fast getter, NULLs for
        failed OPTIONAL sources) so the fused leaf kernels can build one
        row template per enumerated group and vary only the leaf's
        column inside the batch listcomp — the NULL state is constant
        for the duration of one leaf enumeration.
        """
        values = self._values
        failed = self._failed
        out_spec = self._out_spec
        flats = [flat for _, flat in out_spec]
        if not flats:
            return (lambda: ()), flats
        if len(flats) == 1:
            single = flats[0]

            def getter(vals: list) -> tuple:
                return (vals[single],)
        else:
            getter = itemgetter(*flats)
        fallible_columns: dict[int, list[int]] = {}
        for column, (source, _) in enumerate(out_spec):
            if source not in self.absolute_positions:
                fallible_columns.setdefault(source, []).append(column)
        if not fallible_columns:
            def build_fast() -> tuple:
                return getter(values)
            return build_fast, flats
        fallible = sorted(fallible_columns.items())

        def build_checked() -> tuple:
            # C-speed scan: almost every emitted row has no failed slot
            if True not in failed:
                return getter(values)
            row: list | None = None
            for source, columns in fallible:
                if failed[source]:
                    if row is None:
                        row = list(getter(values))
                    for column in columns:
                        row[column] = NULL
            return getter(values) if row is None else tuple(row)
        return build_checked, flats

    def _make_fused_leaf(self, depth: int,
                         var_index: list[dict[Variable, int]],
                         emit_many: Callable[[list], None],
                         terminal: Callable[[], None],
                         ) -> Callable[[], None] | None:
        """Fuse the deepest TP's enumeration with batched row emission.

        Scan-shaped leaves (vector scan, row/col-constrained matrix
        scan, full matrix scan) emit their whole candidate list as one
        batch built by a single listcomp over the cached positions
        buffer; the scalar per-candidate closure call disappears.
        Probe shapes (at most one candidate) and degenerate leaves
        return None and keep the scalar pipeline.
        """
        states = self.states
        position = self.visit_order[depth]
        state = states[position]
        base = self._slot_base[position]
        values = self._values
        failed = self._failed
        num_shared = self._num_shared
        absolute = position in self.absolute_positions

        never = False
        constraints: list[tuple[int, int, bool] | None] = []
        for var, source in self.depth_sources[depth]:
            if source is None:
                constraints.append(None)
                continue
            flat = self._slot_base[source] + var_index[source][var]
            src_space = states[source].space_of(var)
            dst_space = state.space_of(var)
            if src_space == dst_space:
                constraints.append((source, flat, False))
            elif src_space in ("s", "o") and dst_space in ("s", "o"):
                constraints.append((source, flat, True))
            else:
                never = True
        if never or (state.matrix is None and state.vector is None):
            return None  # dead-end / null-extend / ground leaf

        build_row, flats = self._make_row_builder()

        if state.vector is not None:
            if constraints[0] is not None:
                return None  # probe: a single candidate
            candidates = state.vector.positions_cached()
            if not candidates:
                return None
            hole = flats.index(base) if base in flats else None
            count = len(candidates)

            def vector_scan_emit() -> None:
                row = build_row()
                if hole is None:
                    emit_many([row] * count)
                else:
                    head = row[:hole]
                    tail = row[hole + 1:]
                    emit_many([head + (value,) + tail
                               for value in candidates])
            return vector_scan_emit

        matrix = state.matrix
        get_row = matrix._rows.get  # dict.get direct: no method frame
        base1 = base + 1
        row_constraint, col_constraint = constraints

        if row_constraint is not None and col_constraint is not None:
            return None  # probe: a single candidate

        if row_constraint is not None:
            r_src, r_flat, r_shared = row_constraint
            hole = flats.index(base1) if base1 in flats else None
            row_lists: dict[int, Sequence[int]] = {}

            def matrix_row_scan_emit() -> None:
                if not failed[r_src]:
                    row_id = values[r_flat]
                    if not r_shared or row_id <= num_shared:
                        cols = row_lists.get(row_id)
                        if cols is None:
                            vec = get_row(row_id)
                            cols = (vec.positions_cached()
                                    if vec is not None else ())
                            row_lists[row_id] = cols
                        if cols:
                            values[base] = row_id
                            row = build_row()
                            if hole is None:
                                emit_many([row] * len(cols))
                            else:
                                head = row[:hole]
                                tail = row[hole + 1:]
                                emit_many([head + (col_id,) + tail
                                           for col_id in cols])
                            return
                if absolute:
                    return
                failed[position] = True
                terminal()
                failed[position] = False
            return matrix_row_scan_emit

        if col_constraint is not None:
            c_src, c_flat, c_shared = col_constraint
            hole = flats.index(base) if base in flats else None
            col_lists: dict[int, Sequence[int]] = {}

            def matrix_col_scan_emit() -> None:
                if not failed[c_src]:
                    col_id = values[c_flat]
                    if not c_shared or col_id <= num_shared:
                        rows = col_lists.get(col_id)
                        if rows is None:
                            column = state.transpose().get_row(col_id)
                            rows = (column.positions_cached()
                                    if column is not None else ())
                            col_lists[col_id] = rows
                        if rows:
                            values[base1] = col_id
                            row = build_row()
                            if hole is None:
                                emit_many([row] * len(rows))
                            else:
                                head = row[:hole]
                                tail = row[hole + 1:]
                                emit_many([head + (row_id,) + tail
                                           for row_id in rows])
                            return
                if absolute:
                    return
                failed[position] = True
                terminal()
                failed[position] = False
            return matrix_col_scan_emit

        hole = flats.index(base1) if base1 in flats else None
        scan_cell: list[list[tuple[int, tuple[int, ...]]]] = []

        def matrix_scan_emit() -> None:
            if not scan_cell:
                scan_cell.append([(row_id, vec.positions_cached())
                                  for row_id, vec in matrix.iter_rows()])
            items = scan_cell[0]
            if items:
                for row_id, cols in items:
                    values[base] = row_id
                    row = build_row()
                    if hole is None:
                        emit_many([row] * len(cols))
                    else:
                        head = row[:hole]
                        tail = row[hole + 1:]
                        emit_many([head + (col_id,) + tail
                                   for col_id in cols])
                return
            if absolute:
                return
            failed[position] = True
            terminal()
            failed[position] = False
        return matrix_scan_emit

    def _make_step(self, depth: int, var_index: list[dict[Variable, int]],
                   next_step: Callable[[], None]) -> Callable[[], None]:
        """One specialized closure for the TP visited at *depth*."""
        states = self.states
        position = self.visit_order[depth]
        state = states[position]
        base = self._slot_base[position]
        values = self._values
        failed = self._failed
        num_shared = self._num_shared
        absolute = position in self.absolute_positions

        # compile each constraint to (source slot, flat cell, shared?);
        # a predicate/entity space mismatch can never match at all
        never = False
        constraints: list[tuple[int, int, bool] | None] = []
        for var, source in self.depth_sources[depth]:
            if source is None:
                constraints.append(None)
                continue
            flat = self._slot_base[source] + var_index[source][var]
            src_space = states[source].space_of(var)
            dst_space = state.space_of(var)
            if src_space == dst_space:
                constraints.append((source, flat, False))
            elif src_space in ("s", "o") and dst_space in ("s", "o"):
                constraints.append((source, flat, True))
            else:
                never = True

        if never or (state.matrix is None and state.vector is None
                     and not state.ground_present):
            if absolute:
                def dead_end() -> None:
                    return
                return dead_end

            def null_extend() -> None:
                failed[position] = True
                next_step()
                failed[position] = False
            return null_extend

        if state.matrix is None and state.vector is None:
            return next_step  # present ground TP: matches unconditionally

        if state.vector is not None:
            return self._make_vector_step(state, constraints[0], base,
                                          position, absolute, next_step)
        return self._make_matrix_step(state, constraints, base, position,
                                      absolute, next_step)

    def _make_vector_step(self, state: TPState,
                          constraint: tuple[int, int, bool] | None,
                          base: int, position: int, absolute: bool,
                          next_step: Callable[[], None],
                          ) -> Callable[[], None]:
        values = self._values
        failed = self._failed
        num_shared = self._num_shared
        vector = state.vector

        if constraint is None:
            candidates = vector.positions_cached()
            if candidates:
                def vector_scan() -> None:
                    for value in candidates:
                        values[base] = value
                        next_step()
                return vector_scan
            if absolute:
                def dead_end() -> None:
                    return
                return dead_end

            def null_extend() -> None:
                failed[position] = True
                next_step()
                failed[position] = False
            return null_extend

        source, flat, shared = constraint
        contains = vector.membership()

        def vector_probe() -> None:
            if not failed[source]:
                value = values[flat]
                if (not shared or value <= num_shared) and contains(value):
                    values[base] = value
                    next_step()
                    return
            if absolute:
                return
            failed[position] = True
            next_step()
            failed[position] = False
        return vector_probe

    def _make_matrix_step(self, state: TPState,
                          constraints: list[tuple[int, int, bool] | None],
                          base: int, position: int, absolute: bool,
                          next_step: Callable[[], None],
                          ) -> Callable[[], None]:
        values = self._values
        failed = self._failed
        num_shared = self._num_shared
        matrix = state.matrix
        get_row = matrix._rows.get  # dict.get direct: no method frame
        row_constraint, col_constraint = constraints
        base1 = base + 1

        if row_constraint is not None and col_constraint is not None:
            r_src, r_flat, r_shared = row_constraint
            c_src, c_flat, c_shared = col_constraint
            # memoized per-row membership callables: repeated probes of
            # the same row hit a pinned frozenset instead of paying the
            # Python-level BitVector.__contains__ dispatch every time
            members: dict[int, Callable[[int], bool]] = {}

            def matrix_probe() -> None:
                if not failed[r_src] and not failed[c_src]:
                    row_id = values[r_flat]
                    col_id = values[c_flat]
                    if ((not r_shared or row_id <= num_shared)
                            and (not c_shared or col_id <= num_shared)):
                        member = members.get(row_id)
                        if member is None:
                            row = get_row(row_id)
                            member = (row.membership() if row is not None
                                      else _absent)
                            members[row_id] = member
                        if member(col_id):
                            values[base] = row_id
                            values[base1] = col_id
                            next_step()
                            return
                if absolute:
                    return
                failed[position] = True
                next_step()
                failed[position] = False
            return matrix_probe

        if row_constraint is not None:
            r_src, r_flat, r_shared = row_constraint
            row_lists: dict[int, Sequence[int]] = {}

            def matrix_row_scan() -> None:
                if not failed[r_src]:
                    row_id = values[r_flat]
                    if not r_shared or row_id <= num_shared:
                        cols = row_lists.get(row_id)
                        if cols is None:
                            row = get_row(row_id)
                            cols = (row.positions_cached() if row is not None
                                    else ())
                            row_lists[row_id] = cols
                        if cols:
                            values[base] = row_id
                            for col_id in cols:
                                values[base1] = col_id
                                next_step()
                            return
                if absolute:
                    return
                failed[position] = True
                next_step()
                failed[position] = False
            return matrix_row_scan

        if col_constraint is not None:
            c_src, c_flat, c_shared = col_constraint
            col_lists: dict[int, Sequence[int]] = {}

            def matrix_col_scan() -> None:
                if not failed[c_src]:
                    col_id = values[c_flat]
                    if not c_shared or col_id <= num_shared:
                        rows = col_lists.get(col_id)
                        if rows is None:
                            column = state.transpose().get_row(col_id)
                            rows = (column.positions_cached()
                                    if column is not None else ())
                            col_lists[col_id] = rows
                        if rows:
                            values[base1] = col_id
                            for row_id in rows:
                                values[base] = row_id
                                next_step()
                            return
                if absolute:
                    return
                failed[position] = True
                next_step()
                failed[position] = False
            return matrix_col_scan

        scan_cell: list[list[tuple[int, list[int]]]] = []

        def matrix_scan() -> None:
            if not scan_cell:
                scan_cell.append([(row_id, vec.positions_cached())
                                  for row_id, vec in matrix.iter_rows()])
            items = scan_cell[0]
            if items:
                for row_id, cols in items:
                    values[base] = row_id
                    for col_id in cols:
                        values[base1] = col_id
                        next_step()
                return
            if absolute:
                return
            failed[position] = True
            next_step()
            failed[position] = False
        return matrix_scan

    # ------------------------------------------------------------------

    def run(self) -> None:
        """Execute the join, emitting every encoded result row."""
        if not self.states:
            self.emit(())
            return
        # every position is "visited" at every output; nullification and
        # FaN scope checks read this set
        self.varmap.visited = set(range(len(self.states)))
        self._entry()

    # ------------------------------------------------------------------
    # output (slow path: nullification and/or FaN filters)
    # ------------------------------------------------------------------

    def _output(self) -> None:
        failed = self._failed
        saved = failed[:]
        try:
            if self.nul_required:
                nullify(self.varmap, self.plan)
            if self.fan_filters:
                self._apply_fan()
            self._emit_current()
        finally:
            # restore *in place*: step closures alias this list
            failed[:] = saved

    def _emit_current(self) -> None:
        """Emit the encoded row of the current full assignment."""
        values = self._values
        failed = self._failed
        self.emit(tuple(NULL if failed[source] else values[flat]
                        for source, flat in self._out_spec))

    def _decoded_row(self) -> dict:
        decode = self.dictionary.decode
        failed = self._failed
        values = self._values
        return {var: (NULL if failed[source]
                      else decode(space, values[flat]))
                for var, (source, flat), space
                in zip(self.output_variables, self._out_spec,
                       self.output_spaces)}

    def _fan_depth(self, fan: FanFilter) -> int:
        """Nesting depth of the filter's scope (its shallowest group)."""
        if not fan.scope_groups:
            return 0
        return min(len(self.plan.ancestors[group])
                   for group in fan.scope_groups)

    def _apply_fan(self) -> None:
        """Filter-and-nullification over the in-block (nullifying) fans.

        Deeper scopes evaluate first (``fan_filters`` is pre-sorted at
        construction): an inner OPTIONAL's filter may nullify its
        block, and an enclosing filter must see those bindings as
        NULL — the order bottom-up evaluation implies.  Dropping fans
        (top-level scope) are applied by the engine after best-match.
        """
        row = self._decoded_row()
        for fan in self.fan_filters:
            if self._scope_nullified(fan):
                continue
            if not passes(fan.expr, _null_free(row)):
                nullify(self.varmap, self.plan,
                        forced_failures=set(fan.scope_groups))
                self.fan_nullified = True
                row = self._decoded_row()

    def _scope_nullified(self, fan: FanFilter) -> bool:
        """True when the filter's own OPTIONAL block already failed.

        Only the *top* groups of the scope count: those are the block
        the filter is attached to.  A failed group nested deeper inside
        the scope does not make the filter moot — it makes the filter
        see NULL bindings, which is exactly the FaN evaluation case.
        """
        for group in fan.scope_groups:
            if self.plan.ancestors[group] & fan.scope_groups:
                continue
            for position in self.plan.slots_of_group[group]:
                if (position in self.varmap.visited
                        and self.varmap.failed[position]):
                    return True
        return False


def _absent(_value: int) -> bool:
    """Membership of an all-zeros (absent) BitMat row."""
    return False


def _null_free(row: dict) -> dict:
    """Expression rows treat NULL as unbound (absent)."""
    return {var: value for var, value in row.items() if value is not NULL}
