"""Multi-way pipelined join — Algorithm 5.4.

All per-TP BitMats are joined in one pipeline: the recursion picks the
first unvisited TP (in the master-first sort order ``stps``) with at
least one variable already mapped, enumerates its matching triples,
binds each in the shared :class:`~repro.core.results.VarMap`, and
recurses.  No pairwise intermediate results or hash tables are built —
the only working memory is the vmap itself.

When a TP matches nothing under the current bindings the branch rolls
back if the TP sits in an absolute master supernode (inner joins cannot
fail partially) and NULL-extends otherwise (the OPTIONAL block simply
does not match).  At a full assignment, nullification and the
filter-and-nullification (FaN) routine of §5.2 run when required, and
one result row is emitted.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..rdf.terms import NULL, Variable
from ..sparql.expressions import passes
from .gosn import GoSN
from .nullification import GroupPlan, nullify
from .results import VarMap, decode_binding
from .tp import TPState


class FanFilter:
    """A FILTER applied at result generation (FaN, §5.2).

    *scope_groups* are the supernode peer groups the filter's pattern
    covers; when evaluation fails, the row is dropped if the scope
    touches an absolute master group, otherwise the scope groups are
    nullified (the OPTIONAL block does not match under this filter).
    """

    def __init__(self, expr: object, scope_groups: frozenset[int]) -> None:
        self.expr = expr
        self.scope_groups = scope_groups


class MultiWayJoin:
    """One pipelined execution over sorted TP states."""

    def __init__(self, states: Sequence[TPState], gosn: GoSN,
                 plan: GroupPlan, nul_required: bool,
                 fan_filters: Sequence[FanFilter],
                 dictionary, emit: Callable[[tuple], None]) -> None:
        self.states = list(states)
        self.gosn = gosn
        self.plan = plan
        self.nul_required = nul_required
        self.fan_filters = list(fan_filters)
        self.dictionary = dictionary
        self.emit = emit
        self.varmap = VarMap(self.states)
        self.fan_nullified = False
        #: positions of TPs living in absolute master supernodes
        self.absolute_positions = {
            position for position, state in enumerate(self.states)
            if gosn.tp_in_absolute_master(state.index)}
        self.output_variables: list[Variable] = self.varmap.variables()
        # The visit order and per-depth binding sources depend only on
        # *which* TPs are visited — never on binding values — so they
        # are computed once instead of at every recursion node.
        self.visit_order: list[int] = []
        #: per depth: (variable, source slot or None) for the chosen TP
        self.depth_sources: list[list[tuple[Variable, int | None]]] = []
        #: per variable: the first slot in stps order that binds it
        self.output_sources: list[int] = []
        self._plan_visits()

    def _plan_visits(self) -> None:
        simulated: set[int] = set()
        for _ in range(len(self.states)):
            self.varmap.visited = simulated
            position = self._choose_next()
            sources: list[tuple[Variable, int | None]] = []
            for var in self.states[position].variables():
                source = None
                for slot in self.varmap.var_slots[var]:
                    if slot in simulated:
                        source = slot
                        break
                sources.append((var, source))
            self.visit_order.append(position)
            self.depth_sources.append(sources)
            simulated.add(position)
        self.varmap.visited = set()
        self.output_sources = [self.varmap.var_slots[var][0]
                               for var in self.output_variables]

    # ------------------------------------------------------------------

    def run(self) -> None:
        """Execute the join, emitting every result row."""
        if not self.states:
            self.emit(())
            return
        self._recurse(0)

    def _recurse(self, depth: int) -> None:
        varmap = self.varmap
        if depth == len(self.states):
            self._output()
            return
        position = self.visit_order[depth]
        state = self.states[position]
        slots = varmap.slots
        failed = varmap.failed
        constraints: dict[Variable, object] = {}
        any_null = False
        for var, source in self.depth_sources[depth]:
            if source is None:
                continue
            if failed[source]:
                any_null = True
                break
            constraints[var] = slots[source][var]

        matched = False
        if not any_null:
            next_depth = depth + 1
            for bindings in state.enumerate(constraints):
                matched = True
                slots[position] = bindings
                varmap.visited.add(position)
                self._recurse(next_depth)
            if matched:
                varmap.visited.discard(position)
                slots[position] = None
                return
        if position in self.absolute_positions:
            return  # inner-join failure: roll back this branch
        varmap.bind_failed(position)
        self._recurse(depth + 1)
        varmap.unbind(position)

    def _choose_next(self) -> int:
        """First unvisited TP (stps order) with a mapped variable."""
        varmap = self.varmap
        fallback: int | None = None
        for position in range(len(self.states)):
            if position in varmap.visited:
                continue
            if fallback is None:
                fallback = position
            if not varmap.visited:
                return position
            _, any_mapped, _ = varmap.constraints_for(position)
            if any_mapped:
                return position
            # TPs without variables join unconditionally
            if not self.states[position].variables():
                return position
        assert fallback is not None, "recursion invariant violated"
        return fallback

    # ------------------------------------------------------------------

    def _current_bindings(self) -> list:
        """Effective binding per output variable (None for NULL)."""
        varmap = self.varmap
        out = []
        for var, source in zip(self.output_variables, self.output_sources):
            if varmap.failed[source]:
                out.append(None)
            else:
                slot = varmap.slots[source]
                out.append(slot.get(var) if slot is not None else None)
        return out

    def _output(self) -> None:
        varmap = self.varmap
        saved = None
        if self.nul_required or self.fan_filters:
            saved = (list(varmap.slots), list(varmap.failed))
        try:
            if self.nul_required:
                nullify(varmap, self.plan)
            if self.fan_filters and not self._apply_fan():
                return
            dictionary = self.dictionary
            row = tuple(decode_binding(binding, dictionary)
                        for binding in self._current_bindings())
            self.emit(row)
        finally:
            if saved is not None:
                # restore *in place*: recursion frames alias these lists
                varmap.slots[:] = saved[0]
                varmap.failed[:] = saved[1]

    def _decoded_row(self) -> dict:
        return {var: decode_binding(binding, self.dictionary)
                for var, binding in zip(self.output_variables,
                                        self._current_bindings())}

    def _apply_fan(self) -> bool:
        """Filter-and-nullification; returns False to drop the row."""
        row = self._decoded_row()
        for fan in sorted(self.fan_filters,
                          key=lambda f: min(f.scope_groups, default=0)):
            if fan.scope_groups & self.plan.absolute_groups:
                if not passes(fan.expr, _null_free(row)):
                    return False
                continue
            if self._scope_nullified(fan):
                continue
            if not passes(fan.expr, _null_free(row)):
                nullify(self.varmap, self.plan,
                        forced_failures=set(fan.scope_groups))
                self.fan_nullified = True
                row = self._decoded_row()
        return True

    def _scope_nullified(self, fan: FanFilter) -> bool:
        for group in fan.scope_groups:
            for position in self.plan.slots_of_group[group]:
                if (position in self.varmap.visited
                        and self.varmap.failed[position]):
                    return True
        return False


def _null_free(row: dict) -> dict:
    """Expression rows treat NULL as unbound (absent)."""
    return {var: value for var, value in row.items() if value is not NULL}
