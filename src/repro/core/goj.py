"""Graphs of triple patterns (GoT) and of join variables (GoJ) — §3.1.

* **GoT** treats each triple pattern as a table; two patterns are
  adjacent when they share a join variable.
* **GoJ** has one node per join variable; two jvar-nodes are adjacent
  when they appear together in a triple pattern.

A *join variable* (jvar) is a variable occurring in two or more triple
patterns (or twice within one pattern).  Acyclicity of the GoJ is the
test Algorithm 3.1 dispatches on; we detect cycles on the **multigraph**
— each triple pattern contributes its own edges, so two patterns that
share *two* variables form a (redundant) cycle exactly as footnote 4 of
the paper describes, and such queries are conservatively routed through
the nullification/best-match path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..rdf.terms import Variable, is_variable
from ..sparql.ast import TriplePattern


def pattern_variables(tp: TriplePattern) -> list[Variable]:
    """Variables of a TP in position order (duplicates preserved)."""
    return [term for term in tp if is_variable(term)]


def join_variables(patterns: Sequence[TriplePattern]) -> set[Variable]:
    """Variables appearing in ≥2 patterns, or ≥2 positions of one."""
    seen: set[Variable] = set()
    joins: set[Variable] = set()
    for tp in patterns:
        tp_vars = pattern_variables(tp)
        for var in set(tp_vars):
            if var in seen or tp_vars.count(var) > 1:
                joins.add(var)
            seen.add(var)
    return joins


@dataclass
class GoT:
    """Graph of triple patterns (nodes are indexes into the TP list)."""

    num_patterns: int
    adjacency: dict[int, set[int]] = field(default_factory=dict)
    shared_jvars: dict[tuple[int, int], set[Variable]] = field(
        default_factory=dict)

    @classmethod
    def build(cls, patterns: Sequence[TriplePattern]) -> "GoT":
        jvars = join_variables(patterns)
        by_var: dict[Variable, list[int]] = {}
        for index, tp in enumerate(patterns):
            for var in set(pattern_variables(tp)):
                if var in jvars:
                    by_var.setdefault(var, []).append(index)
        got = cls(num_patterns=len(patterns),
                  adjacency={i: set() for i in range(len(patterns))})
        for var, members in by_var.items():
            for i in members:
                for j in members:
                    if i < j:
                        got.adjacency[i].add(j)
                        got.adjacency[j].add(i)
                        got.shared_jvars.setdefault((i, j), set()).add(var)
        return got

    def is_connected(self) -> bool:
        """True when every TP is reachable from every other via jvars.

        A disconnected GoT means the query contains a Cartesian product,
        which LBR does not evaluate (§5.2).
        """
        if self.num_patterns <= 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for neighbor in self.adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == self.num_patterns

    def is_cyclic(self) -> bool:
        """Multigraph cycle test: two TPs sharing ≥2 jvars count as a cycle."""
        if any(len(shared) > 1 for shared in self.shared_jvars.values()):
            return True
        return _simple_graph_cyclic(self.adjacency)


@dataclass
class GoJ:
    """Graph of join variables with per-TP edge multiplicity."""

    nodes: set[Variable]
    adjacency: dict[Variable, set[Variable]]
    #: one entry per (TP, unordered jvar pair) — the multigraph edges
    multi_edges: list[tuple[Variable, Variable]]

    @classmethod
    def build(cls, patterns: Sequence[TriplePattern]) -> "GoJ":
        jvars = join_variables(patterns)
        adjacency: dict[Variable, set[Variable]] = {v: set() for v in jvars}
        multi_edges: list[tuple[Variable, Variable]] = []
        for tp in patterns:
            tp_jvars = sorted({v for v in pattern_variables(tp)
                               if v in jvars})
            for i, left in enumerate(tp_jvars):
                for right in tp_jvars[i + 1:]:
                    adjacency[left].add(right)
                    adjacency[right].add(left)
                    multi_edges.append((left, right))
        return cls(nodes=jvars, adjacency=adjacency, multi_edges=multi_edges)

    def is_cyclic(self) -> bool:
        """Multigraph cycle test (parallel edges from distinct TPs count)."""
        parent: dict[Variable, Variable] = {v: v for v in self.nodes}

        def find(v: Variable) -> Variable:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        for left, right in self.multi_edges:
            root_l, root_r = find(left), find(right)
            if root_l == root_r:
                return True
            parent[root_l] = root_r
        return False


def _simple_graph_cyclic(adjacency: dict) -> bool:
    """Cycle test for a simple undirected graph given as adjacency sets."""
    parent = {node: node for node in adjacency}

    def find(node):
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    seen_edges = set()
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            edge = (node, neighbor) if node <= neighbor else (neighbor, node)
            if edge in seen_edges:
                continue
            seen_edges.add(edge)
            root_a, root_b = find(node), find(neighbor)
            if root_a == root_b:
                return True
            parent[root_a] = root_b
    return False


@dataclass
class Tree:
    """A rooted forest over a subset of GoJ nodes (induced subtree)."""

    roots: list[Variable]
    parent: dict[Variable, Variable | None]
    children: dict[Variable, list[Variable]]
    order: list[Variable]  # BFS order from the roots

    def bottom_up(self) -> list[Variable]:
        """Children-before-parents order (reverse BFS)."""
        return list(reversed(self.order))

    def top_down(self) -> list[Variable]:
        """Parents-before-children order (BFS)."""
        return list(self.order)


def get_tree(goj: GoJ, subset: set[Variable], root: Variable) -> Tree:
    """Induced subtree of the GoJ on *subset*, rooted at *root*.

    When the induced subgraph is disconnected (possible only in corner
    cases the paper rules out via the no-Cartesian-product assumption),
    remaining components are attached as additional BFS roots so every
    jvar still receives a pruning pass.
    """
    if root not in subset:
        raise ValueError(f"root {root!r} not in subset")
    parent: dict[Variable, Variable | None] = {}
    children: dict[Variable, list[Variable]] = {v: [] for v in subset}
    order: list[Variable] = []
    roots: list[Variable] = []
    remaining = set(subset)

    def bfs(start: Variable) -> None:
        parent[start] = None
        roots.append(start)
        queue = [start]
        remaining.discard(start)
        while queue:
            node = queue.pop(0)
            order.append(node)
            for neighbor in sorted(goj.adjacency.get(node, ())):
                if neighbor in remaining:
                    remaining.discard(neighbor)
                    parent[neighbor] = node
                    children[node].append(neighbor)
                    queue.append(neighbor)

    bfs(root)
    while remaining:
        bfs(sorted(remaining)[0])
    return Tree(roots=roots, parent=parent, children=children, order=order)
