"""Selectivity ranking of triple patterns and join variables (§3.2).

A triple pattern is *more selective* when fewer triples match it.  A
jvar ``?j1`` is more selective than ``?j2`` when the most selective TP
containing ``?j1`` has fewer triples than the most selective TP
containing ``?j2``.  Counts come from the per-TP BitMats at init time
(the store answers them from its condensed metadata without scanning).
"""

from __future__ import annotations

from typing import Sequence

from ..rdf.terms import Variable
from ..sparql.ast import TriplePattern
from .goj import pattern_variables


class SelectivityRanker:
    """Ranks TPs, jvars, and supernodes from per-TP triple counts."""

    #: which ordering model this ranker implements (the cost-based
    #: subclass in :mod:`repro.plan.cost` overrides it)
    source = "heuristic"

    def __init__(self, patterns: Sequence[TriplePattern],
                 counts: Sequence[int]) -> None:
        if len(patterns) != len(counts):
            raise ValueError("one count per triple pattern required")
        self._counts = list(counts)
        self._jvar_key: dict[Variable, int] = {}
        for index, tp in enumerate(patterns):
            for var in set(pattern_variables(tp)):
                current = self._jvar_key.get(var)
                if current is None or counts[index] < current:
                    self._jvar_key[var] = counts[index]

    def tp_count(self, tp_index: int) -> int:
        """Triples matching the TP (smaller = more selective)."""
        return self._counts[tp_index]

    def jvar_key(self, var: Variable) -> int:
        """Min TP count among TPs containing *var* (smaller = more selective)."""
        return self._jvar_key.get(var, 0)

    def most_selective_jvar(self, candidates: set[Variable]) -> Variable:
        """The most selective candidate (ties broken by name).

        The tie-break is part of the key, never iteration order: two
        rankers fed the same counts pick the same variable regardless
        of how the candidate set was built (hash seed, insertion
        order), which is what makes cost-vs-heuristic plan diffs
        reproducible.
        """
        return min(candidates, key=lambda var: (self.jvar_key(var), var))

    def least_selective_jvar(self, candidates: set[Variable]) -> Variable:
        """The least selective candidate (ties broken by name)."""
        return min(candidates,
                   key=lambda var: (-self.jvar_key(var), var))

    def greedy_jvar_order(self, jvars: set[Variable]) -> list[Variable]:
        """All jvars, most selective first (§3.3 cyclic fallback)."""
        return sorted(jvars, key=lambda var: (self.jvar_key(var), var))

    def supernode_key(self, tp_indexes: Sequence[int]) -> int:
        """Selectivity of a supernode: its most selective TP's count."""
        if not tp_indexes:
            return 0
        return min(self._counts[i] for i in tp_indexes)
