"""Wire format of the query service: newline-delimited JSON.

One request per line, one response per line, UTF-8.  Requests are
objects with an ``op`` (``query`` when omitted) and an optional ``id``
echoed back verbatim so clients can pipeline:

* ``{"op": "query", "query": "...", "timeout": 5, "max_join_rows": N}``
* ``{"op": "stats"}`` / ``{"op": "ping"}``
* ``{"op": "reload", "data": path}`` or ``{"op": "reload", "store":
  path}`` — copy-on-write snapshot swap
* ``{"op": "update", "add": [ntriples lines], "delete": [...]}`` —
  durably commit one atomic batch of adds/deletes (WAL-backed; only
  when the server serves a live store)
* ``{"op": "shutdown"}`` — graceful stop (when enabled): drains
  in-flight queries up to a deadline and fsyncs the WAL

Result cells travel as N3 strings (``None`` for unbound OPTIONAL
cells), which is also the *row-identity* form the soak gate and the
throughput benchmark compare against the single-threaded engine.

Error responses carry ``error.type``; ``rejected`` means backpressure
(retry the same server soon), ``shutting_down`` means the server is
draining (reconnect elsewhere; never retried by the client).
"""

from __future__ import annotations

import json

from ..core.engine import QueryStats
from ..rdf.terms import NULL
from .scheduler import QueryOutcome

#: protocol revision, reported by ping so clients can sanity-check
#: (2: added the ``update`` op and the ``shutting_down`` error code)
PROTOCOL_VERSION = 2


def term_to_wire(value) -> str | None:
    """One result cell: its N3 text, or None for NULL."""
    if value is NULL:
        return None
    n3 = getattr(value, "n3", None)
    return n3 if isinstance(n3, str) else str(value)


def rows_to_wire(rows) -> list[list[str | None]]:
    """Serialize engine rows; the canonical row-identity form."""
    return [[term_to_wire(value) for value in row] for row in rows]


def stats_to_wire(stats: QueryStats | None) -> dict | None:
    """The per-query metrics worth shipping to clients."""
    if stats is None:
        return None
    return {"t_plan": stats.t_plan, "t_init": stats.t_init,
            "t_prune": stats.t_prune, "t_join": stats.t_join,
            "t_total": stats.t_total,
            "num_results": stats.num_results,
            "results_with_nulls": stats.results_with_nulls,
            "best_match_required": stats.best_match_required,
            "branches": stats.branches}


def outcome_to_response(outcome: QueryOutcome,
                        request_id=None) -> dict:
    """Wire response for one query outcome."""
    response: dict = {"ok": outcome.ok}
    if request_id is not None:
        response["id"] = request_id
    if outcome.ok:
        response["variables"] = [str(var) for var in outcome.variables]
        response["rows"] = rows_to_wire(outcome.rows)
        response["stats"] = stats_to_wire(outcome.stats)
    else:
        response["error"] = {"type": outcome.error_type,
                             "message": outcome.error}
    response["snapshot_version"] = outcome.snapshot_version
    response["wait_s"] = outcome.wait_s
    response["exec_s"] = outcome.exec_s
    return response


def error_response(error_type: str, message: str,
                   request_id=None) -> dict:
    """Wire response for a protocol-level failure."""
    response: dict = {"ok": False,
                      "error": {"type": error_type, "message": message}}
    if request_id is not None:
        response["id"] = request_id
    return response


def encode_line(payload: dict) -> bytes:
    """One NDJSON line, ready to write."""
    return (json.dumps(payload, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one NDJSON line into a request/response object."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("protocol messages must be JSON objects")
    return payload
