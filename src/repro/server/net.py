"""TCP front door: the NDJSON socket server and its client.

:class:`LBRServer` wraps a ``ThreadingTCPServer``: each connection gets
a reader thread that parses one JSON request per line, drives the
shared :class:`~repro.server.service.QueryService`, and writes one JSON
response per line.  Concurrency control lives in the *scheduler*, not
here — connection threads block on their request's outcome, and the
bounded admission queue is what pushes back when clients outrun the
worker pool.

:class:`ServerClient` is the reference client: tests, the soak gate,
and the load generator all speak through it.  It can retry
transparently (off by default): transient connection failures and
``rejected`` backpressure responses are retried with exponential
backoff plus jitter up to a bounded attempt count, after which a
typed :class:`~repro.exceptions.RetriesExhaustedError` surfaces the
last underlying failure; ``shutting_down`` responses are never
retried — that server is going away.
"""

from __future__ import annotations

import random
import socket
import socketserver
import threading
import time

from ..bitmat.store import BitMatStore
from ..exceptions import (AdmissionError, ParseError, RetriesExhaustedError,
                          ShuttingDownError, StorageError, internal_error)
from ..rdf import ntriples
from .protocol import (PROTOCOL_VERSION, decode_line, encode_line,
                       error_response, outcome_to_response)
from ..sync import UNSET
from .service import QueryService


def _parse_triples(lines: list, what: str) -> list:
    """Wire N-Triples lines → triples (blank/comment lines skipped)."""
    triples = []
    for index, line in enumerate(lines):
        if not isinstance(line, str):
            raise ParseError(f"{what}[{index}] is not a string")
        triple = ntriples.parse_line(line, index + 1)
        if triple is not None:
            triples.append(triple)
    return triples


def _triple_line(triple) -> str:
    """One wire line for a triple (strings pass through verbatim)."""
    if isinstance(triple, str):
        return triple
    return triple.n3


def _clamp_budget(value: object, ceiling: float | None,
                  name: str) -> object:
    """Validate a client-supplied budget and cap it at the server's.

    Wire clients may *tighten* the operator's per-query limits but
    never raise or disable them — JSON ``null`` or an over-ceiling
    number would otherwise let one misbehaving client occupy workers
    indefinitely.  Raises ValueError (reported as a protocol error)
    for anything that is not a non-negative number.
    """
    if value is UNSET:
        return UNSET  # server default applies
    if (isinstance(value, bool) or not isinstance(value, (int, float))
            or value < 0):
        raise ValueError(f"{name} must be a non-negative number")
    if ceiling is not None:
        value = min(value, ceiling)
    return value


class _RequestHandler(socketserver.StreamRequestHandler):
    """One thread per connection; requests on a connection run in order."""

    def handle(self) -> None:
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        for raw_line in self.rfile:
            line = raw_line.strip()
            if not line:
                continue
            try:
                request = decode_line(line)
            except ValueError as exc:
                self._send(error_response("protocol", str(exc)))
                continue
            request_id = request.get("id")
            try:
                response, stop = self._dispatch(server, request,
                                                request_id)
            except Exception as exc:  # never kill the connection thread
                response, stop = error_response(
                    "internal", str(internal_error(exc)),
                    request_id), False
            self._send(response)
            if stop:
                threading.Thread(target=server.lbr_graceful_stop,
                                 daemon=True).start()
                return

    def _dispatch(self, server: "_TCPServer", request: dict,
                  request_id) -> tuple[dict, bool]:
        service = server.lbr_service
        op = request.get("op", "query")
        if op == "query":
            query_text = request.get("query")
            if not isinstance(query_text, str):
                return error_response("protocol",
                                      "missing 'query' text",
                                      request_id), False
            try:
                timeout = _clamp_budget(
                    request.get("timeout", UNSET),
                    service.config.default_timeout, "timeout")
                max_join_rows = _clamp_budget(
                    request.get("max_join_rows", UNSET),
                    service.config.max_join_rows, "max_join_rows")
            except ValueError as exc:
                return error_response("protocol", str(exc),
                                      request_id), False
            outcome = service.execute(query_text, timeout=timeout,
                                      max_join_rows=max_join_rows)
            return outcome_to_response(outcome, request_id), False
        if op == "ping":
            return {"ok": True, "pong": True,
                    "protocol": PROTOCOL_VERSION,
                    "id": request_id}, False
        if op == "stats":
            return {"ok": True, "stats": service.stats(),
                    "id": request_id}, False
        if op == "reload":
            if "data" in request:
                snapshot = service.load_graph(
                    ntriples.load(request["data"]))
            elif "store" in request:
                snapshot = service.load_store(
                    BitMatStore.load(request["store"]))
            else:
                return error_response(
                    "protocol", "reload needs 'data' or 'store'",
                    request_id), False
            return {"ok": True, "snapshot": snapshot.describe(),
                    "id": request_id}, False
        if op == "update":
            add_lines = request.get("add", [])
            delete_lines = request.get("delete", [])
            if (not isinstance(add_lines, list)
                    or not isinstance(delete_lines, list)):
                return error_response(
                    "protocol",
                    "'add' and 'delete' must be lists of N-Triples lines",
                    request_id), False
            try:
                adds = _parse_triples(add_lines, "add")
                deletes = _parse_triples(delete_lines, "delete")
            except ParseError as exc:
                return error_response("parse", str(exc), request_id), False
            try:
                summary = service.update_batch(adds, deletes)
            except ShuttingDownError as exc:
                return error_response("shutting_down", str(exc),
                                      request_id), False
            except AdmissionError as exc:
                return error_response("rejected", str(exc),
                                      request_id), False
            except StorageError as exc:
                # read-only service, failed WAL, closed store
                return error_response("error", str(exc), request_id), False
            response = {"ok": True, "id": request_id}
            response.update(summary)
            return response, False
        if op == "shutdown":
            if not server.allow_shutdown:
                return error_response("protocol",
                                      "shutdown op disabled",
                                      request_id), False
            return {"ok": True, "stopping": True,
                    "id": request_id}, True
        return error_response("protocol", f"unknown op {op!r}",
                              request_id), False

    def _send(self, payload: dict) -> None:
        self.wfile.write(encode_line(payload))
        self.wfile.flush()


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    lbr_service: QueryService
    allow_shutdown: bool
    drain_timeout: float | None

    def lbr_graceful_stop(self) -> None:
        """Drain admitted queries, fsync the WAL, then stop listening.

        New submits are refused with ``shutting_down`` the moment this
        starts, so clients get a typed protocol error — never a
        connection reset — while in-flight work completes up to the
        drain deadline.
        """
        service = self.lbr_service
        service.begin_shutdown()
        service.drain(self.drain_timeout)
        if service.live is not None:
            service.live.sync()
        self.shutdown()


class LBRServer:
    """The socket server; binds eagerly so the port is known at once."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0, allow_shutdown: bool = True,
                 drain_timeout: float | None = 10.0) -> None:
        self.service = service
        self._tcp = _TCPServer((host, port), _RequestHandler)
        self._tcp.lbr_service = service
        self._tcp.allow_shutdown = allow_shutdown
        self._tcp.drain_timeout = drain_timeout
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) — resolves ``port=0``."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "LBRServer":
        """Serve on a background thread (tests and embedders)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self.serve_forever,
                                            daemon=True,
                                            name="lbr-server")
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting connections and unwind ``serve_forever``."""
        self._tcp.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def shutdown_gracefully(self) -> None:
        """Drain in-flight work, fsync the WAL, then stop serving."""
        self._tcp.lbr_graceful_stop()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def close(self) -> None:
        self.shutdown()
        self._tcp.server_close()

    def __enter__(self) -> "LBRServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServerClient:
    """Blocking NDJSON client over one TCP connection.

    With ``retries=0`` (the default) every failure surfaces
    immediately, exactly as before.  With ``retries=N`` the client
    transparently retries transient failures — dropped connections
    (reconnecting first) and ``rejected`` backpressure responses — up
    to N extra attempts with exponential backoff plus jitter, then
    raises :class:`~repro.exceptions.RetriesExhaustedError`.
    ``shutting_down`` responses are returned as-is, never retried.
    """

    def __init__(self, host: str, port: int,
                 timeout: float | None = 60.0, retries: int = 0,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._rng = random.Random()
        self._lock = threading.Lock()
        self._next_id = 0
        self._sock: socket.socket | None = None
        self._reader = None
        self._writer = None
        try:
            self._connect()
        except OSError:
            if self._retries == 0:
                raise
            # leave disconnected; the retry loop reconnects on use

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout)
        self._reader = self._sock.makefile("rb")
        self._writer = self._sock.makefile("wb")

    def _reconnect(self) -> None:
        self._close_socket()
        self._connect()

    def _close_socket(self) -> None:
        for stream in (self._reader, self._writer):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = self._reader = self._writer = None

    def _request_once(self, payload: dict) -> dict:
        with self._lock:
            if self._sock is None:
                raise ConnectionError("client is disconnected")
            self._next_id += 1
            payload = dict(payload)
            payload.setdefault("id", self._next_id)
            self._writer.write(encode_line(payload))
            self._writer.flush()
            line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with jitter; attempt counts from 1."""
        delay = min(self._backoff_cap,
                    self._backoff_base * (2 ** (attempt - 1)))
        return delay * (0.5 + self._rng.random())

    def request(self, payload: dict) -> dict:
        """Send one request object and read its response.

        Retries transient failures when the client was built with
        ``retries > 0``; see the class docstring for the policy.
        """
        if self._retries == 0:
            return self._request_once(payload)
        attempts = 0
        last_error: Exception | None = None
        while True:
            attempts += 1
            failure: Exception | None = None
            if self._sock is None:
                try:
                    self._connect()
                except OSError as exc:
                    failure = exc
            if failure is None:
                try:
                    response = self._request_once(payload)
                except (ConnectionError, OSError) as exc:
                    failure = exc
                    self._close_socket()
                else:
                    error = response.get("error")
                    if (isinstance(error, dict)
                            and error.get("type") == "rejected"):
                        failure = AdmissionError(
                            str(error.get("message", "rejected")))
                    else:
                        return response
            last_error = failure
            if attempts > self._retries:
                break
            # the only sleep in the loop, reached strictly *between*
            # attempts — structurally, the client can never burn a
            # backoff delay after the attempt it has already given up on
            time.sleep(self._backoff(attempts))
        raise RetriesExhaustedError(
            f"request failed after {attempts} attempts: {last_error}",
            attempts=attempts, last_error=last_error)

    def query(self, query_text: str, timeout: object = None,
              max_join_rows: object = None) -> dict:
        """Run one query; returns the raw response object."""
        payload: dict = {"op": "query", "query": query_text}
        if timeout is not None:
            payload["timeout"] = timeout
        if max_join_rows is not None:
            payload["max_join_rows"] = max_join_rows
        return self.request(payload)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def reload(self, data: str | None = None,
               store: str | None = None) -> dict:
        payload: dict = {"op": "reload"}
        if data is not None:
            payload["data"] = data
        if store is not None:
            payload["store"] = store
        return self.request(payload)

    def update(self, adds=None, deletes=None) -> dict:
        """Commit one atomic update batch of triples (or N3 lines)."""
        payload = {"op": "update",
                   "add": [_triple_line(t) for t in (adds or [])],
                   "delete": [_triple_line(t) for t in (deletes or [])]}
        return self.request(payload)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        self._close_socket()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
