"""TCP front door: the NDJSON socket server and its client.

:class:`LBRServer` wraps a ``ThreadingTCPServer``: each connection gets
a reader thread that parses one JSON request per line, drives the
shared :class:`~repro.server.service.QueryService`, and writes one JSON
response per line.  Concurrency control lives in the *scheduler*, not
here — connection threads block on their request's outcome, and the
bounded admission queue is what pushes back when clients outrun the
worker pool.

:class:`ServerClient` is the reference client: tests, the soak gate,
and the load generator all speak through it.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from ..bitmat.store import BitMatStore
from ..rdf import ntriples
from .protocol import (PROTOCOL_VERSION, decode_line, encode_line,
                       error_response, outcome_to_response)
from ..sync import UNSET
from .service import QueryService


def _clamp_budget(value: object, ceiling: float | None,
                  name: str) -> object:
    """Validate a client-supplied budget and cap it at the server's.

    Wire clients may *tighten* the operator's per-query limits but
    never raise or disable them — JSON ``null`` or an over-ceiling
    number would otherwise let one misbehaving client occupy workers
    indefinitely.  Raises ValueError (reported as a protocol error)
    for anything that is not a non-negative number.
    """
    if value is UNSET:
        return UNSET  # server default applies
    if (isinstance(value, bool) or not isinstance(value, (int, float))
            or value < 0):
        raise ValueError(f"{name} must be a non-negative number")
    if ceiling is not None:
        value = min(value, ceiling)
    return value


class _RequestHandler(socketserver.StreamRequestHandler):
    """One thread per connection; requests on a connection run in order."""

    def handle(self) -> None:
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        for raw_line in self.rfile:
            line = raw_line.strip()
            if not line:
                continue
            try:
                request = decode_line(line)
            except ValueError as exc:
                self._send(error_response("protocol", str(exc)))
                continue
            request_id = request.get("id")
            try:
                response, stop = self._dispatch(server, request,
                                                request_id)
            except Exception as exc:  # never kill the connection thread
                response, stop = error_response(
                    "internal", f"{type(exc).__name__}: {exc}",
                    request_id), False
            self._send(response)
            if stop:
                threading.Thread(target=server.shutdown,
                                 daemon=True).start()
                return

    def _dispatch(self, server: "_TCPServer", request: dict,
                  request_id) -> tuple[dict, bool]:
        service = server.lbr_service
        op = request.get("op", "query")
        if op == "query":
            query_text = request.get("query")
            if not isinstance(query_text, str):
                return error_response("protocol",
                                      "missing 'query' text",
                                      request_id), False
            try:
                timeout = _clamp_budget(
                    request.get("timeout", UNSET),
                    service.config.default_timeout, "timeout")
                max_join_rows = _clamp_budget(
                    request.get("max_join_rows", UNSET),
                    service.config.max_join_rows, "max_join_rows")
            except ValueError as exc:
                return error_response("protocol", str(exc),
                                      request_id), False
            outcome = service.execute(query_text, timeout=timeout,
                                      max_join_rows=max_join_rows)
            return outcome_to_response(outcome, request_id), False
        if op == "ping":
            return {"ok": True, "pong": True,
                    "protocol": PROTOCOL_VERSION,
                    "id": request_id}, False
        if op == "stats":
            return {"ok": True, "stats": service.stats(),
                    "id": request_id}, False
        if op == "reload":
            if "data" in request:
                snapshot = service.load_graph(
                    ntriples.load(request["data"]))
            elif "store" in request:
                snapshot = service.load_store(
                    BitMatStore.load(request["store"]))
            else:
                return error_response(
                    "protocol", "reload needs 'data' or 'store'",
                    request_id), False
            return {"ok": True, "snapshot": snapshot.describe(),
                    "id": request_id}, False
        if op == "shutdown":
            if not server.allow_shutdown:
                return error_response("protocol",
                                      "shutdown op disabled",
                                      request_id), False
            return {"ok": True, "stopping": True,
                    "id": request_id}, True
        return error_response("protocol", f"unknown op {op!r}",
                              request_id), False

    def _send(self, payload: dict) -> None:
        self.wfile.write(encode_line(payload))
        self.wfile.flush()


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    lbr_service: QueryService
    allow_shutdown: bool


class LBRServer:
    """The socket server; binds eagerly so the port is known at once."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0, allow_shutdown: bool = True) -> None:
        self.service = service
        self._tcp = _TCPServer((host, port), _RequestHandler)
        self._tcp.lbr_service = service
        self._tcp.allow_shutdown = allow_shutdown
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) — resolves ``port=0``."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "LBRServer":
        """Serve on a background thread (tests and embedders)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self.serve_forever,
                                            daemon=True,
                                            name="lbr-server")
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting connections and unwind ``serve_forever``."""
        self._tcp.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def close(self) -> None:
        self.shutdown()
        self._tcp.server_close()

    def __enter__(self) -> "LBRServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServerClient:
    """Blocking NDJSON client over one TCP connection."""

    def __init__(self, host: str, port: int,
                 timeout: float | None = 60.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._writer = self._sock.makefile("wb")
        self._lock = threading.Lock()
        self._next_id = 0

    def request(self, payload: dict) -> dict:
        """Send one request object and read its response."""
        with self._lock:
            self._next_id += 1
            payload = dict(payload)
            payload.setdefault("id", self._next_id)
            self._writer.write(encode_line(payload))
            self._writer.flush()
            line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    def query(self, query_text: str, timeout: object = None,
              max_join_rows: object = None) -> dict:
        """Run one query; returns the raw response object."""
        payload: dict = {"op": "query", "query": query_text}
        if timeout is not None:
            payload["timeout"] = timeout
        if max_join_rows is not None:
            payload["max_join_rows"] = max_join_rows
        return self.request(payload)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def reload(self, data: str | None = None,
               store: str | None = None) -> dict:
        payload: dict = {"op": "reload"}
        if data is not None:
            payload["data"] = data
        if store is not None:
            payload["store"] = store
        return self.request(payload)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._reader.close()
            self._writer.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
