"""Concurrent query service: snapshots, scheduler, and the TCP front door.

The serving architecture (see DESIGN.md §9) is three layers:

* :mod:`repro.server.snapshot` — immutable published dataset snapshots
  with copy-on-write swap on (re)load; N sessions execute against one
  snapshot while a new one is built out of band;
* :mod:`repro.server.scheduler` — an admission-controlled worker pool
  with bounded queueing, per-query deadline / ``max_join_rows``
  budgets, and single-flighted compilation of structurally identical
  queries;
* :mod:`repro.server.net` — newline-delimited JSON over a TCP socket
  (``lbr serve``) plus the :class:`ServerClient` used by tests, the
  soak gate, and the load generator.

:class:`repro.server.service.QueryService` composes the first two into
the embeddable object the front door (and in-process users) drive.
"""

from .net import LBRServer, ServerClient
from .scheduler import (PendingQuery, QueryOutcome, QueryScheduler,
                        SchedulerConfig)
from .service import QueryService, ServiceConfig
from .snapshot import Snapshot, SnapshotManager

__all__ = [
    "LBRServer", "PendingQuery", "QueryOutcome", "QueryScheduler",
    "QueryService", "SchedulerConfig", "ServerClient", "ServiceConfig",
    "Snapshot", "SnapshotManager",
]
