"""Immutable published dataset snapshots (copy-on-write swap on load).

The serving model is single-writer / many-readers.  A :class:`Snapshot`
bundles one *frozen* store (any :class:`~repro.bitmat.backend.StoreBackend`)
with the thread-safe engine compiled over it; publication builds the
whole thing out of band and then performs one atomic reference swap.
Readers that already hold the previous snapshot keep executing against
it — a reload never changes the data a running query sees.

Snapshots retire deterministically, not by garbage collection: each one
carries a reference counter (:class:`_SnapshotRefs`) born at 1 for "is
the current snapshot".  Query workers ``try_acquire`` it for the
duration of one execution; publishing a successor releases the
being-current reference.  When the count reaches zero the snapshot's
store is ``close()``d — for a memory-mapped store that unmaps the image
and closes the file handle, so handles never leak across swaps no
matter how many reloads a long-lived server performs.

The engine is part of the snapshot (not shared across snapshots) on
purpose: physical plans embed store-derived statistics (selectivity
counts, init-time triple counts), so a plan compiled against one
dataset must never be replayed against another.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..bitmat.store import BitMatStore
from ..core.engine import EngineSession, LBREngine
from ..exceptions import StorageError
from ..rdf.graph import Graph
from ..sync import UNSET


class _SnapshotRefs:
    """Reference counter that closes the snapshot's store at zero.

    Born at 1 — the "is the current snapshot" reference, dropped by the
    publisher when a successor swaps in (or by
    :meth:`SnapshotManager.close`).  Readers add short-lived references
    around each query execution, so the store closes exactly when the
    snapshot is both retired and drained.
    """

    __slots__ = ("_store", "_count", "_lock")

    def __init__(self, store: BitMatStore) -> None:
        self._store = store
        self._count = 1
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Add a reference; False when the snapshot already retired."""
        with self._lock:
            if self._count <= 0:
                return False
            self._count += 1
            return True

    def release(self) -> None:
        """Drop a reference; the last one closes the store."""
        with self._lock:
            if self._count <= 0:
                return
            self._count -= 1
            if self._count:
                return
        self._store.close()

    @property
    def active(self) -> int:
        with self._lock:
            return self._count


@dataclass(frozen=True)
class Snapshot:
    """One published, immutable (store, engine) pair."""

    version: int
    store: BitMatStore
    engine: LBREngine
    published_at: float  # wall-clock, for monitoring
    refs: _SnapshotRefs = field(repr=False, compare=False, default=None)

    def session(self, max_join_rows: int | None = UNSET,
                deadline: float | None = None) -> EngineSession:
        """A per-request session pinned to this snapshot."""
        return self.engine.session(max_join_rows=max_join_rows,
                                   deadline=deadline)

    def describe(self) -> dict:
        """Monitoring summary (the ``stats`` op reports this)."""
        return {"version": self.version,
                "published_at": self.published_at,
                "triples": self.store.num_triples,
                "subjects": self.store.num_subjects,
                "predicates": self.store.num_predicates,
                "objects": self.store.num_objects}


class SnapshotManager:
    """Publishes snapshots and hands the current one to readers.

    ``current()`` is one lock-free attribute read (reference assignment
    is atomic), so the read path never contends with a publisher;
    publications themselves serialize on a writer lock so versions stay
    monotonic.

    Ownership: ``publish_store`` *adopts* the caller's reference on the
    store — publishing is a handoff, and the snapshot machinery closes
    the store once it is retired and drained.  Callers that keep using
    a store after publishing it must ``retain()`` their own reference
    first (the live-update subsystem does).
    """

    def __init__(self, engine_options: dict | None = None) -> None:
        #: keyword arguments forwarded to every published
        #: :class:`LBREngine` (ablation switches, cache sizes, default
        #: ``max_join_rows``); ``thread_safe`` is always forced on
        self._engine_options = dict(engine_options or {})
        self._engine_options.pop("thread_safe", None)
        self._write_lock = threading.Lock()
        self._current: Snapshot | None = None
        self._next_version = 1

    def publish_store(self, store: BitMatStore) -> Snapshot:
        """Freeze *store*, build its engine, and swap it in atomically.

        Adopts the caller's reference on *store* (see class docstring);
        the previous snapshot's being-current reference is released, so
        its store closes as soon as in-flight queries drain.
        """
        store.freeze()
        engine = LBREngine(store, thread_safe=True, **self._engine_options)
        with self._write_lock:
            snapshot = Snapshot(version=self._next_version, store=store,
                                engine=engine, published_at=time.time(),
                                refs=_SnapshotRefs(store))
            self._next_version += 1
            # the swap: one reference assignment; in-flight sessions
            # keep the snapshot they started on
            previous = self._current
            self._current = snapshot
        if previous is not None:
            previous.refs.release()
        return snapshot

    def publish_graph(self, graph: Graph) -> Snapshot:
        """Index *graph* out of band, then publish it."""
        return self.publish_store(BitMatStore.build(graph))

    def current(self) -> Snapshot:
        """The latest published snapshot (lock-free)."""
        snapshot = self._current
        if snapshot is None:
            raise StorageError("no dataset snapshot has been published")
        return snapshot

    @property
    def version(self) -> int:
        """Version of the current snapshot (0 before first publish)."""
        snapshot = self._current
        return 0 if snapshot is None else snapshot.version

    def close(self) -> None:
        """Release the current snapshot's being-current reference.

        Called at service shutdown, after the scheduler stops; the
        store closes once the last in-flight reader releases.  The
        snapshot object stays readable for metadata (``describe()``
        works on a closed store).
        """
        with self._write_lock:
            snapshot = self._current
        if snapshot is not None:
            snapshot.refs.release()
