"""Immutable published dataset snapshots (copy-on-write swap on load).

The serving model is single-writer / many-readers.  A :class:`Snapshot`
bundles one *frozen* :class:`~repro.bitmat.store.BitMatStore` with the
thread-safe engine compiled over it; publication builds the whole thing
out of band and then performs one atomic reference swap.  Readers that
already hold the previous snapshot keep executing against it — a reload
never changes the data a running query sees — and the old snapshot is
garbage-collected once the last in-flight session drops it.

The engine is part of the snapshot (not shared across snapshots) on
purpose: physical plans embed store-derived statistics (selectivity
counts, init-time triple counts), so a plan compiled against one
dataset must never be replayed against another.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..bitmat.store import BitMatStore
from ..core.engine import EngineSession, LBREngine
from ..exceptions import StorageError
from ..rdf.graph import Graph
from ..sync import UNSET


@dataclass(frozen=True)
class Snapshot:
    """One published, immutable (store, engine) pair."""

    version: int
    store: BitMatStore
    engine: LBREngine
    published_at: float  # wall-clock, for monitoring

    def session(self, max_join_rows: int | None = UNSET,
                deadline: float | None = None) -> EngineSession:
        """A per-request session pinned to this snapshot."""
        return self.engine.session(max_join_rows=max_join_rows,
                                   deadline=deadline)

    def describe(self) -> dict:
        """Monitoring summary (the ``stats`` op reports this)."""
        return {"version": self.version,
                "published_at": self.published_at,
                "triples": self.store.num_triples,
                "subjects": self.store.num_subjects,
                "predicates": self.store.num_predicates,
                "objects": self.store.num_objects}


class SnapshotManager:
    """Publishes snapshots and hands the current one to readers.

    ``current()`` is one lock-free attribute read (reference assignment
    is atomic), so the read path never contends with a publisher;
    publications themselves serialize on a writer lock so versions stay
    monotonic.
    """

    def __init__(self, engine_options: dict | None = None) -> None:
        #: keyword arguments forwarded to every published
        #: :class:`LBREngine` (ablation switches, cache sizes, default
        #: ``max_join_rows``); ``thread_safe`` is always forced on
        self._engine_options = dict(engine_options or {})
        self._engine_options.pop("thread_safe", None)
        self._write_lock = threading.Lock()
        self._current: Snapshot | None = None
        self._next_version = 1

    def publish_store(self, store: BitMatStore) -> Snapshot:
        """Freeze *store*, build its engine, and swap it in atomically."""
        store.freeze()
        engine = LBREngine(store, thread_safe=True, **self._engine_options)
        with self._write_lock:
            snapshot = Snapshot(version=self._next_version, store=store,
                                engine=engine, published_at=time.time())
            self._next_version += 1
            # the swap: one reference assignment; in-flight sessions
            # keep the snapshot they started on
            self._current = snapshot
        return snapshot

    def publish_graph(self, graph: Graph) -> Snapshot:
        """Index *graph* out of band, then publish it."""
        return self.publish_store(BitMatStore.build(graph))

    def current(self) -> Snapshot:
        """The latest published snapshot (lock-free)."""
        snapshot = self._current
        if snapshot is None:
            raise StorageError("no dataset snapshot has been published")
        return snapshot

    @property
    def version(self) -> int:
        """Version of the current snapshot (0 before first publish)."""
        snapshot = self._current
        return 0 if snapshot is None else snapshot.version
