"""Seeded multi-client soak run — the CI ``server-soak`` gate.

Builds one merged dataset (the three §6 evaluation datasets plus the
graphs of a batch of fuzz-generated cases), computes a single-threaded
reference answer for every workload query, then hammers a live TCP
server from N client threads for a fixed wall-clock budget while a
reloader thread keeps republishing snapshots (alternating between two
pre-built stores of the same data, so every swap is a full
copy-on-write publication with cold plan caches).

With ``--writers N`` the server serves a WAL-backed live store and N
writer threads concurrently toggle one fixed *slice* of the dataset
(delete the whole slice / re-add the whole slice, each an atomic
batch) while a compaction-storm thread keeps forcing base merges.
Because every writer toggles the *same* slice, every committed state
equals either the full graph or the graph minus the slice — the
single-writer oracle — so readers are checked against exactly two
precomputed reference answers per query and writers assert the exact
post-batch triple count.  Any response matching neither state is a
divergence.  The run fails unless at least one compaction completed.

The gate fails on:

* **divergence** — any concurrent result whose sorted wire rows differ
  from the single-threaded engine's answer for the same query (in
  writer mode: from both committed states' answers);
* **unhandled errors** — any ``internal`` outcome, client-side
  exception, or nonzero scheduler ``worker_errors`` counter;
* **deadlock** — clients not finishing within a grace period after the
  soak window (a watchdog exits 3 with a thread dump).

Admission rejections and deadline timeouts are *expected* under
saturation and are only reported; the run still fails if literally no
request completed (and, in writer mode, if no batch committed or no
compaction ran).

Exit codes: 0 clean, 1 divergence/errors, 2 setup failure, 3 deadlock.
"""

from __future__ import annotations

import argparse
import faulthandler
import random
import sys
import threading
import time

from ..bitmat.store import BitMatStore
from ..core.engine import LBREngine
from ..exceptions import (BudgetExceededError, ReproError,
                          RetriesExhaustedError, UnsupportedQueryError,
                          internal_error)
from ..rdf.graph import Graph
from .net import LBRServer, ServerClient
from .protocol import rows_to_wire
from .service import QueryService, ServiceConfig

#: extra seconds granted past --seconds before declaring a deadlock
WATCHDOG_GRACE = 120.0


def build_workload(seed: int, fuzz_cases: int,
                   ) -> tuple[Graph, dict[str, str]]:
    """The merged soak dataset and its named query set.

    Templates keep their dataset-qualified names; fuzz queries are
    generated with the campaign generator and their graphs are unioned
    into the dataset, so every query has data to bite on.  Reference
    answers are computed over the *merged* graph, which keeps the
    comparison exact even though fuzz cases share entity vocabularies.
    """
    from ..datasets import (DBPEDIA_QUERIES, LUBM_QUERIES,
                            UNIPROT_QUERIES, generate_dbpedia,
                            generate_lubm, generate_uniprot)
    from ..fuzz.runner import CampaignConfig, generate_case

    graph = Graph()
    queries: dict[str, str] = {}
    for label, generate, templates in (
            ("LUBM", generate_lubm, LUBM_QUERIES),
            ("UniProt", generate_uniprot, UNIPROT_QUERIES),
            ("DBPedia", generate_dbpedia, DBPEDIA_QUERIES)):
        graph.add_all(generate())
        for name, text in templates.items():
            queries[f"{label}/{name}"] = text

    config = CampaignConfig(seed=seed, budget=fuzz_cases)
    master = random.Random(seed)
    for index in range(fuzz_cases):
        case, _shape = generate_case(config, master.getrandbits(48),
                                     index)
        graph.add_all(case.triples)
        queries[f"fuzz/{index}"] = case.query_text
    return graph, queries


#: per-query budgets for workload admission: queries the
#: single-threaded engine cannot answer within these bounds (possible
#: among fuzz-generated ones, whose joins can explode on the merged
#: graph) are dropped from the workload up front — the soak measures
#: serving correctness, not query pathology
#: (1s cold single-threaded ≈ worst-case ~10s under 8-way GIL
#: contention on a 2-core CI runner — comfortably inside the service's
#: 30s default deadline)
REFERENCE_MAX_JOIN_ROWS = 100_000
REFERENCE_DEADLINE_S = 1.0


def compute_references(store: BitMatStore, queries: dict[str, str],
                       ) -> dict[str, list]:
    """Single-threaded reference: sorted wire rows per workload query.

    Queries outside LBR's fragment or over the reference budgets are
    dropped from the workload rather than failed.
    """
    engine = LBREngine(store)
    references: dict[str, list] = {}
    dropped = []
    for name, text in queries.items():
        session = engine.session(
            max_join_rows=REFERENCE_MAX_JOIN_ROWS,
            deadline=time.monotonic() + REFERENCE_DEADLINE_S)
        try:
            result = session.execute(text)
        except (UnsupportedQueryError, BudgetExceededError):
            dropped.append(name)
            continue
        except ReproError as exc:
            raise SystemExit(
                f"soak setup: reference evaluation of {name} failed: "
                f"{exc}")
        references[name] = sorted(rows_to_wire(result.rows),
                                  key=_row_key)
    for name in dropped:
        queries.pop(name)
    if dropped:
        print(f"soak: dropped {len(dropped)} unsupported/over-budget "
              f"fuzz queries ({', '.join(dropped[:5])} ...)")
    return references


def _row_key(row: list) -> tuple:
    return tuple("" if cell is None else cell for cell in row)


def select_toggle_slice(graph: Graph, cap: int = 200) -> list:
    """A slice of triples safe for delete/re-add toggling.

    Every selected triple's subject still appears as a subject, its
    object as an object, and its predicate as a predicate somewhere in
    the remaining graph.  That keeps the dictionary's shared region
    stable across a compaction at *either* committed state: re-adding
    the slice never puts a term on both sides outside the shared
    region, so toggling never degenerates into a forced rebuild per
    batch.
    """
    subject_uses: dict = {}
    predicate_uses: dict = {}
    object_uses: dict = {}
    for triple in graph:
        subject_uses[triple.s] = subject_uses.get(triple.s, 0) + 1
        predicate_uses[triple.p] = predicate_uses.get(triple.p, 0) + 1
        object_uses[triple.o] = object_uses.get(triple.o, 0) + 1
    slice_triples = []
    for triple in sorted(graph, key=lambda t: (t.s.n3, t.p.n3, t.o.n3)):
        if (subject_uses[triple.s] >= 2 and predicate_uses[triple.p] >= 2
                and object_uses[triple.o] >= 2):
            slice_triples.append(triple)
            subject_uses[triple.s] -= 1
            predicate_uses[triple.p] -= 1
            object_uses[triple.o] -= 1
            if len(slice_triples) >= cap:
                break
    return slice_triples


class ClientStats:
    """Mutable per-client tally (each client thread owns one)."""

    def __init__(self) -> None:
        self.completed = 0
        self.rejected = 0
        self.timeouts = 0
        self.budget = 0
        self.divergences: list[str] = []
        self.errors: list[str] = []


def _client_loop(index: int, seed: int, host: str, port: int,
                 names: list[str], references: dict[str, list],
                 queries: dict[str, str], stop_at: float,
                 tally: ClientStats,
                 alt_references: dict[str, list] | None = None) -> None:
    rng = random.Random((seed << 8) | index)
    try:
        client = ServerClient(host, port, timeout=WATCHDOG_GRACE)
    except OSError as exc:
        tally.errors.append(f"client {index}: connect failed: {exc}")
        return
    try:
        while time.monotonic() < stop_at:
            name = rng.choice(names)
            try:
                response = client.query(queries[name])
            except (OSError, ValueError) as exc:
                tally.errors.append(f"client {index}: {name}: "
                                    f"{type(exc).__name__}: {exc}")
                return
            if response.get("ok"):
                got = sorted(response["rows"], key=_row_key)
                matched = got == references[name]
                if not matched and alt_references is not None:
                    matched = got == alt_references[name]
                if not matched:
                    tally.divergences.append(
                        f"client {index}: {name}: got "
                        f"{len(got)} rows != reference "
                        f"{len(references[name])} rows "
                        f"(snapshot v{response.get('snapshot_version')})")
                else:
                    tally.completed += 1
                continue
            error = response.get("error") or {}
            error_type = error.get("type")
            if error_type == "rejected":
                tally.rejected += 1
                time.sleep(0.002)  # back off as a polite client would
            elif error_type == "timeout":
                tally.timeouts += 1
            elif error_type == "budget":
                tally.budget += 1
            else:
                tally.errors.append(
                    f"client {index}: {name}: {error_type}: "
                    f"{error.get('message')}")
    finally:
        client.close()


def _reloader_loop(service: QueryService, stores: list[BitMatStore],
                   interval: float, stop_at: float) -> None:
    """Republish alternating stores until the window closes."""
    flip = 0
    while time.monotonic() < stop_at:
        time.sleep(interval)
        flip += 1
        service.load_store(stores[flip % len(stores)])


class WriterStats:
    """Mutable per-writer tally (each writer thread owns one)."""

    def __init__(self) -> None:
        self.committed = 0
        self.checkpointed = 0
        self.exhausted = 0
        self.divergences: list[str] = []
        self.errors: list[str] = []


def _writer_loop(index: int, host: str, port: int, slice_lines: list,
                 expected_full: int, expected_minus: int,
                 interval: float, stop_at: float,
                 tally: WriterStats) -> None:
    """Toggle the shared slice: delete-all, re-add-all, repeat.

    Each batch is atomic, and every writer toggles the *same* slice,
    so the post-batch triple count reported by the server must equal
    the minus-slice count after a delete and the full count after an
    add — regardless of how writers interleave.  Anything else means a
    committed state outside the single-writer oracle's state set.
    """
    try:
        client = ServerClient(host, port, timeout=WATCHDOG_GRACE,
                              retries=6, backoff_base=0.02)
    except OSError as exc:
        tally.errors.append(f"writer {index}: connect failed: {exc}")
        return
    deleting = True
    try:
        while time.monotonic() < stop_at:
            try:
                if deleting:
                    response = client.update(deletes=slice_lines)
                    expected = expected_minus
                else:
                    response = client.update(adds=slice_lines)
                    expected = expected_full
            except RetriesExhaustedError:
                tally.exhausted += 1
                time.sleep(interval)
                continue
            except (OSError, ValueError) as exc:
                tally.errors.append(f"writer {index}: "
                                    f"{type(exc).__name__}: {exc}")
                return
            if not response.get("ok"):
                error = response.get("error") or {}
                if error.get("type") == "shutting_down":
                    return
                tally.errors.append(
                    f"writer {index}: {error.get('type')}: "
                    f"{error.get('message')}")
                return
            tally.committed += 1
            if response.get("checkpointed"):
                tally.checkpointed += 1
            visible = response.get("visible_triples")
            if visible != expected:
                tally.divergences.append(
                    f"writer {index}: seq {response.get('seq')} "
                    f"({'delete' if deleting else 'add'}) left "
                    f"{visible} visible triples, expected {expected}")
            deleting = not deleting
            time.sleep(interval)
    finally:
        client.close()


def _compaction_storm(live, interval: float, stop_at: float,
                      errors: list[str]) -> None:
    """Force base merges back-to-back while writers toggle."""
    while time.monotonic() < stop_at:
        time.sleep(interval)
        try:
            live.compact()
        except Exception as exc:
            # a failed merge fails the soak gate by name, not just
            # through the compactions counter staying flat
            errors.append(f"compaction storm: {internal_error(exc)}")
            return


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.server.soak",
        description="seeded multi-client soak of the query service")
    parser.add_argument("--seconds", type=float, default=60.0,
                        help="soak window (default 60)")
    parser.add_argument("--threads", type=int, default=8,
                        help="client threads (default 8)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fuzz-cases", type=int, default=25,
                        help="fuzz-generated queries mixed into the "
                             "workload (default 25)")
    parser.add_argument("--workers", type=int, default=4,
                        help="service worker threads (default 4)")
    parser.add_argument("--queue-limit", type=int, default=32,
                        help="admission queue bound — small enough "
                             "that saturation exercises rejection "
                             "(default 32)")
    parser.add_argument("--reload-interval", type=float, default=3.0,
                        help="seconds between snapshot republications "
                             "(default 3)")
    parser.add_argument("--writers", type=int, default=0,
                        help="concurrent writer threads toggling one "
                             "shared slice through the update op "
                             "(default 0 = read-only soak)")
    parser.add_argument("--write-interval", type=float, default=0.2,
                        help="seconds each writer pauses between "
                             "batches (default 0.2)")
    parser.add_argument("--compact-interval", type=float, default=4.0,
                        help="seconds between forced compactions in "
                             "writer mode (default 4)")
    parser.add_argument("--slice-size", type=int, default=150,
                        help="triples in the toggled slice "
                             "(default 150)")
    args = parser.parse_args(argv)

    writer_mode = args.writers > 0
    print(f"soak: building workload (seed={args.seed}, "
          f"fuzz_cases={args.fuzz_cases}, writers={args.writers})",
          flush=True)
    live_dir = None
    try:
        graph, queries = build_workload(args.seed, args.fuzz_cases)
        # two stores of the same data: snapshot swaps alternate between
        # them, so each publication is a real engine rebuild with cold
        # plan caches (maximum pressure on single-flight compilation)
        stores = [BitMatStore.build(graph), BitMatStore.build(graph)]
        references = compute_references(BitMatStore.build(graph),
                                        queries)
        alt_references = None
        slice_triples: list = []
        if writer_mode:
            slice_triples = select_toggle_slice(graph, args.slice_size)
            if not slice_triples:
                raise SystemExit("soak setup: empty toggle slice")
            minus_graph = Graph()
            slice_set = set(slice_triples)
            minus_graph.add_all(t for t in graph if t not in slice_set)
            minus_queries = dict(queries)
            alt_references = compute_references(
                BitMatStore.build(minus_graph), minus_queries)
            # a query must be answerable in BOTH committed states
            for name in list(references):
                if name not in alt_references:
                    references.pop(name)
                    queries.pop(name, None)
    except SystemExit:
        raise
    except Exception as exc:
        print(f"soak setup failed: {internal_error(exc)}",
              file=sys.stderr, flush=True)
        return 2
    names = sorted(references)
    print(f"soak: {len(graph):,} triples, {len(names)} queries "
          f"({sum(1 for n in names if n.startswith('fuzz/'))} fuzz)",
          flush=True)

    service = QueryService(
        ServiceConfig(workers=args.workers,
                      queue_limit=args.queue_limit,
                      default_timeout=30.0))
    live = None
    if writer_mode:
        import tempfile

        from ..update import LiveConfig, LiveGraphStore
        live_dir = tempfile.mkdtemp(prefix="lbr-soak-live-")
        # the storm thread owns compaction; no background daemon and
        # no size threshold, so every merge is deliberate and counted
        live = LiveGraphStore.open(
            live_dir, initial=stores[0],
            config=LiveConfig(compact_threshold=None, background=False))
        service.attach_live_store(live)
        print(f"soak: live store at {live_dir}, toggle slice of "
              f"{len(slice_triples)} triples", flush=True)
    else:
        service.load_store(stores[0])
    server = LBRServer(service, port=0).start()
    host, port = server.address

    stop_at = time.monotonic() + args.seconds
    tallies = [ClientStats() for _ in range(args.threads)]
    clients = [
        threading.Thread(
            target=_client_loop, daemon=True, name=f"soak-client-{i}",
            args=(i, args.seed, host, port, names, references, queries,
                  stop_at, tallies[i], alt_references))
        for i in range(args.threads)]
    started = time.monotonic()
    for thread in clients:
        thread.start()
    writer_tallies = [WriterStats() for _ in range(args.writers)]
    writers: list[threading.Thread] = []
    if writer_mode:
        slice_lines = [t.n3 for t in slice_triples]
        full_count = stores[0].num_triples
        minus_count = full_count - len(slice_triples)
        writers = [
            threading.Thread(
                target=_writer_loop, daemon=True,
                name=f"soak-writer-{i}",
                args=(i, host, port, slice_lines, full_count,
                      minus_count, args.write_interval, stop_at,
                      writer_tallies[i]))
            for i in range(args.writers)]
        for thread in writers:
            thread.start()
        storm_errors: list[str] = []
        storm = threading.Thread(
            target=_compaction_storm, daemon=True, name="soak-compactor",
            args=(live, args.compact_interval, stop_at, storm_errors))
        storm.start()
    else:
        reloader = threading.Thread(
            target=_reloader_loop, daemon=True, name="soak-reloader",
            args=(service, stores, args.reload_interval, stop_at))
        reloader.start()

    # deadlock watchdog: if clients cannot finish within the grace
    # period past the window, dump every stack and exit 3
    deadline = stop_at + WATCHDOG_GRACE
    for thread in clients + writers:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
    if any(thread.is_alive() for thread in clients + writers):
        print("soak: DEADLOCK — clients still running after "
              f"{args.seconds + WATCHDOG_GRACE:.0f}s; thread dump:",
              file=sys.stderr, flush=True)
        faulthandler.dump_traceback(file=sys.stderr)
        return 3
    if writer_mode:
        storm.join(timeout=args.compact_interval + 60)
    else:
        reloader.join(timeout=args.reload_interval + 10)
    elapsed = time.monotonic() - started

    scheduler_stats = service.scheduler.stats()
    live_stats = live.stats() if live is not None else None
    server.close()
    service.close()
    if live_dir is not None:
        import shutil
        shutil.rmtree(live_dir, ignore_errors=True)

    completed = sum(t.completed for t in tallies)
    rejected = sum(t.rejected for t in tallies)
    timeouts = sum(t.timeouts for t in tallies)
    budget = sum(t.budget for t in tallies)
    divergences = [d for t in tallies for d in t.divergences]
    errors = [e for t in tallies for e in t.errors]
    divergences += [d for t in writer_tallies for d in t.divergences]
    errors += [e for t in writer_tallies for e in t.errors]
    if writer_mode:
        errors += storm_errors
    worker_errors = scheduler_stats["worker_errors"]
    batches = sum(t.committed for t in writer_tallies)
    compactions = live_stats["compactions"] if live_stats else 0

    print(f"soak: {elapsed:.1f}s, {args.threads} clients, "
          f"{completed:,} row-identical results "
          f"({completed / elapsed:.1f} qps), {rejected:,} rejected, "
          f"{timeouts:,} timeouts, {budget:,} over budget", flush=True)
    print(f"soak: snapshots published: "
          f"{service.snapshots.version}, scheduler p50="
          f"{scheduler_stats['p50_ms']:.1f}ms "
          f"p99={scheduler_stats['p99_ms']:.1f}ms "
          f"worker_errors={worker_errors}", flush=True)
    if writer_mode:
        checkpoints = sum(t.checkpointed for t in writer_tallies)
        exhausted = sum(t.exhausted for t in writer_tallies)
        print(f"soak: writers committed {batches:,} batches "
              f"({checkpoints} forced checkpoints, {exhausted} gave "
              f"up after retries), {compactions} compactions, "
              f"live: {live_stats}", flush=True)
    for line in divergences[:20]:
        print(f"soak: DIVERGENCE {line}", file=sys.stderr, flush=True)
    for line in errors[:20]:
        print(f"soak: ERROR {line}", file=sys.stderr, flush=True)

    writer_gate_failed = writer_mode and (not batches or not compactions)
    if divergences or errors or worker_errors or not completed \
            or writer_gate_failed:
        print(f"soak: FAILED (divergences={len(divergences)}, "
              f"errors={len(errors)}, worker_errors={worker_errors}, "
              f"completed={completed}, batches={batches}, "
              f"compactions={compactions})",
              file=sys.stderr, flush=True)
        return 1
    print("soak: OK", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
