"""Admission-controlled query scheduler: bounded queue + worker pool.

Admission happens at ``submit``: when the bounded queue is full the
request is rejected *immediately* with :class:`AdmissionError` carrying
the observed queue depth — graceful backpressure instead of unbounded
latency.  Admitted requests carry a deadline measured from submission
(queue wait counts against it) and a ``max_join_rows``
budget enforced by the engine session via
:class:`~repro.exceptions.BudgetExceededError`; a request that stalled
in the queue past its deadline is failed without executing.

Each worker resolves the *current* snapshot at dequeue time and runs
the query in a private :class:`~repro.core.engine.EngineSession`, so a
dataset reload mid-flight never affects running queries.  Structurally
identical concurrent queries share one plan compile through the
engine's single-flight (see ``LBREngine.compile_stats``).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..core.engine import QueryStats
from ..exceptions import (AdmissionError, BudgetExceededError,
                          DeadlineExceededError, ParseError, ReproError,
                          ShuttingDownError, UnsupportedQueryError,
                          internal_error)
from ..sync import UNSET
from .snapshot import SnapshotManager

#: Worker-loop shutdown marker.
_STOP = object()

#: How many completed-request latency samples the rolling window keeps.
LATENCY_WINDOW = 4096


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission and budget policy of one scheduler."""

    #: worker threads executing queries (0 = admit but never run —
    #: useful in tests to observe the queue itself)
    workers: int = 4
    #: bounded admission queue; None = unbounded (no backpressure)
    queue_limit: int | None = 64
    #: default per-query wall-clock budget in seconds (None = none);
    #: measured from submission, so queue wait counts against it
    default_timeout: float | None = 30.0
    #: default per-query join-output budget (None = unlimited)
    max_join_rows: int | None = 1_000_000


@dataclass
class QueryOutcome:
    """Terminal result of one request, success or failure."""

    ok: bool
    variables: tuple = ()
    #: result rows (engine terms; NULL for unbound OPTIONAL cells)
    rows: list = field(default_factory=list)
    #: "rejected" | "timeout" | "budget" | "parse" | "unsupported"
    #: | "cancelled" | "error" | "internal" — None on success
    error_type: str | None = None
    error: str | None = None
    snapshot_version: int = 0
    #: seconds spent queued before a worker picked the request up
    wait_s: float = 0.0
    #: seconds spent executing
    exec_s: float = 0.0
    stats: QueryStats | None = None


class PendingQuery:
    """Handle to one admitted request (a minimal completion future)."""

    __slots__ = ("query_text", "deadline", "max_join_rows",
                 "submitted_at", "outcome", "_done")

    def __init__(self, query_text: str, deadline: float | None,
                 max_join_rows: int | None) -> None:
        self.query_text = query_text
        self.deadline = deadline
        self.max_join_rows = max_join_rows
        self.submitted_at = time.monotonic()
        self.outcome: QueryOutcome | None = None
        self._done = threading.Event()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> QueryOutcome:
        """Block until the request completes; raises TimeoutError if
        *timeout* seconds pass first."""
        if not self._done.wait(timeout):
            raise TimeoutError("query still pending")
        return self.outcome

    def _resolve(self, outcome: QueryOutcome) -> None:
        self.outcome = outcome
        self._done.set()


class QueryScheduler:
    """Bounded-queue worker pool executing queries against snapshots."""

    def __init__(self, snapshots: SnapshotManager,
                 config: SchedulerConfig | None = None) -> None:
        self.snapshots = snapshots
        self.config = config or SchedulerConfig()
        limit = self.config.queue_limit
        self._queue: queue.Queue = queue.Queue(maxsize=limit or 0)
        self._threads: list[threading.Thread] = []
        self._accepting = False
        self._draining = False
        self._in_flight = 0
        # makes the accepting-check + enqueue atomic against stop(), so
        # no request can slip into the queue after the shutdown drain
        # and hang its caller unresolved forever
        self._admission_lock = threading.Lock()
        self._lock = threading.Lock()
        self._counters = {"submitted": 0, "rejected": 0, "completed": 0,
                          "failed": 0, "timeouts": 0, "budget_exceeded": 0,
                          "cancelled": 0, "worker_errors": 0}
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "QueryScheduler":
        """Spawn the worker pool and start accepting submissions."""
        if self._threads:
            return self
        self._accepting = True
        for index in range(self.config.workers):
            thread = threading.Thread(target=self._worker, daemon=True,
                                      name=f"lbr-worker-{index}")
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` was called."""
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting; already-admitted requests keep running.

        New submits fail with :class:`ShuttingDownError` (the wire
        ``shutting_down`` code) so clients reconnect elsewhere instead
        of retrying against a server that is going away.
        """
        with self._admission_lock:
            self._draining = True

    def drain(self, timeout: float | None = 10.0) -> bool:
        """Wait for the queue and in-flight requests to finish.

        Call :meth:`begin_drain` first.  Returns True when everything
        completed within *timeout* seconds, False when the deadline
        expired with work still pending (the caller decides whether to
        cancel via :meth:`stop`).
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            with self._lock:
                busy = self._in_flight
            if not busy and self._queue.qsize() == 0:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.005)

    def stop(self, cancel_pending: bool = True) -> None:
        """Stop accepting work, drain workers, cancel queued requests."""
        with self._admission_lock:
            # under the admission lock: any submit that already passed
            # its accepting-check has finished its enqueue, so the
            # drain below sees (and cancels) every admitted request
            self._accepting = False
        for _ in self._threads:
            self._queue.put(_STOP)
        still_running = 0
        for thread in self._threads:
            thread.join(timeout=30)
            still_running += thread.is_alive()
        self._threads = []
        if cancel_pending:
            while True:
                try:
                    request = self._queue.get_nowait()
                except queue.Empty:
                    break
                if request is _STOP:
                    continue
                self._count("cancelled")
                request._resolve(QueryOutcome(
                    ok=False, error_type="cancelled",
                    error="scheduler stopped before execution"))
            # the drain above consumed the sentinels of workers still
            # finishing an over-long query; restore one per straggler
            # so they terminate instead of blocking on get() forever
            for _ in range(still_running):
                self._queue.put(_STOP)

    # ------------------------------------------------------------------
    # submission (admission control happens here)
    # ------------------------------------------------------------------

    def submit(self, query_text: str, timeout: object = UNSET,
               max_join_rows: object = UNSET) -> PendingQuery:
        """Admit one query, or raise :class:`AdmissionError`.

        *timeout* (seconds, None = no deadline) and *max_join_rows*
        default to the scheduler config.  Admission is non-blocking: a
        full queue rejects instantly, which is the backpressure signal.
        """
        effective_timeout = (self.config.default_timeout
                             if timeout is UNSET else timeout)
        deadline = (None if effective_timeout is None
                    else time.monotonic() + effective_timeout)
        rows_budget = (self.config.max_join_rows
                       if max_join_rows is UNSET else max_join_rows)
        request = PendingQuery(query_text, deadline, rows_budget)
        with self._admission_lock:
            if self._draining:
                self._count("rejected")
                raise ShuttingDownError("service is shutting down")
            if not self._accepting and self.config.workers > 0:
                raise AdmissionError("scheduler is not running")
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self._count("rejected")
                depth = self._queue.qsize()
                raise AdmissionError(
                    f"admission queue full ({depth}/"
                    f"{self.config.queue_limit} requests queued); "
                    "retry later",
                    queue_depth=depth,
                    queue_limit=self.config.queue_limit) from None
        self._count("submitted")
        return request

    def execute(self, query_text: str, timeout: object = UNSET,
                max_join_rows: object = UNSET,
                wait: float | None = None) -> QueryOutcome:
        """Submit and wait; admission rejections become outcomes."""
        try:
            request = self.submit(query_text, timeout=timeout,
                                  max_join_rows=max_join_rows)
        except ShuttingDownError as exc:
            return QueryOutcome(ok=False, error_type="shutting_down",
                                error=str(exc))
        except AdmissionError as exc:
            return QueryOutcome(ok=False, error_type="rejected",
                                error=str(exc))
        return request.result(timeout=wait)

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Counters, queue depth, and latency percentiles."""
        with self._lock:
            counters = dict(self._counters)
            samples = sorted(self._latencies)
        report: dict = dict(counters)
        report["queue_depth"] = self._queue.qsize()
        report["queue_limit"] = self.config.queue_limit
        report["workers"] = len(self._threads)
        report["in_flight"] = self._in_flight
        report["draining"] = self._draining
        report["latency_samples"] = len(samples)
        report["p50_ms"] = _percentile(samples, 0.50) * 1000
        report["p99_ms"] = _percentile(samples, 0.99) * 1000
        return report

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            request = self._queue.get()
            if request is _STOP:
                return
            with self._lock:
                self._in_flight += 1
            try:
                self._run(request)
            except Exception as exc:  # pragma: no cover - last resort
                # a bug in the scheduler itself must never kill the
                # worker silently: resolve the request and count it so
                # the soak gate fails loudly
                self._count("worker_errors")
                request._resolve(QueryOutcome(
                    ok=False, error_type="internal",
                    error=str(internal_error(exc))))
            except BaseException as exc:
                # KeyboardInterrupt / injected SimulatedCrash: resolve
                # the request so no client hangs, then let it fly — a
                # crash swallowed here would make every fault-injection
                # property vacuous
                self._count("worker_errors")
                request._resolve(QueryOutcome(
                    ok=False, error_type="internal",
                    error=str(internal_error(exc))))
                raise
            finally:
                with self._lock:
                    self._in_flight -= 1

    def _run(self, request: PendingQuery) -> None:
        started = time.monotonic()
        wait_s = started - request.submitted_at
        outcome: QueryOutcome
        if request.deadline is not None and started >= request.deadline:
            self._count("failed", "timeouts")
            outcome = QueryOutcome(
                ok=False, error_type="timeout",
                error="deadline expired while queued", wait_s=wait_s)
            request._resolve(outcome)
            return
        # pin a snapshot: acquire a reference so a concurrent reload
        # cannot close its store (mmap unmap) under this execution; a
        # failed acquire means we lost the race with retirement — the
        # successor is already published, so re-read and try again
        while True:
            snapshot = self.snapshots.current()
            if snapshot.refs is None or snapshot.refs.try_acquire():
                break
        session = snapshot.engine.session(
            max_join_rows=request.max_join_rows,
            deadline=request.deadline)
        try:
            result = session.execute(request.query_text)
        except DeadlineExceededError as exc:
            self._count("failed", "timeouts")
            outcome = self._failure("timeout", exc, snapshot, wait_s,
                                    started)
        except BudgetExceededError as exc:
            self._count("failed", "budget_exceeded")
            outcome = self._failure("budget", exc, snapshot, wait_s,
                                    started)
        except ParseError as exc:
            self._count("failed")
            outcome = self._failure("parse", exc, snapshot, wait_s, started)
        except UnsupportedQueryError as exc:
            self._count("failed")
            outcome = self._failure("unsupported", exc, snapshot, wait_s,
                                    started)
        except ReproError as exc:
            self._count("failed")
            outcome = self._failure("error", exc, snapshot, wait_s, started)
        except Exception as exc:
            # an unhandled engine exception is a bug; typed via the
            # taxonomy and counted separately so the soak job can gate
            # on it
            self._count("failed", "worker_errors")
            outcome = self._failure("internal", internal_error(exc),
                                    snapshot, wait_s, started)
        else:
            exec_s = time.monotonic() - started
            self._count("completed")
            with self._lock:
                self._latencies.append(wait_s + exec_s)
            outcome = QueryOutcome(
                ok=True, variables=result.variables, rows=result.rows,
                snapshot_version=snapshot.version, wait_s=wait_s,
                exec_s=exec_s, stats=session.last_stats)
        finally:
            if snapshot.refs is not None:
                snapshot.refs.release()
        request._resolve(outcome)

    def _failure(self, error_type: str, exc: Exception, snapshot,
                 wait_s: float, started: float) -> QueryOutcome:
        return QueryOutcome(
            ok=False, error_type=error_type,
            error=f"{type(exc).__name__}: {exc}",
            snapshot_version=snapshot.version, wait_s=wait_s,
            exec_s=time.monotonic() - started)

    def _count(self, *names: str) -> None:
        with self._lock:
            for name in names:
                self._counters[name] += 1


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 when no samples exist."""
    if not sorted_samples:
        return 0.0
    rank = min(len(sorted_samples) - 1,
               max(0, round(q * (len(sorted_samples) - 1))))
    return sorted_samples[rank]
