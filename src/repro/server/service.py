"""The embeddable query service: snapshots + scheduler as one object.

This is what the TCP front door, the soak gate, and the throughput
benchmark drive.  One :class:`QueryService` owns a
:class:`~repro.server.snapshot.SnapshotManager` (dataset publication)
and a running :class:`~repro.server.scheduler.QueryScheduler`
(admission + execution); ``load_graph``/``load_store`` perform the
copy-on-write snapshot swap while queries keep flowing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bitmat.store import BitMatStore
from ..rdf.graph import Graph
from ..sync import UNSET
from .scheduler import QueryOutcome, QueryScheduler, SchedulerConfig
from .snapshot import Snapshot, SnapshotManager


@dataclass(frozen=True)
class ServiceConfig(SchedulerConfig):
    """Knobs of one query service.

    Today exactly the scheduler's admission/budget policy (fields and
    defaults inherited from :class:`SchedulerConfig`, which the
    scheduler consumes directly — one definition, no mapping layer);
    service-only knobs would be added here.
    """


class QueryService:
    """A running concurrent query service over published snapshots."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.snapshots = SnapshotManager()
        self.scheduler = QueryScheduler(self.snapshots, self.config)
        self.scheduler.start()
        self._closed = False

    @classmethod
    def from_graph(cls, graph: Graph,
                   config: ServiceConfig | None = None) -> "QueryService":
        service = cls(config)
        service.load_graph(graph)
        return service

    @classmethod
    def from_store(cls, store: BitMatStore,
                   config: ServiceConfig | None = None) -> "QueryService":
        service = cls(config)
        service.load_store(store)
        return service

    # ------------------------------------------------------------------
    # dataset publication (copy-on-write swap)
    # ------------------------------------------------------------------

    def load_graph(self, graph: Graph) -> Snapshot:
        """Index and publish *graph*; in-flight queries are unaffected."""
        return self.snapshots.publish_graph(graph)

    def load_store(self, store: BitMatStore) -> Snapshot:
        """Publish an already-built store (frozen in place)."""
        return self.snapshots.publish_store(store)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def execute(self, query_text: str, timeout: object = UNSET,
                max_join_rows: object = UNSET) -> QueryOutcome:
        """Submit one query and wait for its outcome (never raises for
        per-query failures: rejections and errors come back as failed
        outcomes with an ``error_type``)."""
        return self.scheduler.execute(query_text, timeout=timeout,
                                      max_join_rows=max_join_rows)

    def submit(self, query_text: str, timeout: object = UNSET,
               max_join_rows: object = UNSET):
        """Admit one query; raises AdmissionError on backpressure."""
        return self.scheduler.submit(query_text, timeout=timeout,
                                     max_join_rows=max_join_rows)

    # ------------------------------------------------------------------
    # monitoring / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Scheduler, snapshot, and cache statistics for monitoring."""
        report: dict = {"scheduler": self.scheduler.stats()}
        if self.snapshots.version:
            snapshot = self.snapshots.current()
            report["snapshot"] = snapshot.describe()
            report["plan_cache"] = snapshot.engine.plan_cache_stats()
            report["frontend_cache"] = snapshot.engine.frontend_cache_stats()
            report["compile"] = snapshot.engine.compile_stats()
            report["store_caches"] = snapshot.store.cache_stats()
        else:
            report["snapshot"] = None
        return report

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.scheduler.stop(cancel_pending=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
