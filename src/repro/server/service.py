"""The embeddable query service: snapshots + scheduler as one object.

This is what the TCP front door, the soak gate, and the throughput
benchmark drive.  One :class:`QueryService` owns a
:class:`~repro.server.snapshot.SnapshotManager` (dataset publication)
and a running :class:`~repro.server.scheduler.QueryScheduler`
(admission + execution); ``load_graph``/``load_store`` perform the
copy-on-write snapshot swap while queries keep flowing.

Attaching a :class:`~repro.update.live.LiveGraphStore` makes the
service writable: :meth:`QueryService.update_batch` commits through
the live store's WAL and every committed batch (and compaction swap)
republishes a snapshot, so readers always see an atomic, durable
state.  Update admission is a bounded semaphore — writers queue
briefly, then get backpressure — and :meth:`begin_shutdown` /
:meth:`drain` implement graceful shutdown: new work is refused with
the ``shutting_down`` code while admitted queries finish and the WAL
is fsynced.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..bitmat.store import BitMatStore
from ..exceptions import AdmissionError, ShuttingDownError, StorageError
from ..rdf.graph import Graph
from ..sync import UNSET
from .scheduler import QueryOutcome, QueryScheduler, SchedulerConfig
from .snapshot import Snapshot, SnapshotManager


@dataclass(frozen=True)
class ServiceConfig(SchedulerConfig):
    """Knobs of one query service.

    Inherits the scheduler's admission/budget policy (consumed by the
    scheduler directly — one definition, no mapping layer) and adds
    the service-only knobs.
    """

    #: concurrent update batches admitted before writers are rejected
    #: with backpressure (updates serialize on the WAL writer lock, so
    #: this bounds the writer convoy, not the throughput)
    update_slots: int = 8


class QueryService:
    """A running concurrent query service over published snapshots."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.snapshots = SnapshotManager()
        self.scheduler = QueryScheduler(self.snapshots, self.config)
        self.scheduler.start()
        self.live = None
        self._update_slots = threading.BoundedSemaphore(
            max(1, self.config.update_slots))
        self._closed = False

    @classmethod
    def from_graph(cls, graph: Graph,
                   config: ServiceConfig | None = None) -> "QueryService":
        service = cls(config)
        service.load_graph(graph)
        return service

    @classmethod
    def from_store(cls, store: BitMatStore,
                   config: ServiceConfig | None = None) -> "QueryService":
        service = cls(config)
        service.load_store(store)
        return service

    # ------------------------------------------------------------------
    # dataset publication (copy-on-write swap)
    # ------------------------------------------------------------------

    def load_graph(self, graph: Graph) -> Snapshot:
        """Index and publish *graph*; in-flight queries are unaffected."""
        return self.snapshots.publish_graph(graph)

    def load_store(self, store: BitMatStore) -> Snapshot:
        """Publish an already-built store (frozen in place)."""
        return self.snapshots.publish_store(store)

    def attach_live_store(self, live) -> Snapshot:
        """Serve (and accept updates for) a LiveGraphStore.

        The live store's publications — every committed batch, every
        compaction swap — flow through the snapshot manager from here
        on; the current recovered state is published immediately.
        """
        self.live = live
        live.on_publish = self.snapshots.publish_store
        # publish_store adopts a reference; the live store keeps its
        # own, so hand the snapshot machinery one of its own to close
        return self.snapshots.publish_store(live.current_store().retain())

    # ------------------------------------------------------------------
    # updates (live store required)
    # ------------------------------------------------------------------

    def update_batch(self, adds, deletes) -> dict:
        """Durably commit one update batch and publish its snapshot.

        Raises :class:`StorageError` when no live store is attached,
        :class:`ShuttingDownError` while draining, and
        :class:`AdmissionError` when too many updates are in flight.
        Returns the live store's commit summary with the published
        snapshot version added.
        """
        if self.live is None:
            raise StorageError(
                "service is read-only: no live store attached")
        if self.scheduler.draining:
            raise ShuttingDownError("service is shutting down")
        if not self._update_slots.acquire(blocking=False):
            raise AdmissionError(
                "too many update batches in flight; retry later",
                queue_depth=self.config.update_slots,
                queue_limit=self.config.update_slots)
        try:
            summary = self.live.apply_batch(adds, deletes)
        finally:
            self._update_slots.release()
        summary["snapshot_version"] = self.snapshots.version
        return summary

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def execute(self, query_text: str, timeout: object = UNSET,
                max_join_rows: object = UNSET) -> QueryOutcome:
        """Submit one query and wait for its outcome (never raises for
        per-query failures: rejections and errors come back as failed
        outcomes with an ``error_type``)."""
        return self.scheduler.execute(query_text, timeout=timeout,
                                      max_join_rows=max_join_rows)

    def submit(self, query_text: str, timeout: object = UNSET,
               max_join_rows: object = UNSET):
        """Admit one query; raises AdmissionError on backpressure."""
        return self.scheduler.submit(query_text, timeout=timeout,
                                     max_join_rows=max_join_rows)

    # ------------------------------------------------------------------
    # monitoring / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Scheduler, snapshot, and cache statistics for monitoring."""
        report: dict = {"scheduler": self.scheduler.stats()}
        if self.live is not None:
            report["live"] = self.live.stats()
        if self.snapshots.version:
            snapshot = self.snapshots.current()
            report["snapshot"] = snapshot.describe()
            report["plan_cache"] = snapshot.engine.plan_cache_stats()
            report["frontend_cache"] = snapshot.engine.frontend_cache_stats()
            report["compile"] = snapshot.engine.compile_stats()
            report["store_caches"] = snapshot.store.cache_stats()
        else:
            report["snapshot"] = None
        return report

    def begin_shutdown(self) -> None:
        """Refuse new work with the ``shutting_down`` code; in-flight
        queries keep running until :meth:`drain` or :meth:`close`."""
        self.scheduler.begin_drain()

    def drain(self, timeout: float | None = 10.0) -> bool:
        """Wait for admitted queries to finish (after
        :meth:`begin_shutdown`); True when everything completed in
        time."""
        return self.scheduler.drain(timeout)

    def shutdown_gracefully(self, drain_timeout: float | None = 10.0,
                            ) -> bool:
        """Drain, flush the WAL, and stop; True on a clean drain."""
        self.begin_shutdown()
        drained = self.drain(drain_timeout)
        self.close()
        return drained

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.scheduler.stop(cancel_pending=True)
            if self.live is not None:
                # flushes + fsyncs the WAL and stops the compactor
                self.live.close()
            # release the current snapshot's being-current reference so
            # mmap-backed stores unmap instead of leaking the handle
            self.snapshots.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
