"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write one of the evaluation datasets as N-Triples;
* ``index``    — build a BitMat store image from an N-Triples file;
* ``freeze``   — write the memory-mapped ``LBRMMAP1`` image whose
  per-predicate extents ``serve --mmap`` materializes lazily;
* ``query``    — run a SPARQL query over a data file or store image;
* ``info``     — dataset characteristics (the Table 6.1 columns);
* ``bench``    — run a full Appendix E query suite with all engines
  and print the paper-style table;
* ``fuzz``     — differential fuzzing: run seeded random (graph,
  query) cases across the engine matrix against the naive oracle,
  shrink failures, and optionally save them into the regression
  corpus; ``--replay`` re-runs a saved corpus instead;
* ``serve``    — run the concurrent query service: an
  admission-controlled worker pool over snapshot-isolated engine
  sessions, speaking newline-delimited JSON over a TCP socket;
* ``lint``     — run the project-invariant static checkers
  (:mod:`repro.analysis`): lock discipline, resource lifecycles,
  planner determinism, durability protocol, exception taxonomy.
  ``lbr lint --changed-only`` scopes the pass to files touched per
  ``git diff`` for fast pre-commit runs; ``--format json`` emits the
  machine-readable report CI archives.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .baselines import ColumnStoreEngine, NaiveEngine
from .bitmat.store import BitMatStore
from .core.engine import LBREngine
from .rdf import ntriples
from .rdf.graph import Graph
from .rdf.terms import NULL


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Left Bit Right (LBR) — SPARQL OPTIONAL-pattern "
                    "query processor (SIGMOD 2015 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate an evaluation dataset as N-Triples")
    generate.add_argument("dataset",
                          choices=["lubm", "uniprot", "dbpedia"])
    generate.add_argument("--out", required=True,
                          help="output N-Triples file")
    generate.add_argument("--scale", type=float, default=1.0,
                          help="relative size multiplier (default 1.0)")
    generate.add_argument("--seed", type=int, default=None)

    index = commands.add_parser(
        "index", help="build a BitMat store image from N-Triples")
    index.add_argument("data", help="input N-Triples file")
    index.add_argument("--out", required=True, help="store image path")

    freeze = commands.add_parser(
        "freeze",
        help="write a memory-mapped frozen store image (LBRMMAP1)",
        description="Build (or convert) a dataset into the LBRMMAP1 "
                    "format: each predicate's BitMat pairs live in an "
                    "independently checksummed, page-aligned extent, so "
                    "'serve --mmap' opens the file without decoding "
                    "anything and materializes predicates lazily as "
                    "queries touch them.")
    freeze.add_argument("data",
                        help="N-Triples file or LBRSTORE/LBRMMAP image")
    freeze.add_argument("--out", required=True,
                        help="output .lbrm image path")
    freeze.add_argument("--page-shift", type=int, default=12,
                        help="log2 of the extent alignment "
                             "(default 12 = 4 KiB pages)")

    query = commands.add_parser("query", help="run a SPARQL query")
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument("--data", help="N-Triples file")
    source.add_argument("--store", help="BitMat store image")
    query.add_argument("--query-file", help="file containing the query")
    query.add_argument("--query", help="query text")
    query.add_argument("--engine", default="lbr",
                       choices=["lbr", "naive", "columnstore"])
    query.add_argument("--explain", action="store_true",
                       help="print the LBR plan instead of executing")
    query.add_argument("--stats", action="store_true",
                       help="print the Table 6.x metrics after the rows")
    query.add_argument("--limit", type=int, default=None,
                       help="print at most N rows")

    info = commands.add_parser(
        "info", help="dataset characteristics (Table 6.1 columns)")
    info.add_argument("data", help="N-Triples file or store image")

    bench = commands.add_parser(
        "bench", help="run an Appendix E suite on all three engines")
    bench.add_argument("dataset", choices=["lubm", "uniprot", "dbpedia"])
    bench.add_argument("--runs", type=int, default=3)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzzing against the naive oracle",
        description="Generate seeded random (graph, query) pairs, run "
                    "each on the full engine matrix (LBR with pruning "
                    "on/off, plan-cache cold/warm, the raw unpruned "
                    "join, and the NULL-intolerant oracle where "
                    "applicable), and diff every result against the "
                    "reference evaluation.  Failing cases are "
                    "delta-debugged to a minimal counterexample.")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (default 0); the case stream "
                           "is a pure function of it")
    fuzz.add_argument("--budget", type=int, default=200,
                      help="number of cases to run (default 200)")
    fuzz.add_argument("--seconds", type=float, default=None,
                      help="optional wall-clock cap for interactive "
                           "runs; CI gates should use a fixed --budget "
                           "instead so the covered case set does not "
                           "depend on machine speed")
    fuzz.add_argument("--shape", default="mix",
                      choices=["mix", "uniform", "star", "clustered"],
                      help="graph shape (default: mix of all three)")
    fuzz.add_argument("--profile", default="full",
                      choices=["wd", "full", "nul", "updates", "ordering"],
                      help="query profile: 'wd' well-designed only, "
                           "'full' adds non-well-designed nesting, "
                           "'nul' stresses nullification/best-match, "
                           "'updates' mutates a live store with WAL "
                           "batches and diffs against a rebuilt store, "
                           "'ordering' diffs cost-based vs heuristic "
                           "join ordering (frozen vs unfrozen store)")
    fuzz.add_argument("--min-triples", type=int, default=8)
    fuzz.add_argument("--max-triples", type=int, default=60,
                      help="graph size range per case (default 8..60)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failing cases without minimizing")
    fuzz.add_argument("--save-failing", metavar="DIR", default=None,
                      help="write shrunk failing cases as corpus JSON "
                           "into DIR")
    fuzz.add_argument("--replay", metavar="DIR", default=None,
                      help="replay a corpus directory instead of "
                           "generating cases")
    fuzz.add_argument("--inject-bug", default=None,
                      choices=["nullification"],
                      help="deliberately break an engine component to "
                           "validate that the harness catches it")

    serve = commands.add_parser(
        "serve",
        help="serve SPARQL queries over a TCP socket (NDJSON)",
        description="Run the concurrent query service: queries from "
                    "any number of client connections are admitted "
                    "into a bounded queue and executed by a worker "
                    "pool against the current immutable dataset "
                    "snapshot; a 'reload' request swaps in a new "
                    "snapshot without disturbing in-flight queries.")
    serve_source = serve.add_mutually_exclusive_group(required=False)
    serve_source.add_argument("--data", help="N-Triples file")
    serve_source.add_argument("--store", help="BitMat store image")
    serve.add_argument("--live-dir", default=None,
                       help="directory for a writable live store "
                            "(WAL + frozen base images); enables the "
                            "'update' op.  --data/--store seed it on "
                            "first creation; an existing directory is "
                            "recovered from its WAL")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8815,
                       help="TCP port (0 = pick an ephemeral port; "
                            "the bound port is printed and written to "
                            "--port-file)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port to this file once "
                            "listening (for scripted callers)")
    serve.add_argument("--workers", type=int, default=4,
                       help="query worker threads (default 4)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="admission queue bound; a full queue "
                            "rejects new queries immediately "
                            "(default 64)")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="default per-query deadline in seconds, "
                            "measured from admission (default 30)")
    serve.add_argument("--max-join-rows", type=int, default=1_000_000,
                       help="default per-query join output budget "
                            "(default 1,000,000)")
    serve.add_argument("--no-shutdown-op", action="store_true",
                       help="reject the protocol 'shutdown' op "
                            "(stop with SIGINT instead)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="graceful-shutdown deadline: seconds to "
                            "wait for in-flight queries before closing "
                            "(default 10)")
    serve.add_argument("--mmap", action="store_true",
                       help="serve the dataset through the lazy "
                            "memory-mapped store: an LBRMMAP1 --store "
                            "image is mapped directly (no decode at "
                            "startup); other sources are converted "
                            "in-process first.  Live stores already "
                            "write LBRMMAP1 base images by default")

    lint = commands.add_parser(
        "lint",
        help="run the project-invariant static checkers "
             "(repro.analysis)",
        description="Walk the source ASTs and enforce the project "
                    "invariants ordinary tests only catch by luck: "
                    "lock discipline in the concurrent service, "
                    "retain()/close() pairing on refcounted stores, "
                    "hash-seed-independent ordering in the planner, "
                    "the tmp->fsync->rename durability protocol, and "
                    "the typed exception taxonomy.  Exits 1 when any "
                    "unsuppressed finding remains.")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to check (default: "
                           "[tool.lbr.lint] paths from pyproject.toml)")
    lint.add_argument("--root", default=".",
                      help="repo root holding pyproject.toml "
                           "(default .)")
    lint.add_argument("--format", choices=["text", "json"],
                      default="text", dest="lint_format",
                      help="report format (default text)")
    lint.add_argument("--out", default=None,
                      help="also write the report to this file")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run "
                           "(default: all)")
    lint.add_argument("--changed-only", action="store_true",
                      help="check only files changed vs --base "
                           "(git diff + untracked)")
    lint.add_argument("--base", default="HEAD",
                      help="git base for --changed-only "
                           "(default HEAD)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list rule ids and exit")
    lint.add_argument("--selfcheck", action="store_true",
                      help="run the planted-violation fixture corpus "
                           "and exit")
    return parser


def _generate(args) -> int:
    from .datasets import (DBPediaConfig, LUBMConfig, UniProtConfig,
                           generate_dbpedia, generate_lubm,
                           generate_uniprot)
    scale = args.scale
    if args.dataset == "lubm":
        config = LUBMConfig()
        config.universities = max(1, round(config.universities * scale))
        if args.seed is not None:
            config.seed = args.seed
        graph = generate_lubm(config)
    elif args.dataset == "uniprot":
        config = UniProtConfig()
        config.proteins = max(10, round(config.proteins * scale))
        if args.seed is not None:
            config.seed = args.seed
        graph = generate_uniprot(config)
    else:
        config = DBPediaConfig()
        for attribute in ("places", "settlements", "airports",
                          "soccer_players", "persons", "companies",
                          "vehicles"):
            setattr(config, attribute,
                    max(5, round(getattr(config, attribute) * scale)))
        if args.seed is not None:
            config.seed = args.seed
        graph = generate_dbpedia(config)
    written = ntriples.dump(graph, args.out)
    print(f"wrote {written:,} triples to {args.out}")
    return 0


def _index(args) -> int:
    graph = ntriples.load(args.data)
    store = BitMatStore.build(graph)
    size = store.save(args.out)
    print(f"indexed {store.num_triples:,} triples "
          f"(|Vs|={store.num_subjects:,}, |Vp|={store.num_predicates:,}, "
          f"|Vo|={store.num_objects:,}, |Vso|={store.num_shared:,}) "
          f"-> {args.out} ({size:,} bytes)")
    return 0


def _freeze(args) -> int:
    from .bitmat.backend import is_store_image
    from .bitmat.mmapstore import save_mmap_store

    if is_store_image(args.data):
        store = BitMatStore.load(args.data)
    else:
        store = BitMatStore.build(ntriples.load(args.data))
    size = save_mmap_store(store, args.out, page_shift=args.page_shift)
    print(f"froze {store.num_triples:,} triples "
          f"({store.num_predicates:,} predicate extents, "
          f"{1 << args.page_shift}-byte aligned) "
          f"-> {args.out} ({size:,} bytes)")
    store.close()
    return 0


def _load_store(args) -> tuple[BitMatStore | None, Graph | None]:
    if args.store:
        return BitMatStore.load(args.store), None
    graph = ntriples.load(args.data)
    return None, graph


def _query(args) -> int:
    if not args.query_file and not args.query:
        print("error: provide --query or --query-file", file=sys.stderr)
        return 2
    if args.query_file:
        with open(args.query_file, encoding="utf-8") as handle:
            query_text = handle.read()
    else:
        query_text = args.query

    store, graph = _load_store(args)
    if args.engine in ("naive", "columnstore") and graph is None:
        print("error: the baseline engines need --data (an N-Triples "
              "file), not a store image", file=sys.stderr)
        return 2
    if store is None and args.engine == "lbr":
        store = BitMatStore.build(graph)

    if args.explain:
        engine = LBREngine(store)
        print(engine.explain(query_text))
        return 0

    if args.engine == "lbr":
        engine = LBREngine(store)
    elif args.engine == "naive":
        engine = NaiveEngine(graph)
    else:
        engine = ColumnStoreEngine(graph)
    result = engine.execute(query_text)

    print("\t".join(f"?{v}" for v in result.variables))
    for index, row in enumerate(result):
        if args.limit is not None and index >= args.limit:
            print(f"... ({len(result) - args.limit:,} more rows)")
            break
        print("\t".join("NULL" if value is NULL
                        else getattr(value, "n3", str(value))
                        for value in row))
    print(f"\n{len(result):,} rows", file=sys.stderr)

    if args.stats and args.engine == "lbr":
        stats = engine.last_stats
        print(f"Tplan={stats.t_plan:.4f}s Tinit={stats.t_init:.4f}s "
              f"Tprune={stats.t_prune:.4f}s "
              f"Ttotal={stats.t_total:.4f}s", file=sys.stderr)
        print(f"initial={stats.initial_triples:,} "
              f"pruned-to={stats.triples_after_pruning:,} "
              f"results-with-nulls={stats.results_with_nulls:,} "
              f"best-match={stats.best_match_required}", file=sys.stderr)
    return 0


def _info(args) -> int:
    if args.data.endswith((".lbr", ".lbrm", ".store", ".bin")):
        store = BitMatStore.load(args.data)
        print(f"triples={store.num_triples:,} "
              f"subjects={store.num_subjects:,} "
              f"predicates={store.num_predicates:,} "
              f"objects={store.num_objects:,} "
              f"shared={store.num_shared:,}")
        return 0
    graph = ntriples.load(args.data)
    chars = graph.characteristics()
    print(f"triples={chars['triples']:,} subjects={chars['subjects']:,} "
          f"predicates={chars['predicates']:,} "
          f"objects={chars['objects']:,}")
    return 0


def _bench(args) -> int:
    from .bench import BenchmarkHarness, format_query_table
    from .datasets import (DBPEDIA_QUERIES, LUBM_QUERIES, UNIPROT_QUERIES,
                           generate_dbpedia, generate_lubm,
                           generate_uniprot)
    generators = {"lubm": (generate_lubm, LUBM_QUERIES, "LUBM"),
                  "uniprot": (generate_uniprot, UNIPROT_QUERIES, "UniProt"),
                  "dbpedia": (generate_dbpedia, DBPEDIA_QUERIES,
                              "DBPedia")}
    generate, queries, label = generators[args.dataset]
    graph = generate()
    harness = BenchmarkHarness(label, graph, runs=args.runs)
    suite = harness.run_suite(queries)
    print(format_query_table(suite))
    return 0


def _fuzz(args) -> int:
    from contextlib import nullcontext

    from .fuzz import (CampaignConfig, format_campaign_report,
                       inject_bug, load_corpus, run_campaign, run_case)

    injection = (inject_bug(args.inject_bug) if args.inject_bug
                 else nullcontext())

    if args.replay:
        entries = load_corpus(args.replay)
        if not entries:
            print(f"error: no corpus cases under {args.replay}",
                  file=sys.stderr)
            return 2
        failures = 0
        with injection:
            for entry in entries:
                result = run_case(entry.case)
                ok = result.status == entry.expect
                status = result.status if ok else (
                    f"{result.status} (expected {entry.expect})")
                print(f"{entry.case.name or entry.path}: {status}")
                for disagreement in result.disagreements:
                    print(f"  {disagreement.describe()}")
                if not ok:
                    failures += 1
        print(f"{len(entries)} corpus cases, {failures} failing")
        return 1 if failures else 0

    config = CampaignConfig(
        seed=args.seed, budget=args.budget, seconds=args.seconds,
        shape=args.shape, profile=args.profile,
        min_triples=args.min_triples, max_triples=args.max_triples,
        shrink_failures=not args.no_shrink,
        save_failing=args.save_failing)
    with injection:
        report = run_campaign(config, log=print)
    print(format_campaign_report(report))
    return 0 if report.ok else 1


def _as_mmap_store(store: BitMatStore) -> BitMatStore:
    """The store as a lazy mmap-format store (no-op when it already is).

    An eager store gets re-serialized to LBRMMAP1 bytes in process —
    correctness-equivalent, but the decode already happened; for a true
    lazy cold start point --store at an image made by ``lbr freeze``.
    """
    from .bitmat.mmapstore import MmapStore, dump_mmap_bytes

    if isinstance(store, MmapStore):
        return store
    converted = MmapStore.from_bytes(dump_mmap_bytes(store),
                                     source="<converted>")
    store.close()
    return converted


def _serve(args) -> int:
    from .server import LBRServer, QueryService, ServiceConfig

    config = ServiceConfig(
        workers=args.workers,
        queue_limit=args.queue_limit if args.queue_limit > 0 else None,
        default_timeout=args.timeout if args.timeout > 0 else None,
        max_join_rows=(args.max_join_rows
                       if args.max_join_rows > 0 else None))
    if not args.live_dir and not args.store and not args.data:
        print("error: provide --data, --store, or --live-dir",
              file=sys.stderr)
        return 2
    service = QueryService(config)
    live = None
    if args.live_dir:
        from .update import LiveGraphStore
        initial = None
        if args.store:
            initial = BitMatStore.load(args.store)
        elif args.data:
            initial = ntriples.load(args.data)
        live = LiveGraphStore.open(args.live_dir, initial=initial)
        service.attach_live_store(live)
    elif args.store:
        store = BitMatStore.load(args.store)
        if args.mmap:
            store = _as_mmap_store(store)
        service.load_store(store)
    else:
        store = BitMatStore.build(ntriples.load(args.data))
        if args.mmap:
            store = _as_mmap_store(store)
        service.load_store(store)
    snapshot = service.snapshots.current()
    server = LBRServer(service, host=args.host, port=args.port,
                       allow_shutdown=not args.no_shutdown_op,
                       drain_timeout=(args.drain_timeout
                                      if args.drain_timeout > 0
                                      else None))
    host, port = server.address
    mode = f"live store at {args.live_dir}" if live else "read-only"
    if args.mmap:
        mode += ", mmap"
    print(f"lbr serve: {snapshot.store.num_triples:,} triples "
          f"(snapshot v{snapshot.version}), {args.workers} workers, "
          f"queue limit {args.queue_limit}, {mode}", flush=True)
    print(f"listening on {host}:{port}", flush=True)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        server.shutdown_gracefully()
    finally:
        server.close()
        service.close()
    print("lbr serve: stopped", flush=True)
    return 0


def _lint(args) -> int:
    from .analysis.runner import main as lint_main
    forwarded: list[str] = list(args.paths)
    forwarded += ["--root", args.root, "--format", args.lint_format,
                  "--base", args.base]
    if args.out:
        forwarded += ["--out", args.out]
    if args.rules:
        forwarded += ["--rules", args.rules]
    if args.changed_only:
        forwarded.append("--changed-only")
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.selfcheck:
        forwarded.append("--selfcheck")
    return lint_main(forwarded)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {"generate": _generate, "index": _index,
                "freeze": _freeze, "query": _query,
                "info": _info, "bench": _bench, "fuzz": _fuzz,
                "serve": _serve, "lint": _lint}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
