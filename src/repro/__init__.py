"""Left Bit Right (LBR) — SPARQL OPTIONAL-pattern query processing.

A complete reproduction of *"Left Bit Right: For SPARQL Join Queries
with OPTIONAL Patterns (Left-outer-joins)"* (Medha Atre, SIGMOD 2015):
compressed BitMat indexes, the graph-of-supernodes query representation,
semi-join pruning over the graph of join variables, and the multi-way
pipelined join — plus the baselines and datasets the paper evaluates
against.

Quickstart::

    from repro import Graph, BitMatStore, LBREngine, Triple, URI

    graph = Graph()
    graph.add(Triple(URI("ex:Jerry"), URI("ex:hasFriend"), URI("ex:Julia")))
    store = BitMatStore.build(graph)
    engine = LBREngine(store)
    for row in engine.execute("SELECT * WHERE { ?a <ex:hasFriend> ?b }"):
        print(row)
"""

from .baselines import ColumnStoreEngine, NaiveEngine
from .bitmat import BitMat, BitMatStore, BitVector
from .core import EngineSession, LBREngine, QueryStats, ResultSet
from .exceptions import (DictionaryError, NotWellDesignedError, ParseError,
                         ReproError, StorageError, UnsupportedQueryError)
from .rdf import (NULL, BNode, Dictionary, Graph, Literal, Namespace, Term,
                  Triple, URI, Variable)
from .sparql import parse_query

__version__ = "1.0.0"

__all__ = [
    "BNode", "BitMat", "BitMatStore", "BitVector", "ColumnStoreEngine",
    "Dictionary", "DictionaryError", "EngineSession", "Graph",
    "LBREngine", "Literal",
    "NULL", "Namespace", "NaiveEngine", "NotWellDesignedError",
    "ParseError", "QueryStats", "ReproError", "ResultSet", "StorageError",
    "Term", "Triple", "URI", "UnsupportedQueryError", "Variable",
    "__version__", "parse_query",
]
