"""Delta-debugging shrinker for failing (graph, query) pairs.

Given a failing :class:`~repro.fuzz.oracle.FuzzCase` and a predicate
("does this case still fail?"), the shrinker alternates two phases
until a fixpoint:

* **graph shrinking** — Zeller-style ddmin over the triple list:
  repeatedly try to keep only one chunk, then to drop one chunk,
  halving chunk granularity until single triples;
* **query shrinking** — greedy structural simplification of the parsed
  algebra tree, trying every single-step rewrite and keeping the first
  that still fails:

  - collapse an OPTIONAL block (``LeftJoin → left``),
  - keep only one UNION branch (``Union → left`` / ``right``),
  - strip a FILTER (``Filter → pattern``),
  - drop one triple pattern from a BGP,
  - drop solution modifiers (DISTINCT, projection, ORDER BY,
    LIMIT/OFFSET — all together, since windows need the ORDER BY).

Every candidate is re-serialized to SPARQL and re-parsed before the
predicate runs, so the shrunk case is exactly as replayable as the
original.  Candidates that leave the supported fragment simply make
the predicate return False and are discarded — the shrinker needs no
knowledge of the engine's fragment limits.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..exceptions import ReproError
from ..sparql.ast import (BGP, Filter, Join, LeftJoin, Pattern, Query,
                          Union, simplify)
from ..sparql.parser import parse_query
from .oracle import FuzzCase

Predicate = Callable[[FuzzCase], bool]


def shrink(case: FuzzCase, still_fails: Predicate,
           max_rounds: int = 12) -> FuzzCase:
    """Minimize *case* while *still_fails* holds.

    The returned case satisfies the predicate (the original is returned
    unchanged if it unexpectedly stopped failing).
    """
    if not _safe(still_fails, case):
        return case
    current = case
    for _ in range(max_rounds):
        before = _size(current)
        current = _shrink_graph(current, still_fails)
        current = _shrink_query(current, still_fails)
        if _size(current) == before:
            break
    return current


def _size(case: FuzzCase) -> tuple[int, int]:
    return (len(case.triples), len(case.query_text))


def _safe(predicate: Predicate, case: FuzzCase) -> bool:
    """Predicate guarded against cases the engines reject outright."""
    try:
        return bool(predicate(case))
    except ReproError:
        return False


# ----------------------------------------------------------------------
# graph: ddmin over triples
# ----------------------------------------------------------------------

def _shrink_graph(case: FuzzCase, still_fails: Predicate) -> FuzzCase:
    triples = list(case.triples)
    chunks = 2
    while len(triples) >= 2:
        chunk_size = max(1, len(triples) // chunks)
        subsets = [triples[i:i + chunk_size]
                   for i in range(0, len(triples), chunk_size)]
        reduced = False
        # try each chunk alone, then each complement
        for candidate in _ddmin_candidates(subsets):
            trial = FuzzCase(query_text=case.query_text,
                             triples=tuple(candidate), name=case.name,
                             description=case.description)
            if _safe(still_fails, trial):
                triples = candidate
                chunks = max(chunks - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk_size == 1:
                break
            chunks = min(chunks * 2, len(triples))
    return FuzzCase(query_text=case.query_text, triples=tuple(triples),
                    name=case.name, description=case.description)


def _ddmin_candidates(subsets: list[list]) -> Iterator[list]:
    if len(subsets) <= 1:
        return
    for index in range(len(subsets)):
        yield subsets[index]
    if len(subsets) > 2:
        for index in range(len(subsets)):
            complement: list = []
            for other, subset in enumerate(subsets):
                if other != index:
                    complement.extend(subset)
            yield complement
    elif len(subsets) == 2:
        # complements equal the two subsets already yielded
        pass


# ----------------------------------------------------------------------
# query: greedy structural simplification
# ----------------------------------------------------------------------

def _shrink_query(case: FuzzCase, still_fails: Predicate) -> FuzzCase:
    progress = True
    current = case
    while progress:
        progress = False
        query = parse_query(current.query_text)
        for variant in _query_variants(query):
            trial = FuzzCase(query_text=variant.to_sparql(),
                             triples=current.triples, name=current.name,
                             description=current.description)
            if trial.query_text == current.query_text:
                continue
            if _safe(still_fails, trial):
                current = trial
                progress = True
                break
    return current


def _query_variants(query: Query) -> Iterator[Query]:
    """All single-step simplifications of *query*, simplest first."""
    for pattern in _pattern_variants(query.pattern):
        yield Query(pattern=simplify(pattern), select=query.select,
                    distinct=query.distinct, order_by=query.order_by,
                    limit=query.limit, offset=query.offset)
    if (query.select is not None or query.distinct or query.order_by
            or query.limit is not None or query.offset):
        yield Query(pattern=query.pattern)


def _pattern_variants(node: Pattern) -> Iterator[Pattern]:
    """Every pattern obtainable by one structural simplification."""
    if isinstance(node, BGP):
        if len(node.patterns) > 1:
            for index in range(len(node.patterns)):
                yield BGP(node.patterns[:index]
                          + node.patterns[index + 1:])
        return
    if isinstance(node, LeftJoin):
        yield node.left  # collapse the OPTIONAL block entirely
        yield node.right  # or keep only the block, made mandatory
        for left in _pattern_variants(node.left):
            yield LeftJoin(left, node.right)
        for right in _pattern_variants(node.right):
            yield LeftJoin(node.left, right)
        return
    if isinstance(node, Union):
        yield node.left
        yield node.right
        for left in _pattern_variants(node.left):
            yield Union(left, node.right)
        for right in _pattern_variants(node.right):
            yield Union(node.left, right)
        return
    if isinstance(node, Join):
        yield node.left
        yield node.right
        for left in _pattern_variants(node.left):
            yield Join(left, node.right)
        for right in _pattern_variants(node.right):
            yield Join(node.left, right)
        return
    if isinstance(node, Filter):
        yield node.pattern  # strip the filter
        for inner in _pattern_variants(node.pattern):
            yield Filter(node.expr, inner)
        return
