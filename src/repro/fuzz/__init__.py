"""Differential fuzzing subsystem (``lbr fuzz``).

Seeded generators for RDF graphs and full-surface SPARQL queries, a
triple-engine differential oracle harness, a delta-debugging shrinker,
and the persisted regression corpus that tier-1 replays.  See the
"Testing architecture" section of DESIGN.md for the rationale.
"""

from .corpus import (CorpusEntry, case_from_json, case_to_json,
                     load_corpus, save_case)
from .graphgen import SHAPES, GraphSpec, Vocabulary, generate_graph
from .oracle import (ENGINE_LABELS, CaseResult, Disagreement, FuzzCase,
                     reference_execute, run_case)
from .querygen import PROFILES, QueryGenerator, QuerySpec
from .runner import (INJECTABLE_BUGS, CampaignConfig, CampaignReport,
                     format_campaign_report, generate_case, inject_bug,
                     run_campaign, run_ordering_case)
from .shrink import shrink

__all__ = [
    "CampaignConfig", "CampaignReport", "CaseResult", "CorpusEntry",
    "Disagreement", "ENGINE_LABELS", "FuzzCase", "GraphSpec",
    "INJECTABLE_BUGS", "PROFILES", "QueryGenerator", "QuerySpec",
    "SHAPES", "Vocabulary", "case_from_json", "case_to_json",
    "format_campaign_report", "generate_case", "generate_graph",
    "inject_bug", "load_corpus", "reference_execute", "run_campaign",
    "run_case", "run_ordering_case", "save_case", "shrink",
]
