"""Seeded SPARQL query generator spanning the full supported surface.

The generator emits :class:`~repro.sparql.ast.Query` trees covering
everything the engine accepts: nested OPTIONAL blocks (well-designed
*and* — under the ``full`` profile — non-well-designed), FILTER
expressions at every scope, UNION branches, ground terms (including
fully-ground triple patterns), variable predicates, and solution
modifiers (projection, DISTINCT, ORDER BY, LIMIT/OFFSET).

Structural discipline keeps generated queries inside the engine's
fragment by construction:

* every block anchors at least one triple-pattern position on a
  variable of the enclosing scope, so UNION-normal-form branches never
  contain Cartesian products;
* a variable predicate never reappears in a subject/object position
  (the index supports S-S/S-O/O-O joins only) and its triple pattern
  keeps a ground term, so no all-variable pattern arises;
* filter expressions draw variables from the wrapped sub-pattern only,
  so every filter is safe (§5.2).

Well-designedness is controlled by where OPTIONAL anchors come from:
the ``wd`` profile anchors slaves on *certain* variables (bound in
every solution of the enclosing master), while ``full`` occasionally
anchors on optional-only variables or shares a fresh variable between
two sibling slaves — the classic violation patterns of Pérez et al.

When LIMIT/OFFSET are drawn, the query also gets an ORDER BY over
every pattern variable, making row order fully deterministic so the
differential harness can compare windows exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.terms import Literal, Variable, is_variable
from ..sparql import expressions as ex
from ..sparql.ast import (BGP, Filter, Join, LeftJoin, Pattern, Query,
                          TriplePattern, Union, simplify)
from .graphgen import Vocabulary

PROFILES = ("wd", "full")


@dataclass(frozen=True)
class QuerySpec:
    """Probability knobs of the query generator.

    ``profile='wd'`` restricts generation to well-designed BGP-OPT
    structure (plus FILTER/UNION/modifiers); ``'full'`` additionally
    draws the non-well-designed anchor patterns of Appendix B.
    """

    profile: str = "full"
    max_depth: int = 3
    max_bgp_size: int = 3
    optional_prob: float = 0.7
    join_group_prob: float = 0.25
    union_prob: float = 0.25
    filter_prob: float = 0.35
    ground_term_prob: float = 0.25
    ground_tp_prob: float = 0.06
    empty_optional_prob: float = 0.03
    var_predicate_prob: float = 0.08
    #: chance a slave anchors on two master variables (cyclic GoJ, the
    #: Lemma 3.4 case where nullification does real work)
    cyclic_anchor_prob: float = 0.2
    #: full profile only: chance an anchor is drawn from optional-only
    #: variables / a variable is shared between sibling slaves (non-WD)
    nwd_prob: float = 0.3
    projection_prob: float = 0.3
    distinct_prob: float = 0.2
    order_limit_prob: float = 0.2

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValueError(f"unknown profile {self.profile!r}; "
                             f"expected one of {PROFILES}")


class QueryGenerator:
    """Deterministic query generator over a fixed vocabulary.

    When *graph* is given, ground terms are biased toward terms that
    actually occur in the data, so selective patterns still match.
    """

    def __init__(self, vocab: Vocabulary, spec: QuerySpec,
                 rng: random.Random, graph: Graph | None = None) -> None:
        self.vocab = vocab
        self.spec = spec
        self.rng = rng
        self._counter = 0
        self._sample_triples = (
            sorted(graph, key=lambda t: (t.s, t.p, t.o))[:64]
            if graph is not None and len(graph) else [])

    # ------------------------------------------------------------------
    # terms
    # ------------------------------------------------------------------

    def _fresh_var(self) -> Variable:
        self._counter += 1
        return Variable(f"v{self._counter}")

    def _ground_entity(self, position: str):
        """A ground term for *position*, biased toward present data."""
        rng = self.rng
        if self._sample_triples and rng.random() < 0.6:
            triple = rng.choice(self._sample_triples)
            return getattr(triple, position)
        if position == "p":
            return rng.choice(self.vocab.predicates)
        if position == "o" and rng.random() < 0.2 and self.vocab.literals:
            return rng.choice(self.vocab.literals)
        return rng.choice(self.vocab.entities)

    def _predicate(self, scope: "_Scope") -> object:
        rng = self.rng
        if rng.random() < self.spec.var_predicate_prob:
            # reuse an earlier predicate variable (a p-p join, which
            # the index supports) or mint a fresh one; reuse stays
            # within the current scope — a p-var crossing an OPTIONAL
            # boundary would occur outside its block without occurring
            # in the master, breaking well-designedness
            if scope.local_p_vars and rng.random() < 0.3:
                return rng.choice(scope.local_p_vars)
            var = self._fresh_var()
            scope.p_vars.append(var)
            scope.local_p_vars.append(var)
            return var
        return self._ground_entity("p")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def generate(self) -> Query:
        """One random query over the generator's vocabulary."""
        self._counter = 0
        scope = _Scope()
        pattern = self._group(scope, anchors=[], depth=0)
        pattern = simplify(pattern)
        return self._modifiers(pattern)

    def _group(self, scope: "_Scope", anchors: list[Variable],
               depth: int) -> Pattern:
        """A group graph pattern anchored on *anchors* (possibly [])."""
        rng, spec = self.rng, self.spec
        pattern: Pattern = self._bgp(scope, anchors)
        certain = list(scope.certain)

        # OPTIONAL slaves
        while (depth < spec.max_depth
               and rng.random() < spec.optional_prob):
            pattern = LeftJoin(pattern,
                               self._slave(scope, certain, depth))
            if rng.random() < 0.5:
                break

        # an inner-joined subgroup
        if depth < spec.max_depth and rng.random() < spec.join_group_prob:
            anchor = self._pick_anchors(certain, scope, count=1)
            if anchor:
                sub_scope = scope.child(anchor)
                sub = self._group(sub_scope, anchor, depth + 1)
                scope.absorb(sub_scope)
                pattern = Join(pattern, sub)

        # a UNION block joined in (each branch anchored on the group)
        if depth < spec.max_depth and rng.random() < spec.union_prob:
            anchor = self._pick_anchors(certain, scope, count=1)
            if anchor:
                union = self._union(scope, anchor, depth + 1)
                pattern = Join(pattern, union)

        if rng.random() < spec.filter_prob:
            if spec.profile == "wd":
                # a group-level filter naming an optional-only variable
                # is an outside occurrence -> would break WD
                filter_vars = set(scope.certain) & pattern.variables()
            else:
                filter_vars = pattern.variables()
            # a variable bound in only some UNION branches is absent
            # from the other UNF branches, where the filter would be
            # unsafe — never draw those
            filter_vars -= scope.union_only
            expr = self._expression(sorted(filter_vars))
            if expr is not None:
                pattern = Filter(expr, pattern)
        return pattern

    def _slave(self, scope: "_Scope", certain: list[Variable],
               depth: int) -> Pattern:
        """An OPTIONAL block anchored on the enclosing pattern."""
        rng, spec = self.rng, self.spec
        if rng.random() < spec.empty_optional_prob:
            return BGP()
        if rng.random() < spec.ground_tp_prob:
            return BGP((self._ground_tp(),))
        count = 2 if rng.random() < spec.cyclic_anchor_prob else 1
        anchors = self._pick_anchors(certain, scope, count=count)
        slave_scope = scope.child(anchors)
        if (spec.profile == "full" and scope.sibling_vars
                and rng.random() < spec.nwd_prob):
            # share a variable with an earlier sibling slave: it occurs
            # outside the new block but not in the master -> non-WD
            slave_scope.force_reuse = rng.choice(scope.sibling_vars)
        slave = self._group(slave_scope, anchors, depth + 1)
        scope.sibling_vars.extend(sorted(
            set(slave.variables()) - set(scope.certain)
            - set(scope.p_vars) - slave_scope.union_only))
        scope.optional |= slave.variables()
        scope.union_only |= slave_scope.union_only
        return slave

    def _union(self, scope: "_Scope", anchors: list[Variable],
               depth: int) -> Pattern:
        """A two-branch UNION, both branches anchored on *anchors*."""
        branches = []
        for _ in range(2):
            branch_scope = scope.child(anchors)
            branch = self._group(branch_scope, anchors, depth + 1)
            scope.optional |= branch.variables()
            scope.union_only |= branch.variables() - set(anchors)
            branches.append(branch)
        return Union(branches[0], branches[1])

    def _bgp(self, scope: "_Scope", anchors: list[Variable]) -> BGP:
        """1..max_bgp_size connected triple patterns.

        Every anchor variable is guaranteed to occur in some pattern:
        an anchor that stayed unused would still sit in the scope and
        could anchor a *nested* block, whose variable would then skip
        this BGP on its way to the enclosing master — exactly the
        syntactic shape that breaks well-designedness.
        """
        rng, spec = self.rng, self.spec
        size = max(rng.randint(1, spec.max_bgp_size), len(anchors))
        local: list[Variable] = list(anchors)
        patterns: list[TriplePattern] = []
        forced = scope.force_reuse
        for index in range(size):
            if not local:
                local.append(self._fresh_var())
            anchor = (anchors[index] if index < len(anchors)
                      else rng.choice(local))
            predicate = self._predicate(scope)
            other = forced if forced is not None \
                else self._other_term(local)
            forced = None
            if rng.random() < 0.5:
                subject, obj = anchor, other
            else:
                subject, obj = other, anchor
            if isinstance(subject, Literal):
                subject, obj = obj, subject  # literals can't be subjects
            if is_variable(predicate) and is_variable(subject) \
                    and is_variable(obj):
                # no all-variable TPs — but always ground the NON-anchor
                # side: silently dropping an anchor would leave it in
                # the scope without an occurrence, and a nested block
                # anchored on it would break well-designedness
                if obj != anchor:
                    obj = self._ground_entity("o")
                elif subject != anchor:
                    subject = self._ground_entity("s")
                else:  # anchor on both sides: one occurrence remains
                    obj = self._ground_entity("o")
            for term in (subject, obj):
                if is_variable(term) and term not in local \
                        and term not in scope.p_vars:
                    local.append(term)
            patterns.append(TriplePattern(subject, predicate, obj))
        scope.certain.extend(v for v in local if v not in scope.certain)
        if rng.random() < spec.ground_tp_prob:
            patterns.append(self._ground_tp())
        return BGP(tuple(patterns))

    def _other_term(self, local: list[Variable]):
        """The non-anchor position of a triple pattern."""
        rng = self.rng
        roll = rng.random()
        if roll < self.spec.ground_term_prob:
            return self._ground_entity("o")
        if roll < self.spec.ground_term_prob + 0.25 and local:
            return rng.choice(local)
        return self._fresh_var()

    def _ground_tp(self) -> TriplePattern:
        """A fully ground triple pattern (present or absent in data)."""
        if self._sample_triples and self.rng.random() < 0.5:
            triple = self.rng.choice(self._sample_triples)
            return TriplePattern(triple.s, triple.p, triple.o)
        return TriplePattern(self._ground_entity("s"),
                             self._ground_entity("p"),
                             self._ground_entity("o"))

    def _pick_anchors(self, certain: list[Variable], scope: "_Scope",
                      count: int) -> list[Variable]:
        """Anchor variables for a nested block.

        The ``wd`` profile draws from certain variables only; ``full``
        sometimes draws from optional-only variables, which makes the
        enclosing pattern non-well-designed.
        """
        rng, spec = self.rng, self.spec
        pool = [v for v in certain if v not in scope.p_vars]
        if (spec.profile == "full" and scope.optional
                and rng.random() < spec.nwd_prob):
            # optional-only anchors create non-WD nesting; union-only
            # vars are excluded — a block anchored on one would be a
            # Cartesian product in the UNF branches lacking the var
            pool = pool + sorted(set(scope.optional) - set(scope.p_vars)
                                 - scope.union_only - set(pool))
        if not pool:
            return []
        count = min(count, len(pool))
        return rng.sample(pool, count)

    # ------------------------------------------------------------------
    # filters
    # ------------------------------------------------------------------

    def _expression(self, variables: list[Variable],
                    depth: int = 0) -> object | None:
        """A random filter expression over *variables* (None if empty)."""
        variables = [v for v in variables]
        if not variables:
            return None
        rng = self.rng
        if rng.random() < 0.04:
            # zero-variable (constant) filter: evaluates the same for
            # every row, dropping/nullifying its whole scope when false
            return ex.Comparison(rng.choice(("=", "!=")),
                                 ex.Constant(self._ground_entity("o")),
                                 ex.Constant(self._ground_entity("o")))
        roll = rng.random()
        if depth < 1 and roll < 0.2:
            left = self._expression(variables, depth + 1)
            right = self._expression(variables, depth + 1)
            return ex.BooleanOp(rng.choice(("&&", "||")), left, right)
        if roll < 0.35:
            bound = ex.Bound(rng.choice(variables))
            return ex.Not(bound) if rng.random() < 0.5 else bound
        if roll < 0.45 and len(variables) >= 2:
            left, right = rng.sample(variables, 2)
            return ex.Comparison(rng.choice(("=", "!=")), ex.VarRef(left),
                                 ex.VarRef(right))
        if roll < 0.55:
            return ex.Regex(ex.VarRef(rng.choice(variables)),
                            rng.choice(("e[0-5]$", "p", "fuzz", "[0-9]+")))
        if roll < 0.62:
            return ex.SameTerm(ex.VarRef(rng.choice(variables)),
                               ex.Constant(self._ground_entity("o")))
        op = rng.choice(("=", "!=", "<", "<=", ">", ">="))
        if op in ("<", "<=", ">", ">=") and self.vocab.literals \
                and rng.random() < 0.6:
            constant = rng.choice(self.vocab.literals)
        else:
            constant = self._ground_entity("o")
        comparison = ex.Comparison(op, ex.VarRef(rng.choice(variables)),
                                   ex.Constant(constant))
        return ex.Not(comparison) if rng.random() < 0.2 else comparison

    # ------------------------------------------------------------------
    # solution modifiers
    # ------------------------------------------------------------------

    def _modifiers(self, pattern: Pattern) -> Query:
        rng, spec = self.rng, self.spec
        all_vars = sorted(pattern.variables())
        select = None
        if all_vars and rng.random() < spec.projection_prob:
            size = rng.randint(1, len(all_vars))
            select = tuple(sorted(rng.sample(all_vars, size)))
        distinct = rng.random() < spec.distinct_prob
        order_by: tuple[tuple[Variable, bool], ...] = ()
        limit = None
        offset = 0
        if all_vars and rng.random() < spec.order_limit_prob:
            # a total ORDER BY over every variable makes row order
            # deterministic, so LIMIT/OFFSET windows diff exactly
            order_by = tuple((var, rng.random() < 0.7)
                             for var in all_vars)
            if rng.random() < 0.7:
                limit = rng.randint(1, 10)
            if rng.random() < 0.4:
                offset = rng.randint(0, 3)
        return Query(pattern=pattern, select=select, distinct=distinct,
                     order_by=order_by, limit=limit, offset=offset)


class _Scope:
    """Variable bookkeeping while a group is being generated."""

    def __init__(self) -> None:
        #: variables bound in every solution of the group so far
        self.certain: list[Variable] = []
        #: variables introduced by OPTIONAL slaves / UNION branches
        self.optional: set[Variable] = set()
        #: optional-only variables of earlier sibling slaves
        self.sibling_vars: list[Variable] = []
        #: variables bound in only some UNION branches — unsafe for
        #: filters and never used to anchor later blocks
        self.union_only: set[Variable] = set()
        #: variables used in the predicate position (never reused in S/O)
        self.p_vars: list[Variable] = []
        #: p-vars available for reuse in THIS scope (p-p joins)
        self.local_p_vars: list[Variable] = []
        #: one variable the next BGP must mention (non-WD injection)
        self.force_reuse: Variable | None = None

    def child(self, anchors: list[Variable]) -> "_Scope":
        child = _Scope()
        child.certain = list(anchors)
        child.p_vars = self.p_vars  # shared: position discipline is global
        return child

    def absorb(self, child: "_Scope") -> None:
        """Fold an inner-joined child group's variables into this scope."""
        for var in child.certain:
            if var not in self.certain:
                self.certain.append(var)
        self.optional |= child.optional
        self.union_only |= child.union_only
