"""Differential oracle harness: one (graph, query) case, many engines.

A :class:`FuzzCase` is a self-contained (graph, query-text) pair.  The
query text is the canonical artifact: it is what the corpus stores and
what every engine executes, so a case replays identically whether it
came from the generator or from disk.

:func:`run_case` executes the case on the whole engine matrix and diffs
everything against the reference evaluation:

* for **well-designed** queries, the naive bottom-up evaluator under
  pure SPARQL semantics — an oracle fully independent of the BitMat
  machinery under test;
* for **non-well-designed** queries, where pure SPARQL and LBR answers
  legitimately diverge (Appendix C), the naive evaluator over the
  UNION-normal-form branches with the Appendix B rewrite applied
  (:func:`repro.core.nwd.rewrite_to_reference`): violating OPTIONALs
  become inner joins, the semantics the engine implements by
  construction.

The engine matrix:

* ``lbr``            — LBREngine, pruning on, cold plan cache;
* ``lbr-warm``       — same engine, second execution (plan-cache hit);
* ``lbr-noprune``    — LBREngine with Algorithm 3.2 disabled (forces
  the nullification/best-match safety net), cold;
* ``lbr-noprune-warm`` — its warm repeat;
* ``lbr-raw``        — both Algorithm 3.2 *and* init-time active
  pruning disabled: the bare pipelined join, where correctness rests
  entirely on nullification and best-match (the variant that exposes
  bugs in that machinery, which pruning otherwise masks);
* ``naive-nullintol`` — the naive evaluator with SQL NULL-intolerant
  joins; compared only when the query is union-free and well-designed,
  the fragment on which the paper proves the two semantics coincide
  (Appendix C shows they legitimately diverge outside it).

Results are diffed under bag semantics, except when the query carries
LIMIT/OFFSET: the generator then guarantees a total ORDER BY, and the
harness compares the ordered row lists exactly.  Queries outside LBR's
fragment (Cartesian products, predicate-position joins, unsafe
filters) are reported as ``unsupported``, never as failures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..baselines.naive import NaiveEngine
from ..bitmat.store import BitMatStore
from ..core.engine import LBREngine
from ..core.nullification import minimum_union
from ..core.results import ResultSet, apply_solution_modifiers
from ..exceptions import BudgetExceededError, UnsupportedQueryError
from ..plan.compiler import compile_logical, run_pipeline
from ..plan.logical import LUnionAll
from ..plan.passes import PassManager, reference_passes
from ..rdf import ntriples
from ..rdf.graph import Graph
from ..rdf.terms import NULL
from ..sparql.ast import Query
from ..sparql.parser import parse_query
from ..sparql.wd import check_union_free, is_well_designed

#: The reference pipeline: UNION normal form + per-branch Appendix B
#: analysis, *without* the engine's equality-filter optimization — the
#: reference models pure SPARQL semantics over the shared logical IR.
_REFERENCE_MANAGER = PassManager(reference_passes())

#: Engine labels of the differential matrix, in execution order.
ENGINE_LABELS = ("lbr", "lbr-warm", "lbr-noprune", "lbr-noprune-warm",
                 "lbr-raw", "naive-nullintol")


@dataclass(frozen=True)
class FuzzCase:
    """One differential test case: a graph and a query over it."""

    query_text: str
    triples: tuple = ()  # tuple[Triple, ...]
    name: str = ""
    description: str = ""

    def graph(self) -> Graph:
        return Graph(self.triples)

    def query(self) -> Query:
        return parse_query(self.query_text)

    def graph_lines(self) -> list[str]:
        """The graph as N-Triples lines (the corpus/JSON form)."""
        return [triple.n3 for triple in sorted(
            self.triples, key=lambda t: (str(t.s), str(t.p), str(t.o)))]

    @classmethod
    def from_lines(cls, query_text: str, lines: list[str],
                   name: str = "", description: str = "") -> "FuzzCase":
        triples = tuple(triple for triple in
                        (ntriples.parse_line(line) for line in lines)
                        if triple is not None)
        return cls(query_text=query_text, triples=triples, name=name,
                   description=description)


@dataclass
class Disagreement:
    """One engine's divergence from the reference result."""

    engine: str
    expected_rows: int
    actual_rows: int
    missing: list[tuple] = field(default_factory=list)
    unexpected: list[tuple] = field(default_factory=list)

    def describe(self) -> str:
        parts = [f"{self.engine}: {self.actual_rows} rows, "
                 f"reference has {self.expected_rows}"]
        if self.missing:
            parts.append(f"missing e.g. {self.missing[0]!r}")
        if self.unexpected:
            parts.append(f"unexpected e.g. {self.unexpected[0]!r}")
        return "; ".join(parts)


@dataclass
class CaseResult:
    """Outcome of one differential execution."""

    case: FuzzCase
    status: str  # "agree" | "mismatch" | "unsupported" | "skipped"
    disagreements: list[Disagreement] = field(default_factory=list)
    unsupported_reason: str = ""
    reference_rows: int = 0
    well_designed: bool = True
    elapsed: float = 0.0

    @property
    def failed(self) -> bool:
        return self.status == "mismatch"


def _diff_bags(reference, candidate, engine: str) -> Disagreement | None:
    ref_bag = reference.as_multiset()
    cand_bag = candidate.as_multiset()
    if ref_bag == cand_bag:
        return None
    missing = [row for row, count in ref_bag.items()
               if cand_bag.get(row, 0) < count]
    unexpected = [row for row, count in cand_bag.items()
                  if ref_bag.get(row, 0) < count]
    return Disagreement(engine=engine, expected_rows=len(reference),
                        actual_rows=len(candidate),
                        missing=missing[:3], unexpected=unexpected[:3])


def _diff_ordered(reference, candidate, engine: str) -> Disagreement | None:
    if reference.rows == candidate.rows:
        return None
    extra = [row for row in candidate.rows if row not in reference.rows]
    gone = [row for row in reference.rows if row not in candidate.rows]
    return Disagreement(engine=engine, expected_rows=len(reference),
                        actual_rows=len(candidate),
                        missing=gone[:3], unexpected=extra[:3])


#: Work-budget defaults guarding against combinatorially adversarial
#: generated cases (the harness skips them rather than hanging).
MAX_ORACLE_INTERMEDIATE_ROWS = 100_000
MAX_REFERENCE_ROWS = 20_000
MAX_REFERENCE_BRANCHES = 32
#: terminal-step budget per LBR execution; sized so that even the slow
#: per-row nullification/FaN output path stays interactive
MAX_LBR_JOIN_ROWS = 50_000


def reference_execute(graph: Graph, query: Query,
                      max_intermediate_rows: int | None = None,
                      ) -> ResultSet:
    """The reference answer the whole engine matrix is diffed against.

    Well-designed queries without OPTIONAL-enclosed UNIONs evaluate on
    the plain naive oracle — pure SPARQL semantics, fully independent
    of the machinery under test.  Two query classes have *documented*
    divergence from pure SPARQL and get a reference that models the
    engine's prescribed semantics instead (the branch evaluation
    itself stays naive and bottom-up, so BitMats, pruning, the
    multi-way join, and nullification contribute nothing):

    * **non-well-designed** queries (Appendix C): each UNION-normal-
      form branch is evaluated after the Appendix B rewrite
      (:func:`repro.core.nwd.rewrite_to_reference` — violating
      OPTIONALs become inner joins);
    * **rule-3 rewrites** (``P1 OPTIONAL { P2 UNION P3 }``, §5.2): the
      rewrite is inherently set-oriented — the paper prescribes
      minimum-union cleanup of the spurious rows it introduces, which
      cannot preserve exact bag multiplicities — so the reference
      applies the same ``minimum_union`` to naively-evaluated
      branches.
    """
    engine = NaiveEngine(graph,
                         max_intermediate_rows=max_intermediate_rows)
    query, logical = compile_logical(query)
    compiled = run_pipeline(logical, _REFERENCE_MANAGER)
    root = compiled.logical.root
    assert isinstance(root, LUnionAll)
    if len(root.branches) > MAX_REFERENCE_BRANCHES:
        raise BudgetExceededError(
            f"UNION normal form has {len(root.branches)} "
            f"branches (cap {MAX_REFERENCE_BRANCHES})")
    branch_info = compiled.context.branch_info
    if (all(info.well_designed for info in branch_info)
            and is_well_designed(query.pattern)
            and not root.spurious_possible):
        return engine.execute(query)
    all_variables = tuple(sorted(query.pattern.variables()))
    combined: list[tuple] = []
    for branch, info in zip(root.branches, branch_info):
        # the wd-analysis pass already produced the Appendix B
        # reference rewrite (violating OPTIONALs as inner joins)
        rows = engine.eval_logical(info.reference)
        combined.extend(tuple(row.get(var, NULL) for var in all_variables)
                        for row in rows)
    if root.spurious_possible:
        combined = minimum_union(combined)
    return apply_solution_modifiers(
        ResultSet(all_variables, combined), query)


def run_case(case: FuzzCase, store: BitMatStore | None = None) -> CaseResult:
    """Execute *case* across the engine matrix and diff the results."""
    started = time.perf_counter()
    graph = case.graph()
    query = case.query()
    result = CaseResult(case=case, status="agree")
    result.well_designed = is_well_designed(query.pattern)

    # ordered comparison only when a window makes row order observable;
    # the generator (and corpus convention) guarantee a total ORDER BY
    # alongside LIMIT/OFFSET
    ordered = query.limit is not None or bool(query.offset)
    diff = _diff_ordered if ordered else _diff_bags

    try:
        reference = reference_execute(
            graph, query,
            max_intermediate_rows=MAX_ORACLE_INTERMEDIATE_ROWS)
        if len(reference) > MAX_REFERENCE_ROWS:
            raise BudgetExceededError(
                f"reference produced {len(reference):,} rows "
                f"(cap {MAX_REFERENCE_ROWS:,})")
    except BudgetExceededError as error:
        result.status = "skipped"
        result.unsupported_reason = str(error)
        result.elapsed = time.perf_counter() - started
        return result
    result.reference_rows = len(reference)

    if store is None:
        store = BitMatStore.build(graph)
    candidates = []
    try:
        for prune, label in ((True, "lbr"), (False, "lbr-noprune")):
            engine = LBREngine(store, enable_prune=prune,
                               max_join_rows=MAX_LBR_JOIN_ROWS)
            candidates.append((label, engine.execute(query)))
            candidates.append((f"{label}-warm", engine.execute(query)))
        raw = LBREngine(store, enable_prune=False,
                        enable_active_prune=False,
                        max_join_rows=MAX_LBR_JOIN_ROWS)
        candidates.append(("lbr-raw", raw.execute(query)))
    except UnsupportedQueryError as error:
        result.status = "unsupported"
        result.unsupported_reason = str(error)
        result.elapsed = time.perf_counter() - started
        return result
    except BudgetExceededError as error:
        result.status = "skipped"
        result.unsupported_reason = str(error)
        result.elapsed = time.perf_counter() - started
        return result

    if result.well_designed and check_union_free(query.pattern):
        candidates.append(
            ("naive-nullintol",
             NaiveEngine(graph, null_intolerant=True).execute(query)))

    for label, candidate in candidates:
        disagreement = diff(reference, candidate, label)
        if disagreement is not None:
            result.disagreements.append(disagreement)

    # §5 invariant: a plan-cache hit must be byte-identical to the cold
    # run — same rows, same order, not merely the same bag
    by_label = dict(candidates)
    for base in ("lbr", "lbr-noprune"):
        cold, warm = by_label[base], by_label[f"{base}-warm"]
        if cold.rows != warm.rows:
            result.disagreements.append(Disagreement(
                engine=f"{base}-warm-vs-cold",
                expected_rows=len(cold), actual_rows=len(warm)))
    if result.disagreements:
        result.status = "mismatch"
    result.elapsed = time.perf_counter() - started
    return result
