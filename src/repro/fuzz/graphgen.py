"""Seeded RDF graph generators for differential fuzzing.

Every generator is a pure function of a :class:`GraphSpec` and a seed:
the same (spec, seed) pair always produces the same triple set, so a
failing case replays bit-identically from its corpus record.  Three
shapes cover the structures that stress different parts of the engine:

* ``uniform``   — triples drawn uniformly from S × P × O; low skew, so
  pruning removes little and the multi-way join sees wide candidate
  lists;
* ``star``      — a few hub entities attract most edges (the power-law
  shape of real RDF data); folds are dominated by single rows, and
  hub-anchored OPTIONAL blocks match many rows while leaf-anchored ones
  fail;
* ``clustered`` — entities are partitioned into dense clusters with
  rare cross-links; selective master patterns prune whole clusters, the
  case Algorithm 3.2 is designed around.

Graphs share a fixed vocabulary (:class:`Vocabulary`) with the query
generator so that ground terms drawn into queries have a realistic
chance of matching the data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..rdf.graph import Graph
from ..rdf.terms import Literal, Triple, URI

#: xsd:integer — the literal datatype the generators emit, so numeric
#: FILTER comparisons have data to compare.
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"

SHAPES = ("uniform", "star", "clustered")


@dataclass(frozen=True)
class Vocabulary:
    """The closed term universe one fuzz case draws from."""

    entities: tuple[URI, ...]
    predicates: tuple[URI, ...]
    literals: tuple[Literal, ...]

    @classmethod
    def build(cls, num_entities: int, num_predicates: int,
              num_literals: int = 8) -> "Vocabulary":
        return cls(
            entities=tuple(URI(f"http://fuzz.example/e{i}")
                           for i in range(num_entities)),
            predicates=tuple(URI(f"http://fuzz.example/p{i}")
                             for i in range(num_predicates)),
            literals=tuple(Literal(str(i * 7), datatype=XSD_INTEGER)
                           for i in range(num_literals)))

    def objects(self) -> tuple:
        """Terms usable in the object position."""
        return self.entities + self.literals


@dataclass(frozen=True)
class GraphSpec:
    """Sizing and shape knobs of one generated graph.

    ``triples`` is a target, not an exact count: generators draw with
    replacement into a set, so collisions can land slightly below it.
    The defaults keep the naive oracle fast; ``triples`` scales to ~10k
    before a single differential case stops being interactive.
    """

    shape: str = "uniform"
    triples: int = 40
    num_entities: int = 12
    num_predicates: int = 4
    num_literals: int = 6
    #: star shape: number of hub entities.
    hubs: int = 2
    #: clustered shape: number of clusters and cross-link probability.
    clusters: int = 3
    cross_link_prob: float = 0.05
    #: probability that a triple's object is a literal.
    literal_prob: float = 0.15

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ValueError(f"unknown graph shape {self.shape!r}; "
                             f"expected one of {SHAPES}")


def generate_graph(spec: GraphSpec, seed: int) -> tuple[Graph, Vocabulary]:
    """Deterministically generate a graph of the requested shape."""
    rng = random.Random(seed)
    vocab = Vocabulary.build(spec.num_entities, spec.num_predicates,
                             spec.num_literals)
    draw = {"uniform": _draw_uniform, "star": _draw_star,
            "clustered": _draw_clustered}[spec.shape]
    state = _ShapeState(spec, vocab, rng)
    graph = Graph()
    # bounded attempts: tiny vocabularies may not admit `triples`
    # distinct triples at all
    attempts = 0
    while len(graph) < spec.triples and attempts < spec.triples * 4:
        graph.add(draw(state))
        attempts += 1
    return graph, vocab


@dataclass
class _ShapeState:
    spec: GraphSpec
    vocab: Vocabulary
    rng: random.Random
    hubs: tuple[URI, ...] = field(init=False)
    cluster_of: dict[URI, int] = field(init=False)

    def __post_init__(self) -> None:
        entities = self.vocab.entities
        self.hubs = entities[:max(1, min(self.spec.hubs, len(entities)))]
        clusters = max(1, self.spec.clusters)
        self.cluster_of = {entity: index % clusters
                           for index, entity in enumerate(entities)}

    def object_term(self, entity_pool: tuple[URI, ...]):
        if self.rng.random() < self.spec.literal_prob and self.vocab.literals:
            return self.rng.choice(self.vocab.literals)
        return self.rng.choice(entity_pool)


def _draw_uniform(state: _ShapeState) -> Triple:
    rng, vocab = state.rng, state.vocab
    return Triple(rng.choice(vocab.entities), rng.choice(vocab.predicates),
                  state.object_term(vocab.entities))


def _draw_star(state: _ShapeState) -> Triple:
    """~80% of edges touch a hub, split between in- and out-edges."""
    rng, vocab = state.rng, state.vocab
    roll = rng.random()
    if roll < 0.4:  # leaf -> hub
        return Triple(rng.choice(vocab.entities),
                      rng.choice(vocab.predicates), rng.choice(state.hubs))
    if roll < 0.8:  # hub -> leaf/literal
        return Triple(rng.choice(state.hubs), rng.choice(vocab.predicates),
                      state.object_term(vocab.entities))
    return _draw_uniform(state)


def _draw_clustered(state: _ShapeState) -> Triple:
    """Dense intra-cluster edges with rare cross-cluster links."""
    rng, vocab = state.rng, state.vocab
    subject = rng.choice(vocab.entities)
    if rng.random() < state.spec.cross_link_prob:
        pool = vocab.entities
    else:
        cluster = state.cluster_of[subject]
        pool = tuple(entity for entity in vocab.entities
                     if state.cluster_of[entity] == cluster) or vocab.entities
    return Triple(subject, rng.choice(vocab.predicates),
                  state.object_term(pool))
