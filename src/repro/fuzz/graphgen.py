"""Seeded RDF graph generators for differential fuzzing.

Every generator is a pure function of a :class:`GraphSpec` and a seed:
the same (spec, seed) pair always produces the same triple set, so a
failing case replays bit-identically from its corpus record.  Three
shapes cover the structures that stress different parts of the engine:

* ``uniform``   — triples drawn uniformly from S × P × O; low skew, so
  pruning removes little and the multi-way join sees wide candidate
  lists;
* ``star``      — a few hub entities attract most edges (the power-law
  shape of real RDF data); folds are dominated by single rows, and
  hub-anchored OPTIONAL blocks match many rows while leaf-anchored ones
  fail;
* ``clustered`` — entities are partitioned into dense clusters with
  rare cross-links; selective master patterns prune whole clusters, the
  case Algorithm 3.2 is designed around.

Graphs share a fixed vocabulary (:class:`Vocabulary`) with the query
generator so that ground terms drawn into queries have a realistic
chance of matching the data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..rdf.graph import Graph
from ..rdf.terms import Literal, Triple, URI

#: xsd:integer — the literal datatype the generators emit, so numeric
#: FILTER comparisons have data to compare.
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"

SHAPES = ("uniform", "star", "clustered")


@dataclass(frozen=True)
class Vocabulary:
    """The closed term universe one fuzz case draws from."""

    entities: tuple[URI, ...]
    predicates: tuple[URI, ...]
    literals: tuple[Literal, ...]

    @classmethod
    def build(cls, num_entities: int, num_predicates: int,
              num_literals: int = 8) -> "Vocabulary":
        return cls(
            entities=tuple(URI(f"http://fuzz.example/e{i}")
                           for i in range(num_entities)),
            predicates=tuple(URI(f"http://fuzz.example/p{i}")
                             for i in range(num_predicates)),
            literals=tuple(Literal(str(i * 7), datatype=XSD_INTEGER)
                           for i in range(num_literals)))

    def objects(self) -> tuple:
        """Terms usable in the object position."""
        return self.entities + self.literals


@dataclass(frozen=True)
class GraphSpec:
    """Sizing and shape knobs of one generated graph.

    ``triples`` is a target, not an exact count: generators draw with
    replacement into a set, so collisions can land slightly below it.
    The defaults keep the naive oracle fast; ``triples`` scales to ~10k
    before a single differential case stops being interactive.
    """

    shape: str = "uniform"
    triples: int = 40
    num_entities: int = 12
    num_predicates: int = 4
    num_literals: int = 6
    #: star shape: number of hub entities.
    hubs: int = 2
    #: clustered shape: number of clusters and cross-link probability.
    clusters: int = 3
    cross_link_prob: float = 0.05
    #: probability that a triple's object is a literal.
    literal_prob: float = 0.15

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ValueError(f"unknown graph shape {self.shape!r}; "
                             f"expected one of {SHAPES}")


def generate_graph(spec: GraphSpec, seed: int) -> tuple[Graph, Vocabulary]:
    """Deterministically generate a graph of the requested shape."""
    rng = random.Random(seed)
    vocab = Vocabulary.build(spec.num_entities, spec.num_predicates,
                             spec.num_literals)
    draw = {"uniform": _draw_uniform, "star": _draw_star,
            "clustered": _draw_clustered}[spec.shape]
    state = _ShapeState(spec, vocab, rng)
    graph = Graph()
    # bounded attempts: tiny vocabularies may not admit `triples`
    # distinct triples at all
    attempts = 0
    while len(graph) < spec.triples and attempts < spec.triples * 4:
        graph.add(draw(state))
        attempts += 1
    return graph, vocab


@dataclass
class _ShapeState:
    spec: GraphSpec
    vocab: Vocabulary
    rng: random.Random
    hubs: tuple[URI, ...] = field(init=False)
    cluster_of: dict[URI, int] = field(init=False)

    def __post_init__(self) -> None:
        entities = self.vocab.entities
        self.hubs = entities[:max(1, min(self.spec.hubs, len(entities)))]
        clusters = max(1, self.spec.clusters)
        self.cluster_of = {entity: index % clusters
                           for index, entity in enumerate(entities)}

    def object_term(self, entity_pool: tuple[URI, ...]):
        if self.rng.random() < self.spec.literal_prob and self.vocab.literals:
            return self.rng.choice(self.vocab.literals)
        return self.rng.choice(entity_pool)


def _draw_uniform(state: _ShapeState) -> Triple:
    rng, vocab = state.rng, state.vocab
    return Triple(rng.choice(vocab.entities), rng.choice(vocab.predicates),
                  state.object_term(vocab.entities))


def _draw_star(state: _ShapeState) -> Triple:
    """~80% of edges touch a hub, split between in- and out-edges."""
    rng, vocab = state.rng, state.vocab
    roll = rng.random()
    if roll < 0.4:  # leaf -> hub
        return Triple(rng.choice(vocab.entities),
                      rng.choice(vocab.predicates), rng.choice(state.hubs))
    if roll < 0.8:  # hub -> leaf/literal
        return Triple(rng.choice(state.hubs), rng.choice(vocab.predicates),
                      state.object_term(vocab.entities))
    return _draw_uniform(state)


def generate_update_batches(triples, rng: random.Random,
                            max_batches: int = 4,
                            batch_size: int = 8) -> list:
    """Deterministic update batches for the ``updates`` fuzz profile.

    Starting from the case's graph, produces up to *max_batches*
    (adds, deletes) pairs.  Deletes sample the currently-visible set,
    adds mix re-used vocabulary, previously-deleted triples (so
    delete-then-re-add round-trips are exercised), and genuinely fresh
    entities (forcing dictionary extension ids).  The expected visible
    state after each batch is ``(visible - deletes) | adds`` — deletes
    apply first, so a triple in both ends up present.
    """
    visible = set(triples)
    entities = sorted({t.s for t in visible}
                      | {t.o for t in visible if isinstance(t.o, URI)},
                      key=lambda term: term.n3)
    predicates = sorted({t.p for t in visible}, key=lambda term: term.n3)
    objects = sorted({t.o for t in visible}, key=lambda term: term.n3)
    fresh = [URI(f"http://fuzz.example/new{i}") for i in range(6)]
    if not entities or not predicates or not objects:
        return []
    tombstones: list = []
    batches = []
    for _ in range(rng.randint(1, max_batches)):
        n_deletes = rng.randint(0, min(batch_size, len(visible)))
        deletes = tuple(rng.sample(
            sorted(visible, key=lambda t: (t.s.n3, t.p.n3, t.o.n3)),
            n_deletes))
        adds = []
        for _ in range(rng.randint(1, batch_size)):
            roll = rng.random()
            if roll < 0.2 and tombstones:
                adds.append(rng.choice(tombstones))
            elif roll < 0.35:
                # fresh subject and/or object: extension dictionary ids
                adds.append(Triple(rng.choice(fresh),
                                   rng.choice(predicates),
                                   rng.choice(objects)))
            elif roll < 0.45 and deletes:
                # delete-then-add in one batch: must end up present
                adds.append(rng.choice(deletes))
            else:
                adds.append(Triple(rng.choice(entities),
                                   rng.choice(predicates),
                                   rng.choice(objects)))
        adds = tuple(dict.fromkeys(adds))
        batches.append((adds, deletes))
        visible = (visible - set(deletes)) | set(adds)
        tombstones.extend(t for t in deletes if t not in visible)
    return batches


def _draw_clustered(state: _ShapeState) -> Triple:
    """Dense intra-cluster edges with rare cross-cluster links."""
    rng, vocab = state.rng, state.vocab
    subject = rng.choice(vocab.entities)
    if rng.random() < state.spec.cross_link_prob:
        pool = vocab.entities
    else:
        cluster = state.cluster_of[subject]
        pool = tuple(entity for entity in vocab.entities
                     if state.cluster_of[entity] == cluster) or vocab.entities
    return Triple(subject, rng.choice(vocab.predicates),
                  state.object_term(pool))
