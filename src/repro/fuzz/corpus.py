"""Regression corpus: failing fuzz cases persisted as JSON.

Every case the fuzzer finds and every hand-picked tricky query lives in
one JSON file under ``tests/corpus/`` and is replayed by the tier-1
suite (``tests/test_corpus.py``) on every run.  The format is
deliberately plain so cases can be written by hand:

.. code-block:: json

    {
      "name": "nwd-cross-slave-variable",
      "description": "why this case is tricky",
      "query": "SELECT * WHERE { ... }",
      "graph": ["<http://...s> <http://...p> <http://...o> ."],
      "expect": "agree"
    }

``graph`` is a list of N-Triples lines (parsed by
:mod:`repro.rdf.ntriples`); ``expect`` is ``"agree"`` (default — the
whole engine matrix must match the oracle) or ``"unsupported"`` (the
query documents a fragment limit: LBR must *reject* it, cleanly).
Cases using LIMIT/OFFSET must carry a total ORDER BY so row order is
deterministic — the harness then compares windows exactly.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass

from .oracle import FuzzCase

EXPECTATIONS = ("agree", "unsupported")


@dataclass(frozen=True)
class CorpusEntry:
    """One persisted regression case."""

    case: FuzzCase
    expect: str = "agree"
    path: str = ""


def case_to_json(case: FuzzCase, expect: str = "agree") -> dict:
    """The JSON-serializable form of a case."""
    if expect not in EXPECTATIONS:
        raise ValueError(f"unknown expectation {expect!r}")
    return {
        "name": case.name,
        "description": case.description,
        "query": case.query_text,
        "graph": case.graph_lines(),
        "expect": expect,
    }


def case_from_json(data: dict, path: str = "") -> CorpusEntry:
    """Parse one corpus record (raises KeyError on malformed input)."""
    expect = data.get("expect", "agree")
    if expect not in EXPECTATIONS:
        raise ValueError(f"{path or 'corpus record'}: "
                         f"unknown expectation {expect!r}")
    case = FuzzCase.from_lines(
        query_text=data["query"], lines=list(data["graph"]),
        name=data.get("name", ""),
        description=data.get("description", ""))
    return CorpusEntry(case=case, expect=expect, path=path)


def save_case(case: FuzzCase, directory: str,
              expect: str = "agree") -> str:
    """Write *case* into *directory*; returns the file path.

    The file name derives from the case name (slugified); an existing
    file with the same name is never overwritten — a numeric suffix is
    appended instead, so repeated campaigns keep every distinct find.
    """
    os.makedirs(directory, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-", (case.name or "case").lower())
    slug = slug.strip("-") or "case"
    path = os.path.join(directory, f"{slug}.json")
    suffix = 1
    while os.path.exists(path):
        suffix += 1
        path = os.path.join(directory, f"{slug}-{suffix}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case_to_json(case, expect), handle, indent=2)
        handle.write("\n")
    return path


def load_corpus(directory: str) -> list[CorpusEntry]:
    """All corpus entries under *directory*, sorted by file name."""
    entries: list[CorpusEntry] = []
    if not os.path.isdir(directory):
        return entries
    for file_name in sorted(os.listdir(directory)):
        if not file_name.endswith(".json"):
            continue
        path = os.path.join(directory, file_name)
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        entries.append(case_from_json(data, path=path))
    return entries
