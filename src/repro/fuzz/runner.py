"""Fuzz campaign runner — generation, execution, shrinking, reporting.

One campaign is a pure function of its :class:`CampaignConfig`: the
master seed derives a per-case seed stream, each case draws a graph
shape/size, a graph, and a query, and runs the full differential
matrix (:func:`repro.fuzz.oracle.run_case`).  Failing cases are
delta-debugged down (:func:`repro.fuzz.shrink.shrink`) and optionally
persisted into the regression corpus.

The ``inject_bug`` hook deliberately breaks a named engine component
for the duration of a campaign.  It exists to validate the fuzzer
itself: a harness that cannot catch a planted nullification bug cannot
be trusted to guard refactors (the acceptance gate of this subsystem
runs exactly that experiment).
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .corpus import save_case
from .graphgen import SHAPES, GraphSpec, generate_graph
from .oracle import CaseResult, Disagreement, FuzzCase, run_case
from .querygen import QueryGenerator, QuerySpec
from .shrink import shrink

#: Names accepted by :func:`inject_bug`.
INJECTABLE_BUGS = ("nullification",)

#: Campaign-level generation profiles.  ``wd``/``full`` map straight to
#: the query generator's profiles; ``nul`` stresses the nullification/
#: best-match machinery: dense small graphs, OPTIONAL-heavy queries,
#: frequent two-anchor (cyclic) slaves — the shapes where partial
#: OPTIONAL matches produce the subsumed rows best-match must remove.
PROFILE_PRESETS: dict[str, QuerySpec] = {
    "wd": QuerySpec(profile="wd"),
    "full": QuerySpec(profile="full"),
    "nul": QuerySpec(profile="full", optional_prob=0.85,
                     cyclic_anchor_prob=0.6, union_prob=0.1,
                     filter_prob=0.2, ground_term_prob=0.15,
                     ground_tp_prob=0.02, empty_optional_prob=0.0,
                     var_predicate_prob=0.02, projection_prob=0.1,
                     distinct_prob=0.05, order_limit_prob=0.05),
    # live-update mutation profile: simple well-designed queries (the
    # interesting part is the store state, not the query shape) run
    # against a WAL-backed live store after every committed batch
    "updates": QuerySpec(profile="wd"),
    # ordering differential: the full query surface executed over a
    # *frozen* store (per-predicate statistics flip planning to the
    # cost-based ranker) and diffed row-for-row against the static
    # heuristic — join ordering is a pure performance decision, so
    # any row difference is a planner bug
    "ordering": QuerySpec(profile="full"),
}


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's case stream."""

    seed: int = 0
    budget: int = 200
    #: optional wall-clock cap in seconds, for interactive runs; CI
    #: gates use a fixed budget so coverage is machine-independent
    seconds: float | None = None
    #: "uniform" | "star" | "clustered" | "mix"
    shape: str = "mix"
    profile: str = "full"
    min_triples: int = 8
    max_triples: int = 60
    shrink_failures: bool = True
    #: directory failing (shrunk) cases are saved into, or None
    save_failing: str | None = None
    #: stop at the first mismatch (the self-check tests use this)
    stop_on_failure: bool = False

    def __post_init__(self) -> None:
        if self.shape != "mix" and self.shape not in SHAPES:
            raise ValueError(f"unknown shape {self.shape!r}; expected "
                             f"'mix' or one of {SHAPES}")
        if self.profile not in PROFILE_PRESETS:
            raise ValueError(
                f"unknown profile {self.profile!r}; expected one of "
                f"{tuple(PROFILE_PRESETS)}")


@dataclass
class CampaignReport:
    """Aggregated outcome of one campaign."""

    config: CampaignConfig
    cases: int = 0
    agreed: int = 0
    unsupported: int = 0
    skipped: int = 0
    mismatched: int = 0
    well_designed: int = 0
    non_well_designed: int = 0
    reference_rows: int = 0
    by_shape: dict = field(default_factory=dict)
    failures: list[CaseResult] = field(default_factory=list)
    shrunk: list[FuzzCase] = field(default_factory=list)
    saved_paths: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.mismatched == 0


def generate_case(config: CampaignConfig, case_seed: int,
                  index: int = 0) -> tuple[FuzzCase, str]:
    """Deterministically build case *index* from *case_seed*.

    Returns the case and the graph shape it used.  The query is
    serialized to SPARQL text immediately: the text is the case's
    canonical form, so generation, execution, shrinking, and corpus
    replay all see exactly the same parsed algebra.
    """
    rng = random.Random(case_seed)
    shape = (config.shape if config.shape != "mix"
             else rng.choice(SHAPES))
    triples = rng.randint(config.min_triples, config.max_triples)
    # the nullification-stress profile wants dense graphs: many
    # candidate rows per entity make partial OPTIONAL matches likely
    density = 6 if config.profile == "nul" else 3
    graph_spec = GraphSpec(
        shape=shape, triples=triples,
        num_entities=max(5, triples // density),
        num_predicates=rng.randint(3, 6),
        hubs=rng.randint(1, 3), clusters=rng.randint(2, 4))
    graph, vocab = generate_graph(graph_spec, rng.getrandbits(32))
    generator = QueryGenerator(
        vocab, PROFILE_PRESETS[config.profile], rng, graph=graph)
    query = generator.generate()
    case = FuzzCase(
        query_text=query.to_sparql(), triples=tuple(graph),
        name=f"fuzz-seed{config.seed}-case{index}",
        description=(f"generated: shape={shape} triples={len(graph)} "
                     f"profile={config.profile}"))
    return case, shape


def run_update_case(case: FuzzCase, case_seed: int) -> CaseResult:
    """Differential oracle for the ``updates`` profile.

    Replays a deterministic stream of update batches against a
    MemFS-backed :class:`~repro.update.live.LiveGraphStore` and, after
    every committed batch, compares the snapshot+overlay state against
    a store rebuilt from scratch from the expected graph: the visible
    triple set must match exactly, and the case query must return
    row-identical results on both.  The case ends with a forced
    compaction, a final comparison, and a close/reopen recovery check.
    """
    import time as _time

    from ..bitmat.store import BitMatStore
    from ..core.engine import LBREngine
    from ..exceptions import (BudgetExceededError, ReproError,
                              UnsupportedQueryError)
    from ..rdf.graph import Graph
    from ..update import LiveConfig, LiveGraphStore, MemFS
    from .graphgen import generate_update_batches

    started = _time.perf_counter()
    rng = random.Random(case_seed ^ 0x5EED)
    batches = generate_update_batches(case.triples, rng)

    def triple_key(triple):
        return (triple.s.n3, triple.p.n3, triple.o.n3)

    def rows_of(store):
        engine = LBREngine(store)
        session = engine.session(
            max_join_rows=100_000,
            deadline=_time.monotonic() + 5.0)
        try:
            result = session.execute(case.query_text)
        except (UnsupportedQueryError, BudgetExceededError):
            return None
        return sorted(result.rows,
                      key=lambda row: tuple(str(c) for c in row))

    def compare(stage: str, live, visible) -> Disagreement | None:
        expected = sorted(visible, key=triple_key)
        got = sorted(live.current_store().iter_triples(),
                     key=triple_key)
        if got != expected:
            missing = [t for t in expected if t not in set(got)]
            unexpected = [t for t in got if t not in set(expected)]
            return Disagreement(
                engine=f"live-overlay/{stage}/triples",
                expected_rows=len(expected), actual_rows=len(got),
                missing=missing[:3], unexpected=unexpected[:3])
        rebuilt = BitMatStore.build(Graph(visible))
        reference = rows_of(rebuilt)
        if reference is None:
            return None
        actual = rows_of(live.current_store())
        if actual != reference:
            return Disagreement(
                engine=f"live-overlay/{stage}/rows",
                expected_rows=len(reference),
                actual_rows=-1 if actual is None else len(actual))
        return None

    fs = MemFS()
    visible = set(case.triples)
    disagreements: list[Disagreement] = []
    try:
        live = LiveGraphStore.open(
            "/fuzz-live", fs=fs, initial=Graph(case.triples),
            config=LiveConfig(compact_threshold=None, background=False))
        for index, (adds, deletes) in enumerate(batches):
            live.apply_batch(adds, deletes)
            visible = (visible - set(deletes)) | set(adds)
            problem = compare(f"batch{index}", live, visible)
            if problem is not None:
                disagreements.append(problem)
        live.compact()
        problem = compare("compacted", live, visible)
        if problem is not None:
            disagreements.append(problem)
        live.close()
        # recovery: reopen from the durable bytes alone
        live = LiveGraphStore.open(
            "/fuzz-live", fs=fs.after_crash("durable"),
            config=LiveConfig(compact_threshold=None, background=False))
        problem = compare("recovered", live, visible)
        if problem is not None:
            disagreements.append(problem)
        live.close()
    except ReproError as exc:
        disagreements.append(Disagreement(
            engine=f"live-overlay/error:{type(exc).__name__}:{exc}",
            expected_rows=len(visible), actual_rows=-1))
    return CaseResult(
        case=case,
        status="mismatch" if disagreements else "agree",
        disagreements=disagreements,
        reference_rows=len(visible),
        elapsed=_time.perf_counter() - started)


def run_ordering_case(case: FuzzCase) -> CaseResult:
    """Differential oracle for the ``ordering`` profile.

    Runs the full engine matrix over a **frozen** store — freezing
    collects the per-predicate statistics that switch physical
    planning to the cost-based ranker — so every matrix engine
    exercises cost-based jvar/supernode ordering against the naive
    reference.  On agreement, the cost-ordered engine is additionally
    diffed against the same engine over an *unfrozen* store (static
    heuristic ordering): identical bags always, identical row lists
    when a LIMIT/OFFSET window makes order observable.
    """
    import time as _time

    from ..bitmat.store import BitMatStore
    from ..core.engine import LBREngine
    from ..exceptions import BudgetExceededError, UnsupportedQueryError
    from .oracle import MAX_LBR_JOIN_ROWS, _diff_bags, _diff_ordered

    graph = case.graph()
    frozen = BitMatStore.build(graph)
    frozen.freeze()
    result = run_case(case, store=frozen)
    if result.status != "agree":
        return result
    started = _time.perf_counter()
    query = case.query()
    ordered = query.limit is not None or bool(query.offset)
    diff = _diff_ordered if ordered else _diff_bags
    heuristic_store = BitMatStore.build(graph)
    try:
        cost = LBREngine(
            frozen, max_join_rows=MAX_LBR_JOIN_ROWS).execute(query)
        heuristic = LBREngine(
            heuristic_store,
            max_join_rows=MAX_LBR_JOIN_ROWS).execute(query)
    except (UnsupportedQueryError, BudgetExceededError):
        # the matrix already vouched for the frozen store; a budget
        # difference between orderings is a perf outcome, not a bug
        result.elapsed += _time.perf_counter() - started
        return result
    disagreement = diff(heuristic, cost, "lbr-cost-vs-heuristic")
    if disagreement is not None:
        result.disagreements.append(disagreement)
        result.status = "mismatch"
    result.elapsed += _time.perf_counter() - started
    return result


def run_campaign(config: CampaignConfig,
                 log=None) -> CampaignReport:
    """Run a full campaign; deterministic given the config."""
    started = time.perf_counter()
    master = random.Random(config.seed)
    report = CampaignReport(config=config)
    for index in range(config.budget):
        if (config.seconds is not None
                and time.perf_counter() - started >= config.seconds):
            break
        case_seed = master.getrandbits(48)
        case, shape = generate_case(config, case_seed, index)
        if config.profile == "updates":
            result = run_update_case(case, case_seed)
        elif config.profile == "ordering":
            result = run_ordering_case(case)
        else:
            result = run_case(case)
        report.cases += 1
        report.by_shape[shape] = report.by_shape.get(shape, 0) + 1
        report.reference_rows += result.reference_rows
        if result.well_designed:
            report.well_designed += 1
        else:
            report.non_well_designed += 1
        if result.status == "agree":
            report.agreed += 1
        elif result.status == "unsupported":
            report.unsupported += 1
        elif result.status == "skipped":
            report.skipped += 1
        else:
            report.mismatched += 1
            report.failures.append(result)
            if log is not None:
                log(f"MISMATCH case {index}: "
                    + "; ".join(d.describe()
                                for d in result.disagreements))
            shrunk = case
            # update cases cannot be shrunk through the query oracle:
            # their failure depends on the batch stream, not the query
            if config.shrink_failures and config.profile != "updates":
                oracle = (run_ordering_case
                          if config.profile == "ordering" else run_case)
                shrunk = shrink(case, lambda c: oracle(c).failed)
                if log is not None:
                    log(f"  shrunk to {len(shrunk.triples)} triples, "
                        f"query:\n{shrunk.query_text}")
            report.shrunk.append(shrunk)
            if config.save_failing:
                report.saved_paths.append(
                    save_case(shrunk, config.save_failing))
            if config.stop_on_failure:
                break
    report.elapsed = time.perf_counter() - started
    return report


def format_campaign_report(report: CampaignReport) -> str:
    """Human-readable campaign summary (harness reporting style)."""
    config = report.config
    lines = [
        f"fuzz campaign: seed={config.seed} budget={config.budget} "
        f"shape={config.shape} profile={config.profile}",
        f"  cases run      : {report.cases:,} "
        f"in {report.elapsed:.2f}s",
        f"  agree          : {report.agreed:,}",
        f"  unsupported    : {report.unsupported:,}",
        f"  skipped        : {report.skipped:,} (over work budget)",
        f"  mismatches     : {report.mismatched:,}",
        f"  well-designed  : {report.well_designed:,} "
        f"(non-WD: {report.non_well_designed:,})",
        f"  oracle rows    : {report.reference_rows:,}",
        "  shapes         : " + ", ".join(
            f"{shape}={count}" for shape, count
            in sorted(report.by_shape.items())),
    ]
    for result, shrunk in zip(report.failures, report.shrunk):
        lines.append(f"  FAIL {result.case.name}: " + "; ".join(
            d.describe() for d in result.disagreements))
        lines.append(f"    shrunk graph ({len(shrunk.triples)} triples):")
        lines.extend(f"      {line}" for line in shrunk.graph_lines())
        lines.append("    shrunk query:")
        lines.extend(f"      {line}"
                     for line in shrunk.query_text.splitlines())
    for path in report.saved_paths:
        lines.append(f"  saved: {path}")
    lines.append("  verdict        : "
                 + ("OK" if report.ok else "MISMATCHES FOUND"))
    return "\n".join(lines)


@contextmanager
def inject_bug(name: str):
    """Deliberately break an engine component while the context is open.

    ``nullification`` replaces the engine's post-join ``minimum_union``
    cleanup with plain duplicate removal, so rows subsumed by a better
    match survive — the exact failure Algorithm 5.4's best-match step
    exists to prevent.  Used by the fuzzer's self-check: the campaign
    must catch the planted bug and shrink its witness.
    """
    if name not in INJECTABLE_BUGS:
        raise ValueError(f"unknown bug {name!r}; "
                         f"expected one of {INJECTABLE_BUGS}")
    from ..core import engine as engine_module

    original = engine_module.minimum_union

    def broken_minimum_union(rows: list[tuple]) -> list[tuple]:
        seen: set[tuple] = set()
        out: list[tuple] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out

    engine_module.minimum_union = broken_minimum_union
    try:
        yield
    finally:
        engine_module.minimum_union = original
