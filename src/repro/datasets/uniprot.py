"""Synthetic UniProt-like protein graph (§6.1, Appendix E.2).

Models the slice of the UniProt core vocabulary the paper's seven
queries touch: proteins with organisms, recommended names, encoding
genes, sequences, typed annotations (disease / transmembrane / natural
variant), replacement history, reified statements, and cross
references.  Incompleteness rates are tuned so the Table 6.3 shapes
hold:

* Q1–Q4 touch most of the data (low selectivity) — LBR's pruning
  should pay off;
* Q2 is empty: reified statements (``rdf:subject``) never carry
  ``uni:encodedBy``, so active pruning detects the empty result at
  init, as the paper reports;
* Q4's slave is emptied by one semi-join: genes never have
  ``uni:context`` (sequences do), so every result row is NULL-padded;
* Q5 hinges on the highly selective ``uni:modified "2008-01-15"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace, RDF, RDFS
from ..rdf.terms import Literal, Triple, URI

UNI = Namespace("http://purl.uniprot.org/core/")
TAXON = Namespace("http://purl.uniprot.org/taxonomy/")
PROTEIN = Namespace("http://purl.uniprot.org/uniprot/")

#: Homo sapiens — the organism the paper's Q3/Q6 select.
HUMAN = TAXON["9606"]

_MODIFIED_DATES = ["2005-07-19", "2006-03-07", "2008-01-15", "2010-10-05",
                   "2012-11-28"]
_ANNOTATION_KINDS = ["Disease_Annotation", "Transmembrane_Annotation",
                     "Natural_Variant_Annotation", "Function_Annotation"]


@dataclass
class UniProtConfig:
    """Scale knobs for the synthetic protein graph."""

    proteins: int = 2000
    organisms: int = 12
    human_fraction: float = 0.25
    # Master TPs are individually unselective but their conjunction is
    # not (≈12% of proteins satisfy Q1's three blocks together): that is
    # the low-selectivity regime where pruning pays (§6.2).
    recommended_name_probability: float = 0.45
    full_name_probability: float = 0.75
    encoded_by_probability: float = 0.5
    gene_name_probability: float = 0.8
    gene_typed_probability: float = 0.7
    sequence_probability: float = 0.55
    sequence_version_probability: float = 0.5
    sequence_member_probability: float = 0.4
    sequence_context_probability: float = 0.35
    annotations_max: int = 4
    annotation_comment_probability: float = 0.9
    annotation_range_probability: float = 0.8
    replaces_probability: float = 0.05
    see_also_probability: float = 0.4
    statement_fraction: float = 0.2
    #: probability a protein's uni:modified is exactly "2008-01-15"
    modified_2008_probability: float = 0.04
    seed: int = 7


def generate_uniprot(config: UniProtConfig | None = None) -> Graph:
    """Generate the synthetic protein graph."""
    config = config if config is not None else UniProtConfig()
    rng = random.Random(config.seed)
    graph = Graph()
    organisms = [HUMAN] + [TAXON[str(10000 + i)]
                           for i in range(config.organisms - 1)]
    proteins = [PROTEIN[f"P{index:05d}"]
                for index in range(config.proteins)]

    for index, protein in enumerate(proteins):
        _generate_protein(graph, rng, config, organisms, proteins,
                          protein, index)

    # reified statements: rdf:subject points at proteins, and these
    # statement nodes never carry uni:encodedBy — Q2 is provably empty
    statement_count = int(config.proteins * config.statement_fraction)
    for index in range(statement_count):
        statement = URI(f"http://purl.uniprot.org/statement/S{index}")
        subject = rng.choice(proteins)
        graph.add(Triple(statement, RDF.subject, subject))
        graph.add(Triple(statement, RDF.predicate, UNI.annotation))
        graph.add(Triple(statement, RDF.object,
                         Literal(f"statement-{index}")))
    return graph


def _generate_protein(graph: Graph, rng: random.Random,
                      config: UniProtConfig, organisms: list[URI],
                      proteins: list[URI], protein: URI,
                      index: int) -> None:
    graph.add(Triple(protein, RDF.type, UNI.Protein))
    organism = (HUMAN if rng.random() < config.human_fraction
                else rng.choice(organisms))
    graph.add(Triple(protein, UNI.organism, organism))
    graph.add(Triple(protein, UNI.mnemonic, Literal(f"PROT{index}_HUMAN")))

    if rng.random() < config.modified_2008_probability:
        date = "2008-01-15"
    else:
        date = rng.choice(_MODIFIED_DATES)
    graph.add(Triple(protein, UNI.modified, Literal(date)))

    if rng.random() < config.recommended_name_probability:
        name_node = URI(f"{protein}#name")
        graph.add(Triple(protein, UNI.recommendedName, name_node))
        graph.add(Triple(name_node, RDF.type, UNI.Structured_Name))
        if rng.random() < config.full_name_probability:
            graph.add(Triple(name_node, UNI.fullName,
                             Literal(f"Protein {index} full name")))

    if rng.random() < config.encoded_by_probability:
        gene = URI(f"http://purl.uniprot.org/gene/G{index}")
        graph.add(Triple(protein, UNI.encodedBy, gene))
        if rng.random() < config.gene_name_probability:
            graph.add(Triple(gene, UNI.name, Literal(f"GENE{index}")))
        if rng.random() < config.gene_typed_probability:
            graph.add(Triple(gene, RDF.type, UNI.Gene))

    if rng.random() < config.sequence_probability:
        sequence = URI(f"http://purl.uniprot.org/isoform/Q{index}")
        graph.add(Triple(protein, UNI.sequence, sequence))
        simple = rng.random() < 0.7
        kind = UNI.Simple_Sequence if simple else UNI.Modified_Sequence
        graph.add(Triple(sequence, RDF.type, kind))
        graph.add(Triple(sequence, RDF.value,
                         Literal("".join(rng.choices("ACDEFGHIKLMNPQRSTVWY",
                                                     k=24)))))
        if rng.random() < config.sequence_version_probability:
            graph.add(Triple(sequence, UNI.version,
                             Literal(str(rng.randint(1, 9)))))
        if rng.random() < config.sequence_member_probability:
            cluster = URI(f"http://purl.uniprot.org/uniref/C{index % 50}")
            graph.add(Triple(sequence, UNI.memberOf, cluster))
        if rng.random() < config.sequence_context_probability:
            # uni:context lives on sequences, never on genes: the Q4
            # slave prunes to empty through one master-slave semi-join
            context = URI(f"http://purl.uniprot.org/context/X{index}")
            graph.add(Triple(sequence, UNI.context, context))
            graph.add(Triple(context, RDFS.label,
                             Literal(f"context {index}")))

    for a_index in range(rng.randint(0, config.annotations_max)):
        _generate_annotation(graph, rng, config, protein, index, a_index)

    if rng.random() < config.replaces_probability and index > 0:
        replaced = proteins[rng.randrange(0, index)]
        graph.add(Triple(protein, UNI.replaces, replaced))

    if rng.random() < config.see_also_probability:
        graph.add(Triple(protein, RDFS.seeAlso,
                         URI(f"http://purl.uniprot.org/pdb/{index:04X}")))


def _generate_annotation(graph: Graph, rng: random.Random,
                         config: UniProtConfig, protein: URI, index: int,
                         a_index: int) -> None:
    annotation = URI(f"{protein}#annotation{a_index}")
    kind = rng.choice(_ANNOTATION_KINDS)
    graph.add(Triple(protein, UNI.annotation, annotation))
    graph.add(Triple(annotation, RDF.type, UNI[kind]))
    if kind == "Transmembrane_Annotation":
        if rng.random() < config.annotation_range_probability:
            range_node = URI(f"{protein}#range{a_index}")
            begin = rng.randint(1, 400)
            graph.add(Triple(annotation, UNI.range, range_node))
            graph.add(Triple(range_node, UNI.begin, Literal(str(begin))))
            graph.add(Triple(range_node, UNI.end,
                             Literal(str(begin + rng.randint(15, 30)))))
        return
    if rng.random() < config.annotation_comment_probability:
        graph.add(Triple(annotation, RDFS.comment,
                         Literal(f"{kind} comment for protein {index}")))
